"""Unit tests for the linear models (logistic and linear regression)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.linear import LinearRegression, LogisticRegression


def _separable_data(n=200, d=3, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    w = np.array([1.5, -2.0, 0.5][:d])
    y = (X @ w + 0.1 * rng.normal(size=n) > 0).astype(float)
    return X, y


class TestLogisticRegression:
    def test_learns_separable_data(self):
        X, y = _separable_data()
        model = LogisticRegression(reg_param=0.01, max_iter=300)
        model.fit(X, y)
        assert model.score(X, y) > 0.9

    def test_predict_proba_shape_and_range(self):
        X, y = _separable_data()
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (len(X), 2)
        assert np.all(proba >= 0) and np.all(proba <= 1)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_predictions_are_binary(self):
        X, y = _separable_data()
        predictions = LogisticRegression().fit(X, y).predict(X)
        assert set(np.unique(predictions)) <= {0.0, 1.0}

    def test_regularization_shrinks_weights(self):
        X, y = _separable_data()
        loose = LogisticRegression(reg_param=0.0, max_iter=300).fit(X, y)
        tight = LogisticRegression(reg_param=5.0, max_iter=300).fit(X, y)
        assert np.linalg.norm(tight.weights_) < np.linalg.norm(loose.weights_)

    def test_nonstandard_labels_mapped(self):
        X, y = _separable_data()
        labels = np.where(y > 0, 5.0, 3.0)
        model = LogisticRegression(max_iter=300).fit(X, labels)
        assert model.score(X, labels) > 0.9

    def test_unfitted_predict_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression().predict(np.zeros((2, 2)))

    def test_empty_training_set(self):
        model = LogisticRegression().fit(np.zeros((0, 3)), np.zeros(0))
        assert model.weights_ is not None
        assert model.predict(np.zeros((2, 3))).shape == (2,)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros(3), np.zeros(3))

    def test_negative_regularization_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression(reg_param=-0.1)

    def test_feature_weights_mapping(self):
        X, y = _separable_data(d=2)
        model = LogisticRegression().fit(X, y)
        weights = model.feature_weights()
        assert set(weights) == {0, 1}
        assert LogisticRegression().feature_weights() == {}

    def test_single_class_degenerates_gracefully(self):
        X = np.random.default_rng(0).normal(size=(20, 2))
        y = np.zeros(20)
        model = LogisticRegression(max_iter=50).fit(X, y)
        assert model.score(X, y) >= 0.0

    def test_convergence_counter(self):
        X, y = _separable_data(n=50)
        model = LogisticRegression(max_iter=10).fit(X, y)
        assert 0 < model.n_iter_ <= 10


class TestLinearRegression:
    def test_recovers_linear_relationship(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 2))
        y = 3.0 * X[:, 0] - 1.0 * X[:, 1] + 2.0
        model = LinearRegression().fit(X, y)
        assert model.weights_[0] == pytest.approx(3.0, abs=1e-6)
        assert model.weights_[1] == pytest.approx(-1.0, abs=1e-6)
        assert model.intercept_ == pytest.approx(2.0, abs=1e-6)
        assert model.score(X, y) > 0.999

    def test_ridge_shrinks_coefficients(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        y = X @ np.array([2.0, 0.0, -2.0]) + rng.normal(size=50) * 0.1
        plain = LinearRegression(reg_param=0.0).fit(X, y)
        ridge = LinearRegression(reg_param=50.0).fit(X, y)
        assert np.linalg.norm(ridge.weights_) < np.linalg.norm(plain.weights_)

    def test_without_intercept(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([2.0, 4.0, 6.0])
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        assert model.weights_[0] == pytest.approx(2.0)

    def test_unfitted_predict_raises(self):
        with pytest.raises(ValueError):
            LinearRegression().predict(np.zeros((1, 1)))

    def test_empty_fit(self):
        model = LinearRegression().fit(np.zeros((0, 2)), np.zeros(0))
        assert model.predict(np.ones((1, 2)))[0] == 0.0

    def test_constant_target_r2_zero(self):
        X = np.arange(10).reshape(-1, 1).astype(float)
        y = np.full(10, 3.0)
        model = LinearRegression().fit(X, y)
        assert model.score(X, y) == 0.0

    def test_negative_regularization_rejected(self):
        with pytest.raises(ValueError):
            LinearRegression(reg_param=-1)
