"""Unit tests for OPT-MAT-PLAN policies (streaming heuristic, AM, NM, exact)."""

from __future__ import annotations

import pytest

from repro.exceptions import OptimizationError
from repro.optimizer.omp import (
    AlwaysMaterialize,
    NeverMaterialize,
    StreamingMaterializationPolicy,
    cumulative_run_time,
    optimal_materialization_plan,
)

from conftest import make_chain_dag, make_diamond_dag


class TestCumulativeRunTime:
    def test_includes_all_ancestors(self, diamond_dag):
        times = {"a": 4.0, "b": 2.0, "c": 3.0, "d": 1.0}
        assert cumulative_run_time("d", diamond_dag, times) == pytest.approx(10.0)
        assert cumulative_run_time("b", diamond_dag, times) == pytest.approx(6.0)
        assert cumulative_run_time("a", diamond_dag, times) == pytest.approx(4.0)

    def test_missing_nodes_count_as_zero(self, diamond_dag):
        assert cumulative_run_time("d", diamond_dag, {"d": 1.0}) == pytest.approx(1.0)


class TestStreamingPolicy:
    def test_materializes_when_cumulative_exceeds_twice_load(self, diamond_dag):
        policy = StreamingMaterializationPolicy()
        decision = policy.decide(
            "d", diamond_dag, {"a": 4.0, "b": 2.0, "c": 3.0, "d": 1.0},
            load_estimate=1.0, size_bytes=100, budget_remaining=None,
        )
        assert decision.materialize
        assert decision.cumulative_time == pytest.approx(10.0)

    def test_skips_when_load_too_expensive(self, diamond_dag):
        policy = StreamingMaterializationPolicy()
        decision = policy.decide(
            "d", diamond_dag, {"a": 0.1, "b": 0.1, "c": 0.1, "d": 0.1},
            load_estimate=1.0, size_bytes=100, budget_remaining=None,
        )
        assert not decision.materialize

    def test_boundary_is_strict(self, diamond_dag):
        policy = StreamingMaterializationPolicy()
        decision = policy.decide(
            "a", diamond_dag, {"a": 2.0}, load_estimate=1.0, size_bytes=10, budget_remaining=None
        )
        assert not decision.materialize  # C == 2*l is not strictly greater

    def test_respects_budget(self, diamond_dag):
        policy = StreamingMaterializationPolicy()
        decision = policy.decide(
            "d", diamond_dag, {"a": 10.0, "d": 1.0}, load_estimate=0.1,
            size_bytes=1000, budget_remaining=500,
        )
        assert not decision.materialize
        assert "budget" in decision.reason

    def test_custom_factor(self, diamond_dag):
        lenient = StreamingMaterializationPolicy(factor=0.5)
        decision = lenient.decide(
            "a", diamond_dag, {"a": 0.6}, load_estimate=1.0, size_bytes=10, budget_remaining=None
        )
        assert decision.materialize

    def test_factor_must_be_positive(self):
        with pytest.raises(OptimizationError):
            StreamingMaterializationPolicy(factor=0.0)


class TestExtremePolicies:
    def test_always_materializes_within_budget(self, diamond_dag):
        policy = AlwaysMaterialize()
        assert policy.decide("a", diamond_dag, {"a": 0.0}, 10.0, 10, None).materialize
        assert not policy.decide("a", diamond_dag, {"a": 0.0}, 10.0, 10, 5).materialize

    def test_never_materializes(self, diamond_dag):
        policy = NeverMaterialize()
        assert not policy.decide("a", diamond_dag, {"a": 100.0}, 0.0, 10, None).materialize


class TestExactPlan:
    def test_materializes_expensive_reusable_node(self):
        chain = make_chain_dag(3)
        compute = {"n0": 5.0, "n1": 5.0, "n2": 1.0}
        load = {"n0": 0.5, "n1": 0.5, "n2": 0.5}
        sizes = {name: 100 for name in chain.node_names}
        chosen, objective = optimal_materialization_plan(chain, compute, load, sizes)
        # Materializing only n2 costs 0.5 now and makes the next iteration free
        # apart from (optionally) loading it; anything more is wasteful.
        assert "n2" in chosen or "n1" in chosen
        assert objective <= 1.5

    def test_empty_plan_when_loads_are_expensive(self):
        chain = make_chain_dag(3)
        compute = {name: 0.1 for name in chain.node_names}
        load = {name: 10.0 for name in chain.node_names}
        sizes = {name: 100 for name in chain.node_names}
        chosen, objective = optimal_materialization_plan(chain, compute, load, sizes)
        assert chosen == frozenset()
        assert objective == pytest.approx(0.3)

    def test_budget_limits_choices(self):
        chain = make_chain_dag(3)
        compute = {name: 5.0 for name in chain.node_names}
        load = {name: 0.5 for name in chain.node_names}
        sizes = {"n0": 100, "n1": 100, "n2": 100}
        chosen, _ = optimal_materialization_plan(chain, compute, load, sizes, budget_bytes=100)
        assert len(chosen) <= 1

    def test_size_limit(self):
        dag = make_chain_dag(15)
        costs = {name: 1.0 for name in dag.node_names}
        with pytest.raises(OptimizationError):
            optimal_materialization_plan(dag, costs, costs, {name: 1 for name in dag.node_names})

    def test_streaming_heuristic_close_to_optimal_on_diamond(self, diamond_dag):
        """The heuristic's chosen set achieves an objective within a small factor of optimal."""
        compute = {"a": 4.0, "b": 2.0, "c": 3.0, "d": 1.0}
        load = {name: 0.5 for name in diamond_dag.node_names}
        sizes = {name: 100 for name in diamond_dag.node_names}
        _best, best_objective = optimal_materialization_plan(diamond_dag, compute, load, sizes)

        policy = StreamingMaterializationPolicy()
        heuristic_choice = {
            name
            for name in diamond_dag.node_names
            if policy.decide(name, diamond_dag, compute, load[name], sizes[name], None).materialize
        }
        from repro.optimizer.oep import solve_oep

        next_load = {n: (load[n] if n in heuristic_choice else float("inf")) for n in diamond_dag.node_names}
        heuristic_objective = sum(load[n] for n in heuristic_choice) + solve_oep(
            diamond_dag, compute, next_load, required=["d"]
        ).estimated_time
        assert best_objective > 0
        assert heuristic_objective <= 3.0 * best_objective + 1e-9
