"""Admission scheduling for the ``repro serve`` daemon.

Unit-tests the policies in :mod:`repro.service.scheduler` directly —
weighted round-robin ordering, priority jump, cancellation — and then
pins the daemon-level guarantees on a gated daemon where run durations
are controlled by the test:

* **Anti-starvation** (the acceptance criterion): under a flood of 6
  queued runs from tenant A, a subsequent tenant-B submission at equal
  weight starts before at least 4 of A's queued runs.
* **Priority jump**: a queued high-priority submission starts before
  earlier-arrived low-priority work.
* **Per-tenant counters**: ``stats()["tenants"]`` matches what actually
  ran, per tenant.
* The default ``fifo`` policy keeps strict arrival order.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import ExecutionError
from repro.service import (
    FairScheduler,
    FifoScheduler,
    ServiceClient,
    make_scheduler,
)
from repro.service.daemon import ServeDaemon

CENSUS_SPEC = {
    "workload": "census",
    "iterations": 1,
    "scale": 0.25,
    "seed": 7,
    "policy": "opt",
    "cost_model": "simulated",
}


class _Record:
    """Just enough record for a scheduler: a name, a tenant, a priority."""

    def __init__(self, name, tenant="default", priority=0):
        self.name = name
        self.tenant = tenant
        self.priority = priority

    def __repr__(self):
        return self.name


def _drain_order(scheduler):
    order = []
    while True:
        record = scheduler._pop()  # unlocked hook: fine single-threaded
        if record is None:
            return order
        order.append(record.name)


def _fill(scheduler, records):
    for record in records:
        scheduler.put(record)


# ---------------------------------------------------------------------------
# Policy units
# ---------------------------------------------------------------------------
class TestFifoScheduler:
    def test_arrival_order(self):
        s = FifoScheduler()
        _fill(s, [_Record(f"r{i}", tenant=t) for i, t in enumerate("aabab")])
        assert _drain_order(s) == ["r0", "r1", "r2", "r3", "r4"]

    def test_cancel_removes_only_queued(self):
        s = FifoScheduler()
        a, b = _Record("a"), _Record("b")
        _fill(s, [a, b])
        assert s.cancel(a) is True
        assert s.cancel(a) is False  # already gone
        assert s.get() is b
        assert s.cancel(b) is False  # already dequeued

    def test_close_wakes_blocked_get(self):
        s = FifoScheduler()
        out = []
        thread = threading.Thread(target=lambda: out.append(s.get()))
        thread.start()
        time.sleep(0.05)
        s.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert out == [None]

    def test_closed_put_refused_and_open_resets(self):
        s = FifoScheduler()
        s.close()
        with pytest.raises(ExecutionError, match="closed"):
            s.put(_Record("a"))
        s.open()
        s.put(_Record("a"))
        assert s.qsize() == 1

    def test_close_does_not_hand_out_queued_records(self):
        """get() after close returns None even with a backlog — the
        daemon's stop path drains and fails those records explicitly."""
        s = FifoScheduler()
        s.put(_Record("a"))
        s.close()
        assert s.get() is None
        assert [r.name for r in s.drain()] == ["a"]


class TestFairScheduler:
    def test_round_robin_interleaves_tenants(self):
        s = FairScheduler()
        _fill(s, [_Record(f"a{i}", tenant="a") for i in range(3)])
        _fill(s, [_Record(f"b{i}", tenant="b") for i in range(2)])
        _fill(s, [_Record("c0", tenant="c")])
        assert _drain_order(s) == ["a0", "b0", "c0", "a1", "b1", "a2"]

    def test_weighted_tenant_gets_consecutive_turns(self):
        s = FairScheduler(weights={"a": 2})
        _fill(s, [_Record(f"a{i}", tenant="a") for i in range(4)])
        _fill(s, [_Record(f"b{i}", tenant="b") for i in range(2)])
        # weight 2 => two runs of a per rotation, one of b
        assert _drain_order(s) == ["a0", "a1", "b0", "a2", "a3", "b1"]

    def test_invalid_weights_refused(self):
        with pytest.raises(ExecutionError, match="positive"):
            FairScheduler(weights={"a": 0})
        with pytest.raises(ExecutionError, match="number"):
            FairScheduler(weights={"a": "heavy"})

    def test_higher_priority_jumps_the_line(self):
        s = FairScheduler()
        _fill(s, [_Record(f"a{i}", tenant="a", priority=0) for i in range(3)])
        s.put(_Record("urgent", tenant="b", priority=5))
        assert _drain_order(s) == ["urgent", "a0", "a1", "a2"]

    def test_priority_beats_fair_share_within_a_tenant(self):
        s = FairScheduler()
        s.put(_Record("slow", tenant="a", priority=0))
        s.put(_Record("fast", tenant="a", priority=9))
        assert _drain_order(s) == ["fast", "slow"]

    def test_idle_tenant_forfeits_credit(self):
        s = FairScheduler(weights={"a": 3})
        s.put(_Record("a0", tenant="a"))
        s.put(_Record("b0", tenant="b"))
        assert s.get().name == "a0"
        # tenant a went idle mid-quantum; its leftover credit must not
        # let a later burst pre-empt b's turn
        _fill(s, [_Record(f"a{i}", tenant="a") for i in (1, 2)])
        assert _drain_order(s) == ["b0", "a1", "a2"]

    def test_cancel_and_drain(self):
        s = FairScheduler()
        a0, a1 = _Record("a0", tenant="a"), _Record("a1", tenant="a")
        b0 = _Record("b0", tenant="b", priority=2)
        _fill(s, [a0, a1, b0])
        assert s.cancel(a1) is True
        assert s.cancel(a1) is False
        assert s.qsize() == 2
        assert [r.name for r in s.drain()] == ["b0", "a0"]  # policy order
        assert s.qsize() == 0

    def test_queued_ahead_counts_guaranteed_predecessors(self):
        s = FairScheduler()
        _fill(s, [_Record(f"a{i}", tenant="a") for i in range(2)])
        s.put(_Record("hi", tenant="b", priority=5))
        # behind both queued a-runs and the higher-priority b-run
        assert s.queued_ahead(_Record("a2", tenant="a")) == 3
        # higher priority than everything queued: starts first
        assert s.queued_ahead(_Record("now", tenant="c", priority=9)) == 0
        # equal-priority other-tenant work interleaves, only the
        # higher-priority run is guaranteed ahead
        assert s.queued_ahead(_Record("c0", tenant="c")) == 1


class TestMakeScheduler:
    def test_names_and_passthrough(self):
        assert make_scheduler("fifo").name == "fifo"
        assert make_scheduler("fair").name == "fair"
        ready = FairScheduler(weights={"a": 2})
        assert make_scheduler(ready) is ready

    def test_unknown_name_refused(self):
        with pytest.raises(ExecutionError, match="unknown scheduler"):
            make_scheduler("lottery")

    def test_tenant_weights_require_fair(self):
        with pytest.raises(ExecutionError, match="fair"):
            make_scheduler("fifo", {"a": 2})
        with pytest.raises(ExecutionError, match="instance"):
            make_scheduler(FairScheduler(), {"a": 2})
        assert make_scheduler("fair", {"a": 2}).weights == {"a": 2.0}


# ---------------------------------------------------------------------------
# Daemon-level scheduling (gated: the test controls run durations)
# ---------------------------------------------------------------------------
class _GatedDaemon(ServeDaemon):
    """Runs block on a shared gate; ``executed`` records service order."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = threading.Event()
        self.executed = []
        self._order_lock = threading.Lock()

    def _execute(self, record):
        with self._order_lock:
            self.executed.append((record.tenant, record.run_id))
        if not self.gate.wait(timeout=20):
            raise ExecutionError("test gate never opened")
        return {"ok": record.run_id}


def _wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("timed out waiting for daemon state")
        time.sleep(0.01)


class TestDaemonScheduling:
    def test_two_tenant_flood_does_not_starve_the_minority(self):
        """The acceptance criterion: 6 queued runs from tenant A, then one
        tenant-B submission at equal weight — B starts before at least 4
        of A's queued runs (with round-robin it starts second)."""
        daemon = _GatedDaemon(
            max_workers=1, max_concurrent_runs=1, scheduler="fair"
        )
        daemon.start()
        try:
            client = ServiceClient(daemon.address)
            flood = [
                client.submit(dict(CENSUS_SPEC, seed=i, tenant="tenant-a"))
                for i in range(6)
            ]
            _wait_for(lambda: len(daemon.executed) == 1)  # A's first run active
            minority = client.submit(dict(CENSUS_SPEC, seed=99, tenant="tenant-b"))
            # submit() returns on the "accepted" frame, an instant before
            # the record lands in the scheduler: wait for the full backlog
            _wait_for(lambda: daemon._scheduler.qsize() == 6)
            daemon.gate.set()
            for handle in flood + [minority]:
                assert handle.result()["ok"] == handle.run_id
            order = [tenant for tenant, _ in daemon.executed]
            b_start = order.index("tenant-b")
            a_after_b = order[b_start + 1:].count("tenant-a")
            assert a_after_b >= 4, f"tenant-b starved: service order {daemon.executed}"
            assert b_start <= 2  # round-robin: B is served on the next turn
            stats = daemon.stats()
            assert stats["scheduler"] == "fair"
            assert stats["tenants"]["tenant-a"]["completed"] == 6
            assert stats["tenants"]["tenant-b"]["completed"] == 1
        finally:
            daemon.gate.set()
            daemon.stop()

    def test_fifo_default_serves_the_flood_first(self):
        """Control experiment: the default policy is still strict FIFO —
        the tenant-B run waits out the entire tenant-A backlog."""
        daemon = _GatedDaemon(max_workers=1, max_concurrent_runs=1)
        daemon.start()
        try:
            client = ServiceClient(daemon.address)
            flood = [
                client.submit(dict(CENSUS_SPEC, seed=i, tenant="tenant-a"))
                for i in range(3)
            ]
            _wait_for(lambda: len(daemon.executed) == 1)
            minority = client.submit(dict(CENSUS_SPEC, seed=99, tenant="tenant-b"))
            _wait_for(lambda: daemon._scheduler.qsize() == 3)
            daemon.gate.set()
            for handle in flood + [minority]:
                handle.result()
            assert [tenant for tenant, _ in daemon.executed] == [
                "tenant-a", "tenant-a", "tenant-a", "tenant-b",
            ]
            assert daemon.stats()["scheduler"] == "fifo"
        finally:
            daemon.gate.set()
            daemon.stop()

    def test_priority_submission_jumps_the_queued_line(self):
        daemon = _GatedDaemon(
            max_workers=1, max_concurrent_runs=1, scheduler="fair"
        )
        daemon.start()
        try:
            client = ServiceClient(daemon.address)
            handles = [
                client.submit(dict(CENSUS_SPEC, seed=i, tenant="tenant-a"))
                for i in range(3)
            ]
            _wait_for(lambda: len(daemon.executed) == 1)
            urgent = client.submit(
                dict(CENSUS_SPEC, seed=9, tenant="tenant-b", priority=9)
            )
            assert urgent.priority == 9
            assert urgent.position == 0  # nothing queued outranks it
            _wait_for(lambda: daemon._scheduler.qsize() == 3)
            daemon.gate.set()
            for handle in handles + [urgent]:
                handle.result()
            # the urgent run started right after the already-active one
            assert daemon.executed[1] == ("tenant-b", urgent.run_id)
        finally:
            daemon.gate.set()
            daemon.stop()

    def test_queued_run_cancelled_when_client_disconnects(self):
        """Tentpole preemption-of-queued-work: an admitted-but-queued run
        whose submitter hangs up is cancelled, never occupies a runner,
        and the per-tenant counters account it as cancelled."""
        daemon = _GatedDaemon(max_workers=1, max_concurrent_runs=1)
        daemon.start()
        try:
            client = ServiceClient(daemon.address)
            running = client.submit(dict(CENSUS_SPEC, seed=1))
            _wait_for(lambda: len(daemon.executed) == 1)
            abandoned = client.submit(dict(CENSUS_SPEC, seed=2, tenant="flaky"))
            abandoned.close()  # client walks away while queued
            _wait_for(lambda: daemon.stats()["cancelled"])
            daemon.gate.set()
            running.result()
            stats = daemon.stats()
            assert stats["cancelled"] == [abandoned.run_id]
            assert stats["tenants"]["flaky"]["cancelled"] == 1
            assert stats["tenants"]["flaky"]["queued"] == 0
            assert [run_id for _, run_id in daemon.executed] == [running.run_id]
        finally:
            daemon.gate.set()
            daemon.stop()
