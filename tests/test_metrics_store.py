"""Unit tests for operator metrics, the stats store and the cost estimator."""

from __future__ import annotations

import pytest

from repro.optimizer.metrics import CostEstimator, NodeMetrics, StatsStore

from conftest import ConstOperator


class TestNodeMetrics:
    def test_first_observation_sets_values(self):
        metrics = NodeMetrics()
        metrics.merge_observation(compute_time=2.0, load_time=0.5, storage_bytes=100)
        assert metrics.compute_time == 2.0
        assert metrics.load_time == 0.5
        assert metrics.storage_bytes == 100
        assert metrics.observations == 1

    def test_running_average(self):
        metrics = NodeMetrics()
        metrics.merge_observation(compute_time=2.0)
        metrics.merge_observation(compute_time=4.0)
        assert metrics.compute_time == pytest.approx(3.0)
        assert metrics.observations == 2

    def test_partial_observations(self):
        metrics = NodeMetrics()
        metrics.merge_observation(compute_time=2.0)
        metrics.merge_observation(load_time=1.0)
        assert metrics.compute_time == 2.0
        assert metrics.load_time == 1.0


class TestStatsStore:
    def test_record_and_get(self):
        store = StatsStore()
        store.record("sig", compute_time=1.5, storage_bytes=10)
        assert "sig" in store
        assert store.get("sig").compute_time == 1.5

    def test_forget(self):
        store = StatsStore()
        store.record("sig", compute_time=1.0)
        store.forget("sig")
        assert store.get("sig") is None

    def test_persistence_round_trip(self, tmp_path):
        path = tmp_path / "stats.json"
        store = StatsStore(path=path)
        store.record("sig", compute_time=2.0, load_time=0.1, storage_bytes=42)
        store.save()
        reloaded = StatsStore(path=path)
        assert reloaded.get("sig").compute_time == 2.0
        assert reloaded.get("sig").storage_bytes == 42

    def test_len(self):
        store = StatsStore()
        store.record("a", compute_time=1.0)
        store.record("b", compute_time=1.0)
        assert len(store) == 2


class TestCostEstimator:
    def test_compute_time_prefers_recorded_stats(self):
        stats = StatsStore()
        stats.record("sig", compute_time=7.0)
        estimator = CostEstimator(stats)
        assert estimator.compute_time("sig", ConstOperator(cost=1.0)) == 7.0

    def test_compute_time_falls_back_to_operator(self):
        estimator = CostEstimator(StatsStore())
        assert estimator.compute_time("unknown", ConstOperator(cost=3.0)) == 3.0

    def test_compute_time_default_without_operator(self):
        estimator = CostEstimator(StatsStore(), default_compute_time=0.5)
        assert estimator.compute_time("unknown") == 0.5

    def test_load_time_infinite_without_materialization(self):
        estimator = CostEstimator(StatsStore())
        assert estimator.load_time("sig", materialized=False) == float("inf")

    def test_load_time_prefers_recorded(self):
        stats = StatsStore()
        stats.record("sig", load_time=0.25)
        assert CostEstimator(stats).load_time("sig", materialized=True) == 0.25

    def test_load_time_derived_from_size(self):
        stats = StatsStore()
        stats.record("sig", storage_bytes=170_000_000)
        estimator = CostEstimator(stats, disk_bandwidth=170e6)
        assert estimator.load_time("sig", materialized=True) == pytest.approx(1.0)

    def test_bytes_to_seconds_has_floor(self):
        estimator = CostEstimator(StatsStore(), disk_bandwidth=1e6)
        assert estimator.bytes_to_seconds(0) > 0

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            CostEstimator(StatsStore(), disk_bandwidth=0)

    def test_storage_bytes(self):
        stats = StatsStore()
        stats.record("sig", storage_bytes=123)
        estimator = CostEstimator(stats)
        assert estimator.storage_bytes("sig") == 123
        assert estimator.storage_bytes("unknown") == 0
