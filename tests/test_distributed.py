"""Distributed executor: wire format, worker lifecycle, failure handling.

The distributed executor dispatches serialized COMPUTE payloads to
long-lived worker processes over local TCP sockets.  This suite pins down
the pieces the other executors do not have:

* **Wire format** — length-prefixed frames with a magic + protocol-version
  header round-trip over real sockets; a version mismatch, bad magic,
  truncated frame or mid-frame disconnect raises a typed
  :class:`ProtocolError`; a clean close between frames reads as
  end-of-stream.
* **Equivalence** — the distributed strategy produces run statistics
  identical to the inline reference on the synthetic matrix and on a real
  (census) lifecycle, including while a worker is killed mid-run and its
  tasks are requeued to a survivor.
* **Failure handling** — a task whose worker keeps dying fails after
  bounded dispatch attempts with an :class:`ExecutionError` naming it; a
  worker crash mid-operator does not lose the task.
* **Drain + shutdown** — ``finish_run`` drains without releasing workers,
  ``shutdown`` reaps every worker process and the listener, and a
  subsequent ``start`` heals the pool back to full strength.
* **Auto-pooling** — a System configured with ``executor="process"`` or
  ``"distributed"`` *by name* owns one pool reused across lifecycle
  iterations, closed by ``close_executor``/``with system:``/reconfigure.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time

import pytest

from repro.core.dag import Node, WorkflowDAG
from repro.core.operators import Operator
from repro.core.signatures import compute_node_signatures
from repro.exceptions import ExecutionError, ProtocolError
from repro.execution.clock import SimulatedCostModel
from repro.execution.engine import ExecutionEngine
from repro.execution.equivalence import (
    assert_equivalent_runs,
    assert_executors_equivalent,
)
from repro.execution.executors import DistributedExecutor
from repro.experiments.runner import run_lifecycle
from repro.optimizer.metrics import StatsStore
from repro.optimizer.oep import solve_oep
from repro.optimizer.omp import StreamingMaterializationPolicy
from repro.storage.serialization import (
    FRAME_MAGIC,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    recv_frame,
    send_frame,
    serialize,
)
from repro.storage.store import InMemoryStore
from repro.systems.base import AUTO_POOLED_EXECUTORS
from repro.systems.helix import HelixSystem
from repro.workloads.synthetic import make_random_dag, make_wide_dag

INF = float("inf")


class WorkerSuicideOperator(Operator):
    """Kills its own worker process before replying — every attempt fails."""

    def config(self):
        return {}

    def run(self, inputs, context):
        os._exit(17)


def _all_compute_plan(dag: WorkflowDAG):
    return solve_oep(
        dag,
        {name: 1.0 for name in dag.node_names},
        {name: INF for name in dag.node_names},
        forced_compute=dag.node_names,
    )


def _engine_for(executor, **kwargs):
    """An engine wired like the equivalence rig (deterministic cost model)."""
    return ExecutionEngine(
        store=InMemoryStore(),
        policy=StreamingMaterializationPolicy(),
        cost_model=SimulatedCostModel(),
        stats=StatsStore(),
        executor=executor,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------
class TestWireFormat:
    def test_frame_round_trip_in_memory(self):
        payload = serialize({"node": "n0", "value": list(range(50))})
        assert decode_frame(encode_frame(payload)) == payload

    def test_frame_round_trip_over_socket(self):
        left, right = socket.socketpair()
        try:
            payloads = [b"", b"x", serialize(("task", "n0", b"blob"))]
            for payload in payloads:
                send_frame(left, payload)
            for payload in payloads:
                assert recv_frame(right) == payload
        finally:
            left.close()
            right.close()

    def test_clean_close_reads_as_end_of_stream(self):
        left, right = socket.socketpair()
        send_frame(left, b"last")
        left.close()
        try:
            assert recv_frame(right) == b"last"
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_protocol_version_mismatch_rejected(self):
        frame = encode_frame(b"payload", version=PROTOCOL_VERSION + 1)
        with pytest.raises(ProtocolError, match="version mismatch"):
            decode_frame(frame)
        left, right = socket.socketpair()
        try:
            left.sendall(frame)
            with pytest.raises(ProtocolError, match="version mismatch"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(b"payload"))
        frame[:2] = b"ZZ"
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame(bytes(frame))

    def test_truncated_frame_rejected(self):
        frame = encode_frame(b"payload")
        with pytest.raises(ProtocolError):
            decode_frame(frame[:-3])
        with pytest.raises(ProtocolError):
            decode_frame(frame[:4])

    def test_mid_frame_disconnect_raises(self):
        left, right = socket.socketpair()
        frame = encode_frame(b"x" * 100)
        left.sendall(frame[:20])
        left.close()
        try:
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_frame(right)
        finally:
            right.close()

    def test_header_constants_are_stable(self):
        """The on-wire header layout is a compatibility contract."""
        frame = encode_frame(b"abc")
        assert frame[:2] == FRAME_MAGIC
        assert int.from_bytes(frame[2:4], "big") == PROTOCOL_VERSION
        assert int.from_bytes(frame[4:8], "big") == 3


# ---------------------------------------------------------------------------
# Equivalence (synthetic + real workload), including worker death
# ---------------------------------------------------------------------------
class TestDistributedEquivalence:
    def test_synthetic_matrix_includes_distributed(self):
        dag = make_random_dag(11, max_width=4, max_depth=4)
        rigs, _ = assert_executors_equivalent(dag)
        assert "distributed" in rigs

    def test_kill_one_worker_mid_run_requeues_and_matches_inline(self):
        dag = make_wide_dag(branches=6, depth=2, node_seconds=0.05)
        signatures = compute_node_signatures(dag)
        plan = _all_compute_plan(dag)
        reference = _engine_for("inline").execute(dag, plan, signatures)

        executor = DistributedExecutor(max_workers=2)
        engine = _engine_for(executor)
        executor.start()  # pre-start so a victim pid exists before execute
        try:
            victim = next(iter(executor.worker_pids().values()))
            killer = threading.Timer(0.15, lambda: os.kill(victim, signal.SIGKILL))
            killer.start()
            stats = engine.execute(dag, plan, signatures)
            killer.join()
            # the victim is gone, a survivor finished its requeued tasks
            assert len(executor.worker_pids()) == 1
            assert_equivalent_runs(reference, stats, include_times=False)
        finally:
            executor.shutdown()

    @pytest.mark.integration
    def test_census_lifecycle_on_distributed_matches_inline(self):
        reference = run_lifecycle(
            HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0),
            "census",
            n_iterations=2,
            scale=0.25,
        )
        with HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0) as system:
            candidate = run_lifecycle(
                system,
                "census",
                n_iterations=2,
                scale=0.25,
                executor="distributed",
                max_workers=2,
            )
            assert system.executor_name == "distributed"
        assert len(reference.iterations) == len(candidate.iterations)
        for inline_stats, dist_stats in zip(reference.iterations, candidate.iterations):
            # Exact serialized sizes may drift across the process boundary
            # (see repro/execution/equivalence.py); they are re-checked with
            # a tight relative tolerance instead.
            assert_equivalent_runs(
                inline_stats, dist_stats, include_times=False, include_storage=False
            )
            assert dist_stats.node_times == pytest.approx(
                inline_stats.node_times, rel=1e-3
            )
            assert dist_stats.storage_bytes == pytest.approx(
                inline_stats.storage_bytes, rel=1e-3
            )


# ---------------------------------------------------------------------------
# Failure handling
# ---------------------------------------------------------------------------
class TestWorkerFailureHandling:
    def test_task_fails_after_bounded_attempts(self):
        """A task that kills every worker it lands on must not hang the run."""
        dag = WorkflowDAG([Node.create("boom", WorkerSuicideOperator(), is_output=True)])
        executor = DistributedExecutor(max_workers=2, max_task_attempts=3)
        engine = _engine_for(executor)
        try:
            with pytest.raises(ExecutionError, match="boom.*dispatch attempt"):
                engine.execute(dag, _all_compute_plan(dag), compute_node_signatures(dag))
        finally:
            executor.shutdown()

    def test_start_heals_dead_workers(self):
        executor = DistributedExecutor(max_workers=2)
        try:
            executor.start()
            assert len(executor.worker_pids()) == 2
            os.kill(next(iter(executor.worker_pids().values())), signal.SIGKILL)
            deadline = time.monotonic() + 5
            while len(executor.worker_pids()) > 1 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert len(executor.worker_pids()) == 1
            executor.start()  # next run tops the pool back up
            assert len(executor.worker_pids()) == 2
        finally:
            executor.shutdown()

    def test_submit_payload_without_workers_raises(self):
        executor = DistributedExecutor(max_workers=1)
        with pytest.raises(ExecutionError, match="before start"):
            executor.submit_payload("n0", b"payload")

    def test_heartbeat_timeout_must_exceed_interval(self):
        """A busy worker only beats every interval: a shorter timeout would
        declare every healthy worker dead."""
        with pytest.raises(ExecutionError, match="heartbeat_timeout"):
            DistributedExecutor(
                max_workers=1, heartbeat_interval=10.0, heartbeat_timeout=5.0
            )
        derived = DistributedExecutor(max_workers=1, heartbeat_interval=2.0)
        assert derived.heartbeat_timeout == pytest.approx(20.0)

    def test_unframeable_payload_fails_task_not_dispatcher(self, monkeypatch):
        """A payload the transport cannot frame (e.g. over the frame limit)
        must fail *that task* — not kill the dispatcher thread or the worker."""
        import repro.execution.executors as executors_module
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        original = executors_module._send_message

        def refusing(sock, message, lock=None):
            if isinstance(message, tuple) and message[0] == "task" and message[1] == "bad":
                raise ProtocolError("frame payload exceeds the frame limit")
            return original(sock, message, lock)

        executor = DistributedExecutor(max_workers=1)
        executor.start()
        try:
            monkeypatch.setattr(executors_module, "_send_message", refusing)
            executor.submit_payload("bad", b"unframeable")
            key, _, error = executor.next_completion()
            assert key == "bad"
            assert isinstance(error, ExecutionError)
            assert "could not be sent" in str(error)
            # the dispatcher and worker both survived: a good task completes
            executor.submit_payload(
                "good", serialize(("good", LatencyOperator(offset=1.0), [], RunContext()))
            )
            key, outcome, error = executor.next_completion()
            assert key == "good" and error is None
            assert outcome[0] == pytest.approx(1.0)
            executor.finish_run()
        finally:
            executor.shutdown()

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="the worker only inherits the monkeypatch under fork",
    )
    def test_unframeable_reply_surfaces_as_task_error(self, monkeypatch):
        """A worker whose *reply* cannot be framed reports a typed task error
        instead of dying and burning retry attempts (workers are forked, so
        the patch applied before start() is inherited)."""
        import repro.execution.executors as executors_module
        from repro.core.operators import RunContext
        from repro.exceptions import OperatorError
        from repro.workloads.synthetic import LatencyOperator

        original = executors_module._send_message

        def refusing(sock, message, lock=None):
            if isinstance(message, tuple) and message[0] == "result" and message[1] == "huge":
                raise ProtocolError("frame payload exceeds the frame limit")
            return original(sock, message, lock)

        monkeypatch.setattr(executors_module, "_send_message", refusing)
        executor = DistributedExecutor(max_workers=1)
        executor.start()  # fork happens with the patch in place
        try:
            executor.submit_payload(
                "huge", serialize(("huge", LatencyOperator(offset=1.0), [], RunContext()))
            )
            key, _, error = executor.next_completion()
            assert key == "huge"
            assert isinstance(error, OperatorError)
            assert "could not be framed" in str(error)
            assert len(executor.worker_pids()) == 1  # worker survived
            executor.finish_run()
        finally:
            executor.shutdown()


# ---------------------------------------------------------------------------
# Drain and shutdown
# ---------------------------------------------------------------------------
class TestDrainAndShutdown:
    def test_finish_run_drains_without_releasing_workers(self):
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        executor = DistributedExecutor(max_workers=2)
        try:
            executor.start()
            operator = LatencyOperator(offset=1.0, sleep_seconds=0.05)
            for index in range(4):
                executor.submit_payload(
                    f"n{index}", serialize((f"n{index}", operator, [], RunContext()))
                )
            keys = sorted(executor.next_completion()[0] for _ in range(4))
            executor.finish_run()
            assert keys == ["n0", "n1", "n2", "n3"]
            assert len(executor.worker_pids()) == 2  # pool survives the drain
        finally:
            executor.shutdown()

    def test_shutdown_reaps_workers_and_listener(self):
        executor = DistributedExecutor(max_workers=2)
        executor.start()
        pids = list(executor.worker_pids().values())
        processes = [h.process for h in executor._workers.values()]
        assert executor.address is not None
        executor.shutdown()
        assert executor.address is None
        for process in processes:
            assert not process.is_alive()
        del pids
        # shutdown is idempotent and start() afterwards rebuilds the pool
        executor.shutdown()
        executor.start()
        try:
            assert len(executor.worker_pids()) == 2
        finally:
            executor.shutdown()


# ---------------------------------------------------------------------------
# System-owned pools for name-configured executors
# ---------------------------------------------------------------------------
class TestAutoPooling:
    def test_auto_pooled_names(self):
        assert AUTO_POOLED_EXECUTORS == ("process", "distributed")

    @pytest.mark.parametrize("name", AUTO_POOLED_EXECUTORS)
    def test_name_configured_pool_reused_across_iterations(self, name):
        system = HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0)
        system.configure_executor(name, max_workers=2)
        try:
            result = run_lifecycle(system, "census", n_iterations=2, scale=0.25)
            assert len(result.iterations) == 2
            owned = system._owned_executor
            assert owned is not None and owned.name == name
            if name == "process":
                assert owned._pool is not None  # survived both iterations
            else:
                assert len(owned.worker_pids()) == 2
        finally:
            system.close_executor()
        assert system._owned_executor is None

    def test_repeat_configuration_keeps_pool_warm(self):
        """Reconfiguring to the identical name + worker count is a no-op, so
        repeated run_lifecycle(..., executor=...) calls reuse the pool."""
        system = HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0)
        try:
            run_lifecycle(
                system, "census", n_iterations=1, scale=0.25,
                executor="distributed", max_workers=1,
            )
            owned = system.owned_executor
            assert owned is not None
            run_lifecycle(
                system, "census", n_iterations=1, scale=0.25,
                executor="distributed", max_workers=1,
            )
            assert system.owned_executor is owned  # same warm pool
            # a different worker count is a real reconfiguration
            system.configure_executor("distributed", max_workers=2)
            assert system.owned_executor is None
            assert owned.address is None  # old pool shut down
        finally:
            system.close_executor()

    def test_reconfigure_closes_owned_pool(self):
        system = HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0)
        system.configure_executor("distributed", max_workers=1)
        run_lifecycle(system, "census", n_iterations=1, scale=0.25)
        owned = system._owned_executor
        assert owned is not None
        system.configure_executor("inline")
        assert system._owned_executor is None
        assert owned.address is None  # the distributed pool was shut down

    def test_context_manager_closes_owned_pool(self):
        with HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0) as system:
            system.configure_executor("process", max_workers=1)
            run_lifecycle(system, "census", n_iterations=1, scale=0.25)
            owned = system._owned_executor
            assert owned is not None
        assert system._owned_executor is None
        assert owned._pool is None

    def test_instance_configured_executor_stays_caller_owned(self):
        executor = DistributedExecutor(max_workers=1)
        try:
            with HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0) as system:
                system.configure_executor(executor)
                run_lifecycle(system, "census", n_iterations=1, scale=0.25)
                assert system._owned_executor is None
            # leaving the system must not shut down the caller's pool
            assert executor.address is not None
        finally:
            executor.shutdown()
