"""Distributed executor: wire format, worker lifecycle, failure handling.

The distributed executor dispatches serialized COMPUTE payloads to
long-lived worker processes over TCP sockets.  This suite pins down the
pieces the other executors do not have:

* **Wire format** — length-prefixed frames with a magic + protocol-version
  header round-trip over real sockets; a version mismatch, bad magic,
  truncated frame or mid-frame disconnect raises a typed
  :class:`ProtocolError`; a clean close between frames reads as
  end-of-stream.
* **Equivalence** — the distributed strategy produces run statistics
  identical to the inline reference on the synthetic matrix and on a real
  (census) lifecycle, including while a worker is killed mid-run and its
  tasks are requeued to a survivor.
* **Remote workers** — address-configured pools (``workers=["host:port"]``
  dialing pre-started listening ``WorkerServer``s, incl. the ``python -m
  repro.execution.worker`` entrypoint) pass the same equivalence matrix as
  a fifth column, survive a worker kill mid-run, and fail fast on an
  unreachable address.
* **Pipelined dispatch** — each worker connection holds up to
  ``pipeline_depth`` tasks; killing a worker with one in-flight and one
  queued pipelined task requeues both exactly once (no duplicate
  completions) and still matches the inline reference.
* **Artifact FETCH lane** — store-resident inputs ship as
  :class:`ArtifactRef` placeholders that workers resolve from the
  coordinator's bound store; a missing artifact fails the task with a
  typed error instead of killing the worker.
* **Failure handling** — a task whose worker keeps dying fails after
  bounded dispatch attempts with an :class:`ExecutionError` naming it; a
  worker crash mid-operator does not lose the task.
* **Drain + shutdown** — ``finish_run`` drains without releasing workers,
  ``shutdown`` reaps every worker process and the listener, and a
  subsequent ``start`` heals the pool back to full strength.
* **Auto-pooling** — a System configured with ``executor="process"`` or
  ``"distributed"`` *by name* owns one pool reused across lifecycle
  iterations, closed by ``close_executor``/``with system:``/reconfigure.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import signal
import socket
import threading
import time
import warnings

import pytest

from repro.core.dag import Node, WorkflowDAG
from repro.core.operators import Operator
from repro.core.signatures import compute_node_signatures
from repro.exceptions import ExecutionError, ProtocolError
from repro.execution.clock import SimulatedCostModel
from repro.execution.engine import ExecutionEngine
from repro.execution.equivalence import (
    assert_equivalent_runs,
    assert_executors_equivalent,
)
from repro.execution.executors import (
    DistributedExecutor,
    WorkerServer,
    _ArtifactCache,
    _fetch_from_peer,
    _PeerArtifactServer,
    parse_worker_address,
    run_serialized_task,
)
from repro.experiments.runner import run_lifecycle
from repro.optimizer.metrics import StatsStore
from repro.optimizer.oep import solve_oep
from repro.optimizer.omp import StreamingMaterializationPolicy
from repro.storage.serialization import (
    ArtifactRef,
    FRAME_MAGIC,
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    decode_frame,
    deserialize,
    encode_frame,
    message_segments,
    recv_frame,
    recv_message,
    send_frame,
    send_message,
    serialize,
)
from repro.storage.store import InMemoryStore
from repro.systems.base import AUTO_POOLED_EXECUTORS
from repro.systems.helix import HelixSystem
from repro.workloads.synthetic import make_random_dag, make_wide_dag

INF = float("inf")


class WorkerSuicideOperator(Operator):
    """Kills its own worker process before replying — every attempt fails."""

    def config(self):
        return {}

    def run(self, inputs, context):
        os._exit(17)


class InterruptOperator(Operator):
    """Raises KeyboardInterrupt mid-task, like a Ctrl-C hitting the worker."""

    def config(self):
        return {}

    def run(self, inputs, context):
        raise KeyboardInterrupt


def _all_compute_plan(dag: WorkflowDAG):
    return solve_oep(
        dag,
        {name: 1.0 for name in dag.node_names},
        {name: INF for name in dag.node_names},
        forced_compute=dag.node_names,
    )


def _engine_for(executor, **kwargs):
    """An engine wired like the equivalence rig (deterministic cost model)."""
    return ExecutionEngine(
        store=InMemoryStore(),
        policy=StreamingMaterializationPolicy(),
        cost_model=SimulatedCostModel(),
        stats=StatsStore(),
        executor=executor,
        **kwargs,
    )


def _listen_worker_main(port_queue, worker_id=None, heartbeat_interval=0.5, port=0):
    """Entry point of a pre-started listening worker (module-level: spawn-safe)."""
    WorkerServer.listen(
        "127.0.0.1", port, worker_id=worker_id,
        heartbeat_interval=heartbeat_interval,
        on_ready=lambda _host, bound_port: port_queue.put(bound_port),
    )


def _start_listening_workers(count):
    """Start ``count`` listening worker processes; return (processes, addresses)."""
    ctx = multiprocessing.get_context()
    port_queue = ctx.Queue()
    processes = []
    for _ in range(count):
        process = ctx.Process(target=_listen_worker_main, args=(port_queue,), daemon=True)
        process.start()
        processes.append(process)
    addresses = [f"127.0.0.1:{port_queue.get(timeout=10)}" for _ in processes]
    return processes, addresses


def _reap(processes):
    for process in processes:
        if process.is_alive():
            process.terminate()
        process.join(timeout=2.0)


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------
class TestWireFormat:
    def test_frame_round_trip_in_memory(self):
        payload = serialize({"node": "n0", "value": list(range(50))})
        assert decode_frame(encode_frame(payload)) == payload

    def test_frame_round_trip_over_socket(self):
        left, right = socket.socketpair()
        try:
            payloads = [b"", b"x", serialize(("task", "n0", b"blob"))]
            for payload in payloads:
                send_frame(left, payload)
            for payload in payloads:
                assert recv_frame(right) == payload
        finally:
            left.close()
            right.close()

    def test_clean_close_reads_as_end_of_stream(self):
        left, right = socket.socketpair()
        send_frame(left, b"last")
        left.close()
        try:
            assert recv_frame(right) == b"last"
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_protocol_version_mismatch_rejected(self):
        frame = encode_frame(b"payload", version=PROTOCOL_VERSION + 1)
        with pytest.raises(ProtocolError, match="version mismatch"):
            decode_frame(frame)
        left, right = socket.socketpair()
        try:
            left.sendall(frame)
            with pytest.raises(ProtocolError, match="version mismatch"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(b"payload"))
        frame[:2] = b"ZZ"
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame(bytes(frame))

    def test_truncated_frame_rejected(self):
        frame = encode_frame(b"payload")
        with pytest.raises(ProtocolError):
            decode_frame(frame[:-3])
        with pytest.raises(ProtocolError):
            decode_frame(frame[:4])

    def test_mid_frame_disconnect_raises(self):
        left, right = socket.socketpair()
        frame = encode_frame(b"x" * 100)
        left.sendall(frame[:20])
        left.close()
        try:
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_frame(right)
        finally:
            right.close()

    def test_header_constants_are_stable(self):
        """The on-wire header layout is a compatibility contract."""
        frame = encode_frame(b"abc")
        assert frame[:2] == FRAME_MAGIC
        assert int.from_bytes(frame[2:4], "big") == PROTOCOL_VERSION
        assert int.from_bytes(frame[4:8], "big") == 3


# ---------------------------------------------------------------------------
# Protocol v4: canonical payloads, negotiation, batching, fuzz
# ---------------------------------------------------------------------------
class TestWireProtocolV4:
    """Version 4 of the wire protocol: canonical zero-copy payloads, v3
    fallback negotiation, batch envelopes — and the fuzz contract that every
    malformed input surfaces as a typed error, never a dead worker."""

    def test_v4_frame_is_header_plus_canonical_payload(self):
        """The gather-write segments join to exactly the packed frame."""
        message = ("task", "s0", "n0", b"payload-bytes")
        joined = b"".join(bytes(s) for s in message_segments(message))
        assert joined == encode_frame(serialize(message))
        assert joined[:2] == FRAME_MAGIC
        assert int.from_bytes(joined[2:4], "big") == PROTOCOL_VERSION

    def test_send_and_recv_carry_both_protocol_versions(self):
        """A v3 frame is a plain-pickle payload under a version-3 header;
        ``recv_message`` reports which version each frame arrived at."""
        message = ("ack", "w0", "s0", "n0")
        left, right = socket.socketpair()
        try:
            send_message(left, message)
            send_message(left, message, version=3)
            # what a real v3 peer puts on the wire, byte for byte
            left.sendall(encode_frame(pickle.dumps(message, protocol=4), version=3))
            assert recv_message(right) == (message, PROTOCOL_VERSION)
            assert recv_message(right) == (message, 3)
            assert recv_message(right) == (message, 3)
            left.close()
            assert recv_message(right) is None
        finally:
            left.close()
            right.close()

    def test_versions_outside_the_window_are_typed_errors(self):
        message = ("heartbeat", "w0")
        for version in (MIN_PROTOCOL_VERSION - 1, PROTOCOL_VERSION + 1):
            with pytest.raises(ProtocolError, match="version"):
                message_segments(message, version=version)
        left, right = socket.socketpair()
        try:
            left.sendall(encode_frame(b"junk", version=MIN_PROTOCOL_VERSION - 1))
            with pytest.raises(ProtocolError, match="version mismatch"):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_truncated_canonical_payload_is_a_typed_error(self):
        payload = serialize(("result", "s0", "n0", b"x" * 200))
        for cut in (2, 3, 15, len(payload) - 1):
            with pytest.raises(ProtocolError):
                deserialize(payload[:cut])
        left, right = socket.socketpair()
        try:
            left.sendall(encode_frame(payload[:-7]))
            with pytest.raises(ProtocolError):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_unknown_canonical_type_tag_is_a_typed_error(self):
        packed = bytearray(serialize(0))
        # layout: magic(2) + version(1) + buffer count + body length + body
        assert packed[5:6] == b"i"
        packed[5] = 0x51
        with pytest.raises(ProtocolError, match="unknown type tag"):
            deserialize(bytes(packed))

    def test_worker_answers_a_v3_coordinator_at_v3(self):
        """The worker registers optimistically at v4 but downgrades every
        reply to the version the coordinator demonstrably speaks."""
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        coordinator = socket.create_connection(listener.getsockname())
        worker_side, _ = listener.accept()
        listener.close()
        server = WorkerServer(worker_id="v3w", heartbeat_interval=60.0)
        thread = threading.Thread(
            target=lambda: server._serve_connection(worker_side), daemon=True
        )
        thread.start()
        try:
            register, version = recv_message(coordinator)
            assert register[0] == "register" and version == PROTOCOL_VERSION
            payload = serialize(("k1", LatencyOperator(offset=1.0), [], RunContext()))
            send_message(coordinator, ("task", "s0", "k1", payload), version=3)
            ack, version = recv_message(coordinator)
            assert ack == ("ack", "v3w", "s0", "k1")
            assert version == 3
            result, version = recv_message(coordinator)
            assert result[0] == "result" and result[2] == "k1"
            assert version == 3
            send_message(coordinator, ("shutdown",), version=3)
            thread.join(timeout=5)
            assert not thread.is_alive()
        finally:
            coordinator.close()

    def test_worker_acks_a_batch_with_one_batched_frame(self):
        """A ``("batch", ...)`` dispatch is acked in one batched frame; an
        empty envelope is a no-op; a later single task acks singly."""
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        coordinator = socket.create_connection(listener.getsockname())
        worker_side, _ = listener.accept()
        listener.close()
        server = WorkerServer(worker_id="bw", heartbeat_interval=60.0)
        thread = threading.Thread(
            target=lambda: server._serve_connection(worker_side), daemon=True
        )
        thread.start()

        def _task(key):
            payload = serialize((key, LatencyOperator(offset=1.0), [], RunContext()))
            return ("task", "s0", key, payload)

        try:
            register, _ = recv_message(coordinator)
            assert register[0] == "register"
            send_message(coordinator, ("batch", (_task("k1"), _task("k2"))))
            acks, _ = recv_message(coordinator)
            assert acks == (
                "batch",
                (("ack", "bw", "s0", "k1"), ("ack", "bw", "s0", "k2")),
            )
            results = [recv_message(coordinator)[0] for _ in range(2)]
            assert [m[0] for m in results] == ["result", "result"]
            assert [m[2] for m in results] == ["k1", "k2"]  # lane stays FIFO
            send_message(coordinator, ("batch", ()))  # boundary: empty batch
            send_message(coordinator, _task("k3"))
            ack, _ = recv_message(coordinator)
            assert ack == ("ack", "bw", "s0", "k3")
            assert recv_message(coordinator)[0][2] == "k3"
            send_message(coordinator, ("shutdown",))
            thread.join(timeout=5)
            assert not thread.is_alive()
        finally:
            coordinator.close()

    def test_malformed_frames_end_the_session_never_the_worker(self):
        """Fuzzed inputs — bogus batch envelopes, short message tuples,
        out-of-window versions, raw garbage, truncated canonical bodies —
        each close that coordinator session; the listening worker then
        serves the next coordinator as if nothing happened."""
        scenarios = [
            lambda s: send_message(s, ("batch", 42)),
            lambda s: send_message(s, ("task", "session-and-nothing-else")),
            lambda s: s.sendall(encode_frame(b"junk", version=MIN_PROTOCOL_VERSION - 1)),
            lambda s: s.sendall(b"ZZZZZZZZZZZZ"),
            lambda s: s.sendall(
                encode_frame(serialize(("task", "s0", "k", b"x" * 100))[:-3])
            ),
        ]
        ready: "queue.Queue[int]" = queue.Queue()
        worker = threading.Thread(
            target=lambda: WorkerServer.listen(
                "127.0.0.1",
                0,
                worker_id="fuzzed",
                heartbeat_interval=60.0,
                max_sessions=len(scenarios) + 1,
                on_ready=lambda _host, port: ready.put(port),
            ),
            daemon=True,
        )
        worker.start()
        port = ready.get(timeout=10)
        for poke in scenarios:
            sock = socket.create_connection(("127.0.0.1", port), timeout=10)
            try:
                register, _ = recv_message(sock)
                assert register[:2] == ("register", "fuzzed")  # alive pre-poke
                poke(sock)
            finally:
                sock.close()
        # after every malformed session the worker still serves cleanly
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        try:
            register, _ = recv_message(sock)
            assert register[:2] == ("register", "fuzzed")
            send_message(sock, ("shutdown",))
        finally:
            sock.close()
        worker.join(timeout=10)
        assert not worker.is_alive()

    def test_v3_worker_is_never_sent_batches(self):
        """A worker that registered at v3 gets plain-pickle v3 task frames,
        one per dispatch, even when the coordinator could batch."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()[:2]
        seen: "queue.Queue[Tuple[tuple, int]]" = queue.Queue()

        def _v3_worker():
            conn, _ = listener.accept()
            conn.sendall(
                encode_frame(
                    pickle.dumps(("register", "old", 4242, 60.0), protocol=4),
                    version=3,
                )
            )
            try:
                while True:
                    received = recv_message(conn)
                    if received is None:
                        return
                    message, version = received
                    if message[0] == "task":
                        seen.put((message, version))
                        # complete the task so the drain in shutdown returns
                        reply = ("error", message[1], message[2],
                                 ExecutionError("synthetic v3 failure"))
                        conn.sendall(
                            encode_frame(pickle.dumps(
                                ("ack", "old", message[1], message[2]),
                                protocol=4), version=3)
                        )
                        conn.sendall(
                            encode_frame(pickle.dumps(reply, protocol=4), version=3)
                        )
            except (OSError, ProtocolError):
                return

        fake = threading.Thread(target=_v3_worker, daemon=True)
        fake.start()
        executor = DistributedExecutor(
            workers=[f"{host}:{port}"], pipeline_depth=8, max_task_attempts=1
        )
        try:
            executor.start()
            for index in range(3):
                executor.submit_payload(f"n{index}", b"tiny-payload")
            failures = sorted(executor.next_completion()[0] for _ in range(3))
            assert failures == ["n0", "n1", "n2"]
            versions = set()
            kinds = set()
            while not seen.empty():
                message, version = seen.get()
                kinds.add(message[0])
                versions.add(version)
            assert kinds == {"task"}  # no batch envelope ever reached v3
            assert versions == {3}
            executor.finish_run()
        finally:
            executor.shutdown()
            listener.close()

    def test_small_tasks_batch_under_pipelining(self, monkeypatch):
        """Queued small tasks for the same v4 worker coalesce into a
        ``("batch", ...)`` frame — and the run still completes exactly."""
        import repro.execution.executors as executors_module
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        original = executors_module._send_message
        sent = []

        def recording(sock, message, lock=None, version=PROTOCOL_VERSION):
            if isinstance(message, tuple) and message[0] in ("task", "batch"):
                sent.append(message[0])
                if len(sent) == 1:
                    time.sleep(0.3)  # let the remaining submissions queue up
            return original(sock, message, lock, version=version)

        executor = DistributedExecutor(max_workers=1, pipeline_depth=8)
        executor.start()
        try:
            monkeypatch.setattr(executors_module, "_send_message", recording)
            operator = LatencyOperator(offset=1.0)
            for index in range(4):
                executor.submit_payload(
                    f"n{index}", serialize((f"n{index}", operator, [], RunContext()))
                )
            keys = sorted(executor.next_completion()[0] for _ in range(4))
            assert keys == ["n0", "n1", "n2", "n3"]
            assert "batch" in sent, sent
            executor.finish_run()
        finally:
            executor.shutdown()


# ---------------------------------------------------------------------------
# Equivalence (synthetic + real workload), including worker death
# ---------------------------------------------------------------------------
class TestDistributedEquivalence:
    def test_synthetic_matrix_includes_distributed(self):
        dag = make_random_dag(11, max_width=4, max_depth=4)
        rigs, _ = assert_executors_equivalent(dag)
        assert "distributed" in rigs

    def test_kill_one_worker_mid_run_requeues_and_matches_inline(self):
        dag = make_wide_dag(branches=6, depth=2, node_seconds=0.05)
        signatures = compute_node_signatures(dag)
        plan = _all_compute_plan(dag)
        reference = _engine_for("inline").execute(dag, plan, signatures)

        executor = DistributedExecutor(max_workers=2)
        engine = _engine_for(executor)
        executor.start()  # pre-start so a victim pid exists before execute
        try:
            victim = next(iter(executor.worker_pids().values()))
            killer = threading.Timer(0.15, lambda: os.kill(victim, signal.SIGKILL))
            killer.start()
            stats = engine.execute(dag, plan, signatures)
            killer.join()
            # the victim is gone, a survivor finished its requeued tasks
            assert len(executor.worker_pids()) == 1
            assert_equivalent_runs(reference, stats, include_times=False)
        finally:
            executor.shutdown()

    @pytest.mark.integration
    def test_census_lifecycle_on_distributed_matches_inline(self):
        reference = run_lifecycle(
            HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0),
            "census",
            n_iterations=2,
            scale=0.25,
        )
        with HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0) as system:
            candidate = run_lifecycle(
                system,
                "census",
                n_iterations=2,
                scale=0.25,
                executor="distributed",
                max_workers=2,
            )
            assert system.executor_name == "distributed"
        assert len(reference.iterations) == len(candidate.iterations)
        for inline_stats, dist_stats in zip(reference.iterations, candidate.iterations):
            # Canonical serialization keeps exact sizes bit-identical across
            # the distributed boundary (repro/execution/equivalence.py), so
            # storage statistics are compared with exact equality.
            assert_equivalent_runs(inline_stats, dist_stats, include_times=False)
            assert dist_stats.storage_bytes == inline_stats.storage_bytes
            assert dist_stats.node_times == pytest.approx(
                inline_stats.node_times, rel=1e-3
            )


# ---------------------------------------------------------------------------
# Failure handling
# ---------------------------------------------------------------------------
class TestWorkerFailureHandling:
    def test_task_fails_after_bounded_attempts(self):
        """A task that kills every worker it lands on must not hang the run."""
        dag = WorkflowDAG([Node.create("boom", WorkerSuicideOperator(), is_output=True)])
        executor = DistributedExecutor(max_workers=2, max_task_attempts=3)
        engine = _engine_for(executor)
        try:
            with pytest.raises(ExecutionError, match="boom.*dispatch attempt"):
                engine.execute(dag, _all_compute_plan(dag), compute_node_signatures(dag))
        finally:
            executor.shutdown()

    def test_start_heals_dead_workers(self):
        executor = DistributedExecutor(max_workers=2)
        try:
            executor.start()
            assert len(executor.worker_pids()) == 2
            os.kill(next(iter(executor.worker_pids().values())), signal.SIGKILL)
            deadline = time.monotonic() + 5
            while len(executor.worker_pids()) > 1 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert len(executor.worker_pids()) == 1
            executor.start()  # next run tops the pool back up
            assert len(executor.worker_pids()) == 2
        finally:
            executor.shutdown()

    def test_submit_payload_without_workers_raises(self):
        executor = DistributedExecutor(max_workers=1)
        with pytest.raises(ExecutionError, match="before start"):
            executor.submit_payload("n0", b"payload")

    def test_heartbeat_timeout_must_exceed_interval(self):
        """A busy worker only beats every interval: a shorter timeout would
        declare every healthy worker dead."""
        with pytest.raises(ExecutionError, match="heartbeat_timeout"):
            DistributedExecutor(
                max_workers=1, heartbeat_interval=10.0, heartbeat_timeout=5.0
            )
        derived = DistributedExecutor(max_workers=1, heartbeat_interval=2.0)
        assert derived.heartbeat_timeout == pytest.approx(20.0)

    def test_unframeable_payload_fails_task_not_dispatcher(self, monkeypatch):
        """A payload the transport cannot frame (e.g. over the frame limit)
        must fail *that task* — not kill the dispatcher thread or the worker."""
        import repro.execution.executors as executors_module
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        original = executors_module._send_message

        def refusing(sock, message, lock=None, version=PROTOCOL_VERSION):
            if isinstance(message, tuple) and message[0] == "task" and message[2] == "bad":
                raise ProtocolError("frame payload exceeds the frame limit")
            return original(sock, message, lock, version=version)

        executor = DistributedExecutor(max_workers=1)
        executor.start()
        try:
            monkeypatch.setattr(executors_module, "_send_message", refusing)
            executor.submit_payload("bad", b"unframeable")
            key, _, error = executor.next_completion()
            assert key == "bad"
            assert isinstance(error, ExecutionError)
            assert "could not be sent" in str(error)
            # the dispatcher and worker both survived: a good task completes
            executor.submit_payload(
                "good", serialize(("good", LatencyOperator(offset=1.0), [], RunContext()))
            )
            key, outcome, error = executor.next_completion()
            assert key == "good" and error is None
            assert outcome[0] == pytest.approx(1.0)
            executor.finish_run()
        finally:
            executor.shutdown()

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="the worker only inherits the monkeypatch under fork",
    )
    def test_unframeable_reply_surfaces_as_task_error(self, monkeypatch):
        """A worker whose *reply* cannot be framed reports a typed task error
        instead of dying and burning retry attempts (workers are forked, so
        the patch applied before start() is inherited)."""
        import repro.execution.executors as executors_module
        from repro.core.operators import RunContext
        from repro.exceptions import OperatorError
        from repro.workloads.synthetic import LatencyOperator

        original = executors_module._send_message

        def refusing(sock, message, lock=None, version=PROTOCOL_VERSION):
            if isinstance(message, tuple) and message[0] == "result" and message[2] == "huge":
                raise ProtocolError("frame payload exceeds the frame limit")
            return original(sock, message, lock, version=version)

        monkeypatch.setattr(executors_module, "_send_message", refusing)
        executor = DistributedExecutor(max_workers=1)
        executor.start()  # fork happens with the patch in place
        try:
            executor.submit_payload(
                "huge", serialize(("huge", LatencyOperator(offset=1.0), [], RunContext()))
            )
            key, _, error = executor.next_completion()
            assert key == "huge"
            assert isinstance(error, OperatorError)
            assert "could not be framed" in str(error)
            assert len(executor.worker_pids()) == 1  # worker survived
            executor.finish_run()
        finally:
            executor.shutdown()


# ---------------------------------------------------------------------------
# Drain and shutdown
# ---------------------------------------------------------------------------
class TestDrainAndShutdown:
    def test_finish_run_drains_without_releasing_workers(self):
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        executor = DistributedExecutor(max_workers=2)
        try:
            executor.start()
            operator = LatencyOperator(offset=1.0, sleep_seconds=0.05)
            for index in range(4):
                executor.submit_payload(
                    f"n{index}", serialize((f"n{index}", operator, [], RunContext()))
                )
            keys = sorted(executor.next_completion()[0] for _ in range(4))
            executor.finish_run()
            assert keys == ["n0", "n1", "n2", "n3"]
            assert len(executor.worker_pids()) == 2  # pool survives the drain
        finally:
            executor.shutdown()

    def test_shutdown_reaps_workers_and_listener(self):
        executor = DistributedExecutor(max_workers=2)
        executor.start()
        pids = list(executor.worker_pids().values())
        processes = [h.process for h in executor._workers.values()]
        assert executor.address is not None
        executor.shutdown()
        assert executor.address is None
        for process in processes:
            assert not process.is_alive()
        del pids
        # shutdown is idempotent and start() afterwards rebuilds the pool
        executor.shutdown()
        executor.start()
        try:
            assert len(executor.worker_pids()) == 2
        finally:
            executor.shutdown()


# ---------------------------------------------------------------------------
# System-owned pools for name-configured executors
# ---------------------------------------------------------------------------
class TestAutoPooling:
    def test_auto_pooled_names(self):
        assert AUTO_POOLED_EXECUTORS == ("process", "distributed")

    @pytest.mark.parametrize("name", AUTO_POOLED_EXECUTORS)
    def test_name_configured_pool_reused_across_iterations(self, name):
        system = HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0)
        system.configure_executor(name, max_workers=2)
        try:
            result = run_lifecycle(system, "census", n_iterations=2, scale=0.25)
            assert len(result.iterations) == 2
            owned = system._owned_executor
            assert owned is not None and owned.name == name
            if name == "process":
                assert owned._pool is not None  # survived both iterations
            else:
                assert len(owned.worker_pids()) == 2
        finally:
            system.close_executor()
        assert system._owned_executor is None

    def test_repeat_configuration_keeps_pool_warm(self):
        """Reconfiguring to the identical name + worker count is a no-op, so
        repeated run_lifecycle(..., executor=...) calls reuse the pool."""
        system = HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0)
        try:
            run_lifecycle(
                system, "census", n_iterations=1, scale=0.25,
                executor="distributed", max_workers=1,
            )
            owned = system.owned_executor
            assert owned is not None
            run_lifecycle(
                system, "census", n_iterations=1, scale=0.25,
                executor="distributed", max_workers=1,
            )
            assert system.owned_executor is owned  # same warm pool
            # a different worker count is a real reconfiguration
            system.configure_executor("distributed", max_workers=2)
            assert system.owned_executor is None
            assert owned.address is None  # old pool shut down
        finally:
            system.close_executor()

    def test_reconfigure_closes_owned_pool(self):
        system = HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0)
        system.configure_executor("distributed", max_workers=1)
        run_lifecycle(system, "census", n_iterations=1, scale=0.25)
        owned = system._owned_executor
        assert owned is not None
        system.configure_executor("inline")
        assert system._owned_executor is None
        assert owned.address is None  # the distributed pool was shut down

    def test_context_manager_closes_owned_pool(self):
        with HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0) as system:
            system.configure_executor("process", max_workers=1)
            run_lifecycle(system, "census", n_iterations=1, scale=0.25)
            owned = system._owned_executor
            assert owned is not None
        assert system._owned_executor is None
        assert owned._pool is None

    def test_instance_configured_executor_stays_caller_owned(self):
        executor = DistributedExecutor(max_workers=1)
        try:
            with HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0) as system:
                system.configure_executor(executor)
                run_lifecycle(system, "census", n_iterations=1, scale=0.25)
                assert system._owned_executor is None
            # leaving the system must not shut down the caller's pool
            assert executor.address is not None
        finally:
            executor.shutdown()


# ---------------------------------------------------------------------------
# Remote (address-configured) workers
# ---------------------------------------------------------------------------
class TestRemoteWorkers:
    def test_parse_worker_address(self):
        assert parse_worker_address("127.0.0.1:7071") == ("127.0.0.1", 7071)
        assert parse_worker_address(("host", 9)) == ("host", 9)
        assert parse_worker_address("[::1]:7071") == ("::1", 7071)
        for bad in (
            "no-port", "host:", ":7071", "host:notaport", "host:0",
            "host:70000", "::1", "[]:7071", "2001:db8::1:7071",
        ):
            with pytest.raises(ExecutionError):
                parse_worker_address(bad)

    def test_workers_spec_validation(self):
        with pytest.raises(ExecutionError, match="at least one"):
            DistributedExecutor(workers=[])
        with pytest.raises(ExecutionError, match="duplicate"):
            DistributedExecutor(workers=["h:1", "h:1"])
        with pytest.raises(ExecutionError, match="conflicts"):
            DistributedExecutor(workers=["h:1"], max_workers=3)
        # matching max_workers is accepted, and the address count wins anyway
        executor = DistributedExecutor(workers=["h:1", "h:2"], max_workers=2)
        assert executor.max_workers == 2
        assert executor.uses_artifact_refs  # remote workers default to the fetch lane
        from repro.execution.executors import create_executor

        with pytest.raises(ExecutionError, match="only valid"):
            create_executor("thread", workers=["h:1"])
        with pytest.raises(ExecutionError, match="instance"):
            create_executor(executor, workers=["h:1"])

    def test_configure_executor_rejects_workers_for_other_names(self):
        system = HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0)
        with pytest.raises(ExecutionError, match="only valid"):
            system.configure_executor("thread", workers=["h:1"])

    def test_unreachable_address_fails_fast(self):
        # nothing listens on the reserved discard port on loopback
        executor = DistributedExecutor(
            workers=["127.0.0.1:9"], start_timeout=0.6, connect_timeout=0.3
        )
        with pytest.raises(ExecutionError, match="could not connect"):
            executor.start()
        executor.shutdown()

    def test_remote_matrix_equivalence_column(self):
        """The equivalence matrix passes with an address-configured column.

        The remote executor defaults to the artifact FETCH lane, so
        iteration 1 of the rig (COMPUTE nodes whose parents are store
        resident) also exercises ArtifactRef shipping end to end.
        """
        processes, addresses = _start_listening_workers(2)
        executor = DistributedExecutor(workers=addresses)
        try:
            dag = make_random_dag(11, max_width=4, max_depth=4)
            rigs, _ = assert_executors_equivalent(
                dag, executors=("inline", ("distributed-remote", executor))
            )
            assert set(rigs) == {"inline", "distributed-remote"}
            assert executor.uses_artifact_refs
        finally:
            executor.shutdown()
            _reap(processes)

    def test_kill_remote_worker_mid_run_requeues_and_matches_inline(self):
        dag = make_wide_dag(branches=6, depth=2, node_seconds=0.05)
        signatures = compute_node_signatures(dag)
        plan = _all_compute_plan(dag)
        reference = _engine_for("inline").execute(dag, plan, signatures)

        processes, addresses = _start_listening_workers(2)
        executor = DistributedExecutor(workers=addresses)
        engine = _engine_for(executor)
        executor.start()  # pre-start so a victim exists before execute
        try:
            victim = processes[0]
            killer = threading.Timer(0.15, victim.kill)
            killer.start()
            stats = engine.execute(dag, plan, signatures)
            killer.join()
            assert len(executor.worker_pids()) == 1
            assert_equivalent_runs(reference, stats, include_times=False)
        finally:
            executor.shutdown()
            _reap(processes)

    def test_worker_entrypoint_serves_coordinator(self):
        """`python -m repro.execution.worker` announces its port and serves
        one coordinator session, then exits (--max-sessions 1)."""
        import re
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.execution.worker",
             "--port", "0", "--worker-id", "ci-smoke", "--max-sessions", "1"],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            match = re.match(r"worker ci-smoke listening on ([\d.]+):(\d+)", line)
            assert match, f"unexpected readiness line: {line!r}"
            address = f"{match.group(1)}:{match.group(2)}"
            executor = DistributedExecutor(workers=[address])
            executor.start()
            from repro.core.operators import RunContext
            from repro.workloads.synthetic import LatencyOperator

            executor.submit_payload(
                "n0", serialize(("n0", LatencyOperator(offset=3.0), [], RunContext()))
            )
            key, outcome, error = executor.next_completion()
            assert (key, error) == ("n0", None)
            assert outcome[0] == pytest.approx(3.0)
            executor.finish_run()
            executor.shutdown()
            assert process.wait(timeout=10) == 0  # one session served, clean exit
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=5)


# ---------------------------------------------------------------------------
# Pipelined dispatch
# ---------------------------------------------------------------------------
class TestPipelinedDispatch:
    def test_pipeline_depth_validated(self):
        with pytest.raises(ExecutionError, match="pipeline_depth"):
            DistributedExecutor(max_workers=1, pipeline_depth=0)
        assert DistributedExecutor(max_workers=1, pipeline_depth=1).pipeline_depth == 1

    def test_tasks_stack_up_to_depth_on_one_worker(self):
        """With one worker and depth 2, a second task is dispatched (and
        acked by the worker's reader thread) while the first executes."""
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        executor = DistributedExecutor(max_workers=1, pipeline_depth=2)
        try:
            executor.start()
            operator = LatencyOperator(offset=1.0, sleep_seconds=0.3)
            for index in range(3):
                executor.submit_payload(
                    f"n{index}", serialize((f"n{index}", operator, [], RunContext()))
                )
            deadline = time.monotonic() + 5
            peak = 0
            while time.monotonic() < deadline:
                with executor._lock:
                    loads = [len(h.inflight) for h in executor._workers.values()]
                peak = max(peak, max(loads, default=0))
                if peak >= 2:
                    break
                time.sleep(0.01)
            assert peak == 2  # never above depth, and the window does fill
            keys = sorted(executor.next_completion()[0] for _ in range(3))
            assert keys == ["n0", "n1", "n2"]
            executor.finish_run()
        finally:
            executor.shutdown()

    def test_kill_worker_with_pipelined_tasks_requeues_each_exactly_once(self):
        """A dead worker orphans its executing task *and* its queued
        pipelined task; both must complete exactly once on the survivor."""
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        executor = DistributedExecutor(max_workers=2, pipeline_depth=2)
        try:
            executor.start()
            for index in range(4):
                operator = LatencyOperator(offset=float(index), sleep_seconds=0.4)
                executor.submit_payload(
                    f"n{index}", serialize((f"n{index}", operator, [], RunContext()))
                )
            # wait until some worker holds a full pipeline window (one task
            # executing + one queued on its connection), then kill it
            deadline = time.monotonic() + 5
            victim_pid = None
            while time.monotonic() < deadline:
                with executor._lock:
                    for handle in executor._workers.values():
                        if handle.alive and len(handle.inflight) == 2:
                            victim_pid = handle.pid
                            break
                if victim_pid is not None:
                    break
                time.sleep(0.01)
            assert victim_pid is not None, "pipeline window never filled"
            os.kill(victim_pid, signal.SIGKILL)

            completions = [executor.next_completion() for _ in range(4)]
            executor.finish_run()
            assert executor._results.empty()  # no duplicate retirement
            by_key = {}
            for key, outcome, error in completions:
                assert error is None, f"task {key} failed: {error}"
                assert key not in by_key, f"task {key} completed twice"
                by_key[key] = outcome[0]
            # every task ran to its correct value despite the requeue
            assert by_key == {f"n{i}": pytest.approx(float(i)) for i in range(4)}
            assert len(executor.worker_pids()) == 1
        finally:
            executor.shutdown()

    def test_engine_equivalence_with_pipelined_worker_death(self):
        """Engine-level: a mid-run worker kill under pipelined dispatch
        still produces statistics identical to the inline reference."""
        dag = make_wide_dag(branches=8, depth=2, node_seconds=0.04)
        signatures = compute_node_signatures(dag)
        plan = _all_compute_plan(dag)
        reference = _engine_for("inline").execute(dag, plan, signatures)

        executor = DistributedExecutor(max_workers=2, pipeline_depth=2)
        engine = _engine_for(executor)
        executor.start()
        try:
            victim = next(iter(executor.worker_pids().values()))
            killer = threading.Timer(0.1, lambda: os.kill(victim, signal.SIGKILL))
            killer.start()
            stats = engine.execute(dag, plan, signatures)
            killer.join()
            assert_equivalent_runs(reference, stats, include_times=False)
        finally:
            executor.shutdown()


# ---------------------------------------------------------------------------
# Artifact FETCH lane (store access for workers without the coordinator's fs)
# ---------------------------------------------------------------------------
class TestArtifactFetchLane:
    def test_artifact_ref_round_trips(self):
        ref = ArtifactRef("sig-1")
        assert deserialize(serialize(ref)) == ref
        assert ref != ArtifactRef("sig-2")
        assert repr(ref) == "ArtifactRef('sig-1')"

    def test_ref_without_resolver_fails_typed(self):
        from repro.core.operators import RunContext
        from repro.exceptions import OperatorError
        from repro.workloads.synthetic import LatencyOperator

        payload = serialize(
            ("n0", LatencyOperator(offset=1.0), [ArtifactRef("sig")], RunContext())
        )
        with pytest.raises(OperatorError, match="no fetch lane"):
            run_serialized_task(payload)

    def test_fetched_input_feeds_the_operator(self):
        """A store-resident input shipped as a ref is fetched, deserialized
        and fed to the operator exactly like an inline value."""
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        store = InMemoryStore()
        store.put("parent", "sig-parent", 21.0)
        executor = DistributedExecutor(max_workers=1, fetch_inputs=True)
        assert executor.uses_artifact_refs
        executor.bind_store(store)
        try:
            executor.start()
            executor.submit_payload(
                "child",
                serialize(
                    ("child", LatencyOperator(offset=1.0), [ArtifactRef("sig-parent")], RunContext())
                ),
            )
            key, outcome, error = executor.next_completion()
            assert (key, error) == ("child", None)
            assert outcome[0] == pytest.approx(22.0)  # offset + fetched 21.0
            executor.finish_run()
        finally:
            executor.shutdown()

    def test_missing_artifact_fails_task_not_worker(self):
        from repro.core.operators import RunContext
        from repro.exceptions import OperatorError
        from repro.workloads.synthetic import LatencyOperator

        executor = DistributedExecutor(max_workers=1, fetch_inputs=True)
        executor.bind_store(InMemoryStore())
        try:
            executor.start()
            executor.submit_payload(
                "bad",
                serialize(
                    ("bad", LatencyOperator(offset=1.0), [ArtifactRef("nope")], RunContext())
                ),
            )
            key, _, error = executor.next_completion()
            assert key == "bad"
            assert isinstance(error, OperatorError)
            assert "no stored artifact" in str(error)
            # the worker survived the failed fetch and still serves tasks
            executor.submit_payload(
                "good", serialize(("good", LatencyOperator(offset=2.0), [], RunContext()))
            )
            key, outcome, error = executor.next_completion()
            assert (key, error) == ("good", None)
            assert outcome[0] == pytest.approx(2.0)
            executor.finish_run()
        finally:
            executor.shutdown()

    def test_engine_equivalence_with_fetch_lane_local_workers(self):
        """The full engine lifecycle (iteration 1 computes over
        store-resident parents, which ship as refs) matches inline."""
        executor = DistributedExecutor(max_workers=2, fetch_inputs=True)
        try:
            dag = make_random_dag(10, max_width=4, max_depth=4)
            rigs, _ = assert_executors_equivalent(
                dag, executors=("inline", ("distributed-fetch", executor))
            )
            assert set(rigs) == {"inline", "distributed-fetch"}
        finally:
            executor.shutdown()


# ---------------------------------------------------------------------------
# Worker-to-worker artifact plane (protocol v5)
# ---------------------------------------------------------------------------
def _scripted_worker(worker_id="p0", fetch_timeout=5.0, peer_fetch=True):
    """A real WorkerServer served over a scripted coordinator TCP socket.

    Returns ``(server, coordinator_sock, thread)``; the caller speaks the
    coordinator side of the protocol frame by frame.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    coordinator = socket.create_connection(listener.getsockname())
    worker_side, _ = listener.accept()
    listener.close()
    server = WorkerServer(
        worker_id=worker_id,
        heartbeat_interval=60.0,
        fetch_timeout=fetch_timeout,
        peer_fetch=peer_fetch,
    )
    thread = threading.Thread(
        target=lambda: server._serve_connection(worker_side), daemon=True
    )
    thread.start()
    return server, coordinator, thread


def _next_nonbeat(coordinator):
    while True:
        frame = recv_frame(coordinator)
        assert frame is not None, "worker closed the connection early"
        message = deserialize(frame)
        if message[0] != "heartbeat":
            return message


class TestArtifactPlane:
    def test_peer_server_round_trip_and_miss(self):
        """``_fetch_from_peer`` pulls the exact cached bytes off a peer's
        artifact listener; a signature the peer no longer holds answers
        ``None`` (a miss, not an error)."""
        cache = _ArtifactCache()
        blob = serialize({"weights": list(range(32))})
        cache.put("sig-w", deserialize(blob), blob)
        peer = _PeerArtifactServer(cache, host="127.0.0.1")
        peer.start()
        try:
            fetched = _fetch_from_peer(("127.0.0.1", peer.port), "sig-w")
            assert fetched == blob  # byte-exact: same content address, same bytes
            assert _fetch_from_peer(("127.0.0.1", peer.port), "sig-evicted") is None
            assert cache.stats()["peer_serves"] == 1
        finally:
            peer.close()

    def test_dead_peer_raises_for_the_fallback_path(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead_address = probe.getsockname()
        probe.close()  # nothing listens here anymore
        with pytest.raises(OSError):
            _fetch_from_peer(dead_address, "sig", timeout=1.0)

    def test_worker_fetches_artifact_from_peer_not_coordinator(self):
        """The tentpole flow end to end with two real workers: worker A
        resolves a ref through the coordinator-streamed path, worker B is
        ``located`` at A and pulls the blob worker-to-worker — the
        coordinator sees B's locate and B's ``cached`` announcement, but
        never a byte-carrying fetch from B."""
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        blob = serialize(21.0)
        worker_a, coord_a, thread_a = _scripted_worker("pa")
        worker_b, coord_b, thread_b = _scripted_worker("pb")
        try:
            register_a = _next_nonbeat(coord_a)
            register_b = _next_nonbeat(coord_b)
            assert register_a[0] == register_b[0] == "register"
            # v5 registration announces each worker's peer listener address
            peer_addr_a = register_a[4]
            assert peer_addr_a == ("127.0.0.1", worker_a._peer_server.port)

            def _send_task(coordinator, key):
                payload = serialize(
                    (key, LatencyOperator(offset=1.0), [ArtifactRef("sigZ")], RunContext())
                )
                send_frame(coordinator, serialize(("task", "s1", key, payload)))

            # worker A: locate answers no peers -> coordinator-streamed path
            _send_task(coord_a, "ka")
            assert _next_nonbeat(coord_a)[0] == "ack"
            locate = _next_nonbeat(coord_a)
            assert locate == ("locate", "pa", "s1", "sigZ")
            send_frame(coord_a, serialize(("located", "s1", "sigZ", ())))
            fetch = _next_nonbeat(coord_a)
            assert fetch == ("fetch", "pa", "s1", "sigZ")
            send_frame(coord_a, serialize(("artifact", "s1", "sigZ", blob)))
            assert _next_nonbeat(coord_a)[0] == "result"

            # worker B: located at A -> the bytes move worker-to-worker
            _send_task(coord_b, "kb")
            assert _next_nonbeat(coord_b)[0] == "ack"
            locate = _next_nonbeat(coord_b)
            assert locate == ("locate", "pb", "s1", "sigZ")
            send_frame(coord_b, serialize(("located", "s1", "sigZ", (peer_addr_a,))))
            # next frames: the cached announcement and the result — and
            # crucially no ("fetch", ...) ever arrives from B
            kinds = {_next_nonbeat(coord_b)[0] for _ in range(2)}
            assert kinds == {"cached", "result"}
            assert worker_b.cache.stats()["peer_fetches"] == 1
            assert worker_b.cache.stats()["coordinator_fetches"] == 0
            assert worker_a.cache.stats()["peer_serves"] == 1
            # B now holds byte-identical state: same content address, same bytes
            assert worker_b.cache.blob("sigZ") == blob
        finally:
            for coordinator in (coord_a, coord_b):
                try:
                    send_frame(coordinator, serialize(("shutdown",)))
                except OSError:
                    pass
                coordinator.close()
            thread_a.join(timeout=5)
            thread_b.join(timeout=5)

    def test_peer_death_mid_fetch_degrades_with_single_warning(self):
        """Kill the owning peer between the coordinator's ``located`` answer
        and the dial: the fetch degrades to the coordinator-streamed path
        with exactly one ``RuntimeWarning`` — the task still succeeds."""
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        # the "owning peer": a listener that is already dead by dial time
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead_peer = probe.getsockname()
        probe.close()

        server, coordinator, thread = _scripted_worker("pw", fetch_timeout=10.0)
        try:
            assert _next_nonbeat(coordinator)[0] == "register"
            payload = serialize(
                ("k", LatencyOperator(offset=1.0), [ArtifactRef("sigD")], RunContext())
            )
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                send_frame(coordinator, serialize(("task", "s1", "k", payload)))
                assert _next_nonbeat(coordinator)[0] == "ack"
                locate = _next_nonbeat(coordinator)
                assert locate == ("locate", "pw", "s1", "sigD")
                # answer with two dead addresses: still ONE warning total
                send_frame(
                    coordinator,
                    serialize(("located", "s1", "sigD", (dead_peer, dead_peer))),
                )
                fetch = _next_nonbeat(coordinator)
                assert fetch == ("fetch", "pw", "s1", "sigD")
                send_frame(
                    coordinator, serialize(("artifact", "s1", "sigD", serialize(5.0)))
                )
                result = _next_nonbeat(coordinator)
                assert result[0] == "result"  # the task never failed
            plane_warnings = [
                w for w in caught if issubclass(w.category, RuntimeWarning)
                and "peer fetch" in str(w.message)
            ]
            assert len(plane_warnings) == 1, [str(w.message) for w in caught]
            assert "falling back" in str(plane_warnings[0].message)
            assert server.cache.stats()["peer_fetch_failures"] == 1
            assert server.cache.stats()["coordinator_fetches"] == 1
        finally:
            try:
                send_frame(coordinator, serialize(("shutdown",)))
            except OSError:
                pass
            coordinator.close()
            thread.join(timeout=5)

    def test_v4_coordinator_gets_no_artifact_plane_frames(self):
        """A worker that negotiated down to v4 must resolve refs exactly as
        before the plane existed: no ``locate``, no peer dials — straight
        to the coordinator-streamed fetch."""
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        server, coordinator, thread = _scripted_worker("pv4")
        try:
            assert _next_nonbeat(coordinator)[0] == "register"
            payload = serialize(
                ("k", LatencyOperator(offset=1.0), [ArtifactRef("sigV")], RunContext())
            )
            # the v4-stamped frame downgrades the connection's peer version
            send_frame(
                coordinator, serialize(("task", "s1", "k", payload)), version=4
            )
            assert _next_nonbeat(coordinator)[0] == "ack"
            fetch = _next_nonbeat(coordinator)
            assert fetch == ("fetch", "pv4", "s1", "sigV")  # no locate first
            send_frame(
                coordinator,
                serialize(("artifact", "s1", "sigV", serialize(3.0))),
                version=4,
            )
            assert _next_nonbeat(coordinator)[0] == "result"
        finally:
            try:
                send_frame(coordinator, serialize(("shutdown",)), version=4)
            except OSError:
                pass
            coordinator.close()
            thread.join(timeout=5)

    def test_locate_answers_empty_when_peer_fetch_disabled(self):
        """``DistributedExecutor(peer_fetch=False)`` never hands out peer
        addresses — and spawned workers skip the locate round trip
        entirely, so the plane is fully off."""
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        store = InMemoryStore()
        store.put("parent", "sig-off", 21.0)
        executor = DistributedExecutor(
            max_workers=1, fetch_inputs=True, peer_fetch=False
        )
        executor.bind_store(store)
        try:
            executor.start()
            executor.submit_payload(
                "child",
                serialize(
                    ("child", LatencyOperator(offset=1.0), [ArtifactRef("sig-off")], RunContext())
                ),
            )
            key, outcome, error = executor.next_completion()
            assert (key, error) == ("child", None)
            assert outcome[0] == pytest.approx(22.0)
            executor.finish_run()
            plane = executor.artifact_plane_stats()
            assert plane["locates_served"] == 0
            assert plane["locates_with_peers"] == 0
            assert plane["fetches_served"] == 1
        finally:
            executor.shutdown()

    def test_equivalence_exact_storage_across_all_fetch_paths(self):
        """Acceptance: run statistics AND persisted storage (artifact
        sizes + content digests) are exactly equal whichever way the bytes
        traveled — peer fetch, coordinator-only fallback (``peer_fetch``
        off), and a warm shared cache tier (the same fleet re-run, its
        workers already holding every artifact)."""
        peer = DistributedExecutor(max_workers=2, fetch_inputs=True)
        nopeer = DistributedExecutor(
            max_workers=2, fetch_inputs=True, peer_fetch=False
        )
        try:
            dag = make_random_dag(10, max_width=4, max_depth=4)
            rigs, _ = assert_executors_equivalent(
                dag,
                executors=(
                    "inline",
                    ("distributed-peer", peer),
                    ("distributed-coordinator-only", nopeer),
                ),
            )
            assert set(rigs) == {
                "inline", "distributed-peer", "distributed-coordinator-only"
            }
            # warm path: same fleet again — its workers' artifact tiers
            # already hold the signatures, so resolution comes from cache
            assert_executors_equivalent(
                dag, executors=("inline", ("distributed-warm", peer))
            )
        finally:
            peer.shutdown()
            nopeer.shutdown()

    def test_coordinator_locate_and_site_bookkeeping(self):
        """Unit-level checks of the coordinator's location index: sites are
        recorded on fetch serves and ``cached`` announcements, the asker is
        excluded from its own answer, dialable-peer filtering drops workers
        without a peer listener, and a dead worker's sites are pruned."""
        executor = DistributedExecutor(max_workers=2)
        holder = executor._workers.setdefault("w-holder", _make_handle("w-holder"))
        asker = executor._workers.setdefault("w-asker", _make_handle("w-asker"))
        holder.peer_address = ("127.0.0.1", 4001)
        asker.peer_address = ("127.0.0.1", 4002)

        executor._record_site("w-holder", "sigX")
        executor._record_site("w-asker", "sigX")
        sent = []

        def _capture(sock, message, lock=None, version=PROTOCOL_VERSION):
            sent.append(message)

        import repro.execution.executors as executors_module

        original = executors_module._send_message
        executors_module._send_message = _capture
        try:
            executor._answer_locate(asker, "s1", "sigX")
            # the asker never gets itself back, only the other holder
            assert sent[-1] == ("located", "s1", "sigX", (("127.0.0.1", 4001),))
            # a holder without a peer listener (v4 worker) is not dialable
            holder.peer_address = None
            executor._answer_locate(asker, "s1", "sigX")
            assert sent[-1] == ("located", "s1", "sigX", ())
            holder.peer_address = ("127.0.0.1", 4001)
            # a dead worker's sites are pruned wholesale
            executor._worker_failed(holder)
            executor._answer_locate(asker, "s1", "sigX")
            assert sent[-1] == ("located", "s1", "sigX", ())
            assert "w-holder" not in executor._worker_sites
            stats = executor.artifact_plane_stats()
            assert stats["locates_served"] == 3
            assert stats["locates_with_peers"] == 1
        finally:
            executors_module._send_message = original


def _make_handle(worker_id):
    from repro.execution.executors import _WorkerHandle

    handle = _WorkerHandle(worker_id)
    handle.sock = socket.socket()  # never written: _send_message is stubbed
    return handle


# ---------------------------------------------------------------------------
# Review-fix regressions
# ---------------------------------------------------------------------------
class TestReviewRegressions:
    def test_recv_frame_reports_mid_frame_progress(self):
        """Chunked arrival of one frame fires on_progress per chunk, so the
        coordinator can count an in-flight large transfer as liveness."""
        left, right = socket.socketpair()
        frame = encode_frame(b"x" * 100)
        ticks = []
        try:
            received = {}

            def _recv():
                received["payload"] = recv_frame(right, on_progress=lambda: ticks.append(1))

            reader = threading.Thread(target=_recv)
            reader.start()
            left.sendall(frame[:20])
            time.sleep(0.05)
            left.sendall(frame[20:])
            reader.join(timeout=5)
            assert received["payload"] == b"x" * 100
            assert len(ticks) >= 2  # header chunk + at least one payload chunk
        finally:
            left.close()
            right.close()

    def test_run_lifecycle_rejects_workers_without_executor(self):
        system = HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0)
        with pytest.raises(ExecutionError, match="requires executor"):
            run_lifecycle(system, "census", n_iterations=1, workers=["127.0.0.1:7071"])

    def test_load_serialized_forwards_stored_bytes(self, tmp_path):
        from pathlib import Path

        from repro.storage.store import DiskStore

        value = {"weights": list(range(32))}
        memory = InMemoryStore()
        memory.put("node", "sig", value)
        blob = memory.load_serialized("sig")
        assert blob is memory._blobs["sig"]  # no re-serialization pass
        assert deserialize(blob) == value
        assert memory.load_serialized("unknown") is None

        disk = DiskStore(Path(tmp_path))
        disk.put("node", "sig", value)
        assert deserialize(disk.load_serialized("sig")) == value
        assert disk.load_serialized("unknown") is None

    def test_system_annotations_resolve_at_runtime(self):
        """`from __future__ import annotations` hides a missing typing
        import until get_type_hints runs (Sphinx/pydantic/dataclasses)."""
        import typing

        from repro.systems.base import System

        hints = typing.get_type_hints(System.configure_executor)
        assert "workers" in hints

    def test_failed_strict_start_stays_strict_on_retry(self):
        """A first start that failed must not downgrade a retry to the
        best-effort (warn-and-proceed) healing semantics."""
        executor = DistributedExecutor(
            workers=["127.0.0.1:9"], start_timeout=0.4, connect_timeout=0.2
        )
        with pytest.raises(ExecutionError, match="could not connect"):
            executor.start()
        with pytest.raises(ExecutionError, match="could not connect"):
            executor.start()  # still strict: raises, does not warn
        executor.shutdown()

    def test_worker_death_phase_reports_delivery_not_execution(self):
        """Pipelined tasks are acked on *receipt*, so failure messages talk
        about delivery ('receiving'), never claim the operator was running."""
        dag = WorkflowDAG([Node.create("boom", WorkerSuicideOperator(), is_output=True)])
        executor = DistributedExecutor(max_workers=1, max_task_attempts=1)
        engine = _engine_for(executor)
        try:
            with pytest.raises(ExecutionError, match="receiving it"):
                engine.execute(dag, _all_compute_plan(dag), compute_node_signatures(dag))
        finally:
            executor.shutdown()

    def test_interrupt_reports_error_then_kills_the_worker_loop(self):
        """A KeyboardInterrupt raised during task execution must be reported
        back as a task error AND still tear the worker loop down — the old
        ``BaseException``-and-continue handler pickled a Ctrl-C into a mere
        task error, leaving behind a worker that refused to die."""
        from repro.core.operators import RunContext

        # a real TCP pair: the worker loop sets TCP_NODELAY, which an
        # AF_UNIX socketpair would reject
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        coordinator = socket.create_connection(listener.getsockname())
        worker_side, _ = listener.accept()
        listener.close()
        server = WorkerServer(worker_id="t0", heartbeat_interval=60.0)
        raised = {}

        def _serve():
            try:
                server._serve_connection(worker_side)
            except BaseException as exc:  # noqa: BLE001 - captured for assertion
                raised["exc"] = exc

        thread = threading.Thread(target=_serve, daemon=True)
        thread.start()
        try:
            register = deserialize(recv_frame(coordinator))
            assert register[0] == "register" and register[1] == "t0"
            payload = serialize(("boom", InterruptOperator(), [], RunContext()))
            send_frame(coordinator, serialize(("task", "s0", "boom", payload)))
            frames = []
            while True:
                frame = recv_frame(coordinator)
                if frame is None:
                    break  # the dying worker loop closed its end
                message = deserialize(frame)
                if message[0] != "heartbeat":
                    frames.append(message)
            thread.join(timeout=5)
            assert not thread.is_alive()
            # the failure was reported best-effort before the loop died...
            assert [m[0] for m in frames] == ["ack", "error"], frames
            _, session, key, _error = frames[1]
            assert (session, key) == ("s0", "boom")
            # ...and the interrupt still propagated out of the serve loop
            assert isinstance(raised.get("exc"), KeyboardInterrupt)
        finally:
            coordinator.close()

    def test_close_session_keeps_artifact_cache_but_drops_session_state(self):
        """``close_session`` releases the session's lane and pending slots,
        but the **content-addressed artifact tier survives** — it is keyed
        on canonical signatures (entries can never go stale) and bounded by
        its own LRU budget, and keeping it warm across run sessions is what
        lets the next ``repro serve`` run reuse this one's artifacts.
        Observable on the wire: a re-fetch after the close produces **no**
        ``locate``/``fetch`` frame at all — the task resolves straight from
        the surviving cache."""
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        # a real TCP pair: the worker loop sets TCP_NODELAY, which an
        # AF_UNIX socketpair would reject
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        coordinator = socket.create_connection(listener.getsockname())
        worker_side, _ = listener.accept()
        listener.close()
        server = WorkerServer(
            worker_id="t1", heartbeat_interval=60.0, fetch_timeout=5.0
        )
        thread = threading.Thread(
            target=lambda: server._serve_connection(worker_side), daemon=True
        )
        thread.start()

        def _next_message():
            # Skip heartbeats: the 60s interval sends none periodically, but
            # close_session flushes one final stats-carrying beat (v5).
            while True:
                frame = recv_frame(coordinator)
                assert frame is not None, "worker closed the connection early"
                message = deserialize(frame)
                if message[0] != "heartbeat":
                    return message

        def _send_task(key, session="s1"):
            payload = serialize(
                (key, LatencyOperator(offset=1.0), [ArtifactRef("sigA")], RunContext())
            )
            send_frame(coordinator, serialize(("task", session, key, payload)))

        def _serve_fetch(session="s1"):
            # v5 worker first asks where the blob lives; an empty peer list
            # routes it to the classic coordinator-streamed fetch.
            locate = _next_message()
            assert locate[:1] + locate[2:] == ("locate", session, "sigA"), locate
            send_frame(coordinator, serialize(("located", session, "sigA", ())))
            fetch = _next_message()
            assert fetch[:1] + fetch[2:] == ("fetch", session, "sigA"), fetch
            send_frame(
                coordinator,
                serialize(("artifact", session, "sigA", serialize(21.0))),
            )

        try:
            assert _next_message()[0] == "register"
            # first task populates the artifact tier via a fetch round trip
            _send_task("k1")
            assert _next_message()[0] == "ack"
            _serve_fetch()
            assert _next_message()[0] == "result"
            # second task is served from the cache: no fetch frame appears
            _send_task("k2")
            assert _next_message()[0] == "ack"
            assert _next_message()[0] == "result"
            # after close_session the cache survives: still no fetch frame,
            # even from a *different* session (content addressing makes the
            # entry shareable across runs)
            send_frame(coordinator, serialize(("close_session", "s1")))
            _send_task("k3", session="s2")
            assert _next_message()[0] == "ack"
            assert _next_message()[0] == "result"
            send_frame(coordinator, serialize(("shutdown",)))
            thread.join(timeout=5)
            assert not thread.is_alive()
            # the cross-session resolve above is visible in the tier's stats
            stats = server.cache.stats()
            assert stats["cross_session_hits"] >= 1
            assert stats["coordinator_fetches"] == 1
        finally:
            coordinator.close()

    def test_closing_a_session_notifies_connected_workers(self):
        """``DistributedSession.shutdown`` must broadcast the session's
        ``close_session`` frame to every connected worker — the coordinator
        half of the worker-side state release above."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()[:2]
        worker_sock = {}

        def _fake_worker():
            conn, _ = listener.accept()
            # announce a slow heartbeat so silence never kills this worker
            send_frame(conn, serialize(("register", "fake", 4242, 60.0)))
            worker_sock["conn"] = conn

        acceptor = threading.Thread(target=_fake_worker, daemon=True)
        acceptor.start()
        executor = DistributedExecutor(workers=[f"{host}:{port}"])
        try:
            executor.start()
            acceptor.join(timeout=5)
            session = executor.session()
            session.start()
            session_id = session.session_id
            session.shutdown()
            worker_sock["conn"].settimeout(10.0)  # fail, don't hang, if absent
            message = deserialize(recv_frame(worker_sock["conn"]))
            assert message == ("close_session", session_id)
        finally:
            executor.shutdown()
            listener.close()
            if "conn" in worker_sock:
                worker_sock["conn"].close()

    def test_session_submit_before_start_raises_typed(self):
        """LOAD submission on an unstarted session raises the executor
        contract's typed error — not a stripped-under-``python -O`` assert."""
        fleet = DistributedExecutor(max_workers=1)
        session = fleet.session()
        with pytest.raises(ExecutionError, match="before start"):
            session.submit("k", lambda: 1)

    def test_slow_beating_remote_worker_widens_silence_threshold(self):
        """A worker announcing a slower heartbeat interval than the
        coordinator assumed must not be declared dead between healthy
        beats: its handle gets a widened per-worker silence threshold."""
        ctx = multiprocessing.get_context()
        port_queue = ctx.Queue()
        process = ctx.Process(
            target=_listen_worker_main, args=(port_queue, None, 3.0), daemon=True
        )
        process.start()
        address = f"127.0.0.1:{port_queue.get(timeout=10)}"
        executor = DistributedExecutor(workers=[address])  # assumes 0.5s beats
        try:
            executor.start()
            with executor._lock:
                handle = next(iter(executor._workers.values()))
                assert handle.silence_timeout == pytest.approx(30.0)  # 10 * 3.0
        finally:
            executor.shutdown()
            _reap([process])


# ---------------------------------------------------------------------------
# Re-dial backoff for address-configured workers
# ---------------------------------------------------------------------------
def _await_worker_count(executor, count, timeout=5.0):
    deadline = time.monotonic() + timeout
    while len(executor.worker_pids()) != count and time.monotonic() < deadline:
        time.sleep(0.02)
    assert len(executor.worker_pids()) == count


class TestRedialBackoff:
    def test_redial_backoff_validated(self):
        with pytest.raises(ExecutionError, match="redial_backoff"):
            DistributedExecutor(max_workers=1, redial_backoff=0.0)
        assert DistributedExecutor(max_workers=1).redial_backoff == pytest.approx(0.25)

    def test_recently_failed_address_not_reprobed_within_backoff(self):
        """A dead address costs one failed dial, then is skipped until its
        backoff expires — an auto-pooled lifecycle calling start() every
        iteration must not pay a connect probe per iteration."""
        processes, addresses = _start_listening_workers(2)
        executor = DistributedExecutor(
            workers=addresses, connect_timeout=0.5, redial_backoff=30.0
        )
        victim_address = parse_worker_address(addresses[1])
        try:
            executor.start()
            processes[1].kill()
            _await_worker_count(executor, 1)
            with pytest.warns(RuntimeWarning, match="unreachable"):
                executor.start()  # one failed dial arms the backoff
            assert executor._remote_dial_failures[victim_address] == 1
            executor.start()  # within the backoff window: skipped, no re-probe
            assert executor._remote_dial_failures[victim_address] == 1
        finally:
            executor.shutdown()
            _reap(processes)

    def test_restarted_worker_is_reconnected_and_backoff_resets(self):
        """A worker that restarts on its old port between iterations is
        picked up by the next healing pass once the (short, configurable)
        backoff expires, and its failure counter resets — the old hardcoded
        5s floor made every rolling restart cost a long stall."""
        processes, addresses = _start_listening_workers(2)
        executor = DistributedExecutor(
            workers=addresses, connect_timeout=0.5, redial_backoff=0.05
        )
        victim_address = parse_worker_address(addresses[1])
        try:
            executor.start()
            processes[1].kill()
            processes[1].join(timeout=2.0)
            _await_worker_count(executor, 1)
            # two healing passes while the worker is down: failures accumulate
            # (exponential growth is over the *count*, reset on success below)
            with pytest.warns(RuntimeWarning, match="unreachable"):
                executor.start()
            time.sleep(0.1)  # past the 0.05s first-failure backoff
            with pytest.warns(RuntimeWarning, match="unreachable"):
                executor.start()
            assert executor._remote_dial_failures[victim_address] >= 2
            # restart the worker on ITS OLD PORT, as a rolling restart would
            ctx = multiprocessing.get_context()
            port_queue = ctx.Queue()
            replacement = ctx.Process(
                target=_listen_worker_main,
                args=(port_queue, None, 0.5, victim_address[1]),
                daemon=True,
            )
            replacement.start()
            processes.append(replacement)
            assert port_queue.get(timeout=10) == victim_address[1]
            time.sleep(0.3)  # let the armed backoff window expire
            executor.start()  # healing dial succeeds: pool back to strength
            assert victim_address not in executor._remote_dial_failures
            assert len(executor.worker_pids()) == 2
        finally:
            executor.shutdown()
            _reap(processes)


# ---------------------------------------------------------------------------
# Worker-side artifact cache tier: bounds, dedup, pinning
# ---------------------------------------------------------------------------
class TestArtifactCacheTier:
    def test_byte_budget_evicts_least_recently_used(self):
        cache = _ArtifactCache(max_entries=10, max_bytes=100)
        cache.put("a", "A", b"a" * 60)
        cache.put("b", "B", b"b" * 30)
        assert (len(cache), cache.total_bytes) == (2, 90)
        hit, value = cache.get("a")  # refresh a: b becomes the LRU entry
        assert hit and value == "A"
        cache.put("c", "C", b"c" * 30)  # 120 bytes > 100: evict b, keep the fresh a
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, "A")
        assert cache.total_bytes == 90

    def test_entry_cap_still_applies_to_small_artifacts(self):
        cache = _ArtifactCache(max_entries=3, max_bytes=1 << 30)
        for index in range(5):
            cache.put(f"s{index}", index, b"x")
        assert len(cache) == 3
        assert cache.get("s0") == (False, None)
        assert cache.get("s4") == (True, 4)

    def test_oversized_artifact_keeps_serving_its_task(self):
        cache = _ArtifactCache(max_entries=4, max_bytes=100)
        cache.put("huge", "H", b"h" * 1000)  # above the whole budget: floor of one
        assert cache.get("huge") == (True, "H")
        assert (len(cache), cache.total_bytes) == (1, 1000)
        cache.put("next", "N", b"n" * 10)  # the oversized entry goes on the next insert
        assert cache.get("huge") == (False, None)
        assert (len(cache), cache.total_bytes) == (1, 10)

    def test_reinserting_a_signature_is_a_dedup_hit_not_a_recharge(self):
        """The signature is the content address: a second ``put`` of the
        same signature keeps the first entry and charges nothing — the
        byte accounting must show exactly one copy (the dedup the
        artifact-plane contract promises for concurrent sessions)."""
        cache = _ArtifactCache(max_entries=4, max_bytes=100)
        blob = serialize({"shared": 1})
        cache.put("a", {"shared": 1}, blob, session="s1")
        cache.put("a", {"shared": 1}, blob, session="s2")
        assert (len(cache), cache.total_bytes) == (1, len(blob))
        assert cache.stats()["dedup_hits"] == 1
        assert cache.stats()["inserts"] == 1

    def test_two_sessions_share_one_cached_blob(self):
        """A hit from a session other than the inserting one counts as a
        cross-session hit — the wire-observable reuse signal ``repro
        serve`` aggregates — and serves the same object, not a copy."""
        cache = _ArtifactCache()
        value = {"payload": list(range(8))}
        cache.put("sig", value, serialize(value), session="run-a")
        hit_a, got_a = cache.get("sig", session="run-a")
        hit_b, got_b = cache.get("sig", session="run-b")
        assert hit_a and hit_b and got_a is value and got_b is value
        stats = cache.stats()
        assert stats["cache_hits"] == 2
        assert stats["cross_session_hits"] == 1
        assert stats["cache_entries"] == 1
        assert stats["cache_bytes"] == cache.total_bytes

    def test_eviction_skips_pinned_inflight_inputs(self):
        """Eviction pressure from one session must not pull an artifact out
        from under another session's running task: pinned entries are
        skipped even when they are the LRU victim, and unpinning makes
        them evictable again."""
        cache = _ArtifactCache(max_entries=10, max_bytes=100)
        cache.put("inflight", "I", b"i" * 60)
        cache.pin("inflight")
        cache.put("b", "B", b"b" * 30)
        cache.put("c", "C", b"c" * 30)  # over budget: LRU is the pinned entry
        assert cache.get("inflight") == (True, "I")  # survived eviction
        assert cache.get("b") == (False, None)  # next-oldest evicted instead
        cache.unpin("inflight")
        cache.get("c")  # refresh c so the unpinned entry is the LRU victim
        cache.put("d", "D", b"d" * 30)
        assert cache.get("inflight") == (False, None)


# ---------------------------------------------------------------------------
# Fetch timeout and reply framing, end to end
# ---------------------------------------------------------------------------
class TestFetchTimeoutAndReplyFraming:
    def test_fetch_timeout_validated(self):
        with pytest.raises(ExecutionError, match="fetch_timeout"):
            DistributedExecutor(max_workers=1, fetch_timeout=0.0)
        with pytest.raises(ExecutionError, match="fetch_timeout"):
            WorkerServer(fetch_timeout=-1.0)

    def test_unanswered_fetch_expires_typed_and_worker_survives(self, monkeypatch):
        """A coordinator that never answers a fetch fails *that task* after
        ``fetch_timeout`` with an error naming the node and the artifact;
        the worker survives and serves the same ref once answers resume."""
        from repro.core.operators import RunContext
        from repro.exceptions import OperatorError
        from repro.workloads.synthetic import LatencyOperator

        dropping = {"on": True}
        original = DistributedExecutor._answer_fetch

        def muted(self, worker, session_id, signature):
            if dropping["on"]:
                return  # swallow the fetch: the coordinator never answers
            return original(self, worker, session_id, signature)

        monkeypatch.setattr(DistributedExecutor, "_answer_fetch", muted)
        store = InMemoryStore()
        store.put("parent", "sig-parent", 21.0)
        executor = DistributedExecutor(
            max_workers=1, fetch_inputs=True, fetch_timeout=0.4
        )
        executor.bind_store(store)
        try:
            executor.start()
            executor.submit_payload(
                "child",
                serialize(
                    ("child", LatencyOperator(offset=1.0), [ArtifactRef("sig-parent")], RunContext())
                ),
            )
            key, _, error = executor.next_completion()
            assert key == "child"
            assert isinstance(error, OperatorError)
            assert "child" in str(error)
            assert "did not answer the fetch" in str(error)
            assert "0.4s" in str(error)
            # restore answers: the surviving worker resolves the same ref
            dropping["on"] = False
            executor.submit_payload(
                "child2",
                serialize(
                    ("child2", LatencyOperator(offset=1.0), [ArtifactRef("sig-parent")], RunContext())
                ),
            )
            key, outcome, error = executor.next_completion()
            assert (key, error) == ("child2", None)
            assert outcome[0] == pytest.approx(22.0)
            assert len(executor.worker_pids()) == 1
            executor.finish_run()
        finally:
            executor.shutdown()

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="the worker only inherits the monkeypatch under fork",
    )
    def test_engine_surfaces_unframeable_reply_and_worker_survives(self, monkeypatch):
        """Engine-level: a result reply the worker cannot frame surfaces
        from ``engine.execute`` as a typed error naming the node, and the
        same worker then completes a follow-up run."""
        import repro.execution.executors as executors_module
        from repro.exceptions import OperatorError
        from repro.workloads.synthetic import LatencyOperator

        original = executors_module._send_message

        def refusing(sock, message, lock=None, version=PROTOCOL_VERSION):
            if isinstance(message, tuple) and message[0] == "result" and message[2] == "big":
                raise ProtocolError("frame payload exceeds the frame limit")
            return original(sock, message, lock, version=version)

        monkeypatch.setattr(executors_module, "_send_message", refusing)
        executor = DistributedExecutor(max_workers=1)
        executor.start()  # fork happens with the refusing transport in place
        engine = _engine_for(executor)
        try:
            dag = WorkflowDAG([Node.create("big", LatencyOperator(offset=1.0), is_output=True)])
            with pytest.raises(OperatorError, match="could not be framed") as excinfo:
                engine.execute(dag, _all_compute_plan(dag), compute_node_signatures(dag))
            assert "big" in str(excinfo.value)
            assert len(executor.worker_pids()) == 1  # worker survived
            good = WorkflowDAG([Node.create("ok", LatencyOperator(offset=2.0), is_output=True)])
            stats = engine.execute(
                good, _all_compute_plan(good), compute_node_signatures(good)
            )
            assert "ok" in stats.node_times  # the run completed on the survivor
        finally:
            executor.shutdown()


# ---------------------------------------------------------------------------
# Session multiplexing (protocol v3): concurrent runs on one shared fleet
# ---------------------------------------------------------------------------
class TestSessionMultiplexing:
    def test_session_ids_and_closed_session_refuses_start(self):
        fleet = DistributedExecutor(max_workers=1)
        try:
            first = fleet.session()
            second = fleet.session()
            assert first.session_id == "s1"
            assert second.session_id == "s2"
            assert first.fleet is fleet
            first.start()
            first.shutdown()
            with pytest.raises(ExecutionError, match="closed"):
                first.start()
            first.shutdown()  # idempotent
            second.shutdown()
            assert len(fleet.worker_pids()) == 1  # sessions never reap workers
        finally:
            fleet.shutdown()

    def test_concurrent_session_runs_match_inline(self):
        """Two engines run full plans concurrently, each on its own session
        of one shared 2-worker fleet, and each matches its inline reference."""
        fleet = DistributedExecutor(max_workers=2)
        dags = {
            "random": make_random_dag(10, max_width=4, max_depth=4),
            "wide": make_wide_dag(branches=5, depth=2, node_seconds=0.03),
        }
        references = {
            label: _engine_for("inline").execute(
                dag, _all_compute_plan(dag), compute_node_signatures(dag)
            )
            for label, dag in dags.items()
        }
        results, errors = {}, {}

        def _run(label, dag):
            session = fleet.session()
            try:
                results[label] = _engine_for(session).execute(
                    dag, _all_compute_plan(dag), compute_node_signatures(dag)
                )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors[label] = exc
            finally:
                session.shutdown(cancel=True)

        threads = [
            threading.Thread(target=_run, args=item) for item in dags.items()
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors, errors
            for label in dags:
                assert_equivalent_runs(
                    references[label], results[label], include_times=False
                )
            assert len(fleet.worker_pids()) == 2  # one fleet served both runs
        finally:
            fleet.shutdown()

    def test_fetches_answered_from_each_sessions_own_store(self):
        """Two sessions ship *different* artifact signatures backed by
        different bound stores; each fetch must resolve from the store of
        the session that shipped the ref.  (Signatures are content
        addresses: distinct values always carry distinct recursive node
        signatures, which is exactly what lets the worker's artifact tier
        span sessions — the same-signature case is the *sharing* test
        below, not a store-routing one.)"""
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        fleet = DistributedExecutor(max_workers=1, fetch_inputs=True)
        try:
            sessions = []
            for value, signature in ((10.0, "sig-a"), (20.0, "sig-b")):
                session = fleet.session()
                store = InMemoryStore()
                store.put("parent", signature, value)
                session.bind_store(store)
                session.start()
                sessions.append((value, signature, session))
            for value, signature, session in sessions:  # A fully first, then B
                session.submit_payload(
                    "child",
                    serialize(
                        ("child", LatencyOperator(offset=1.0), [ArtifactRef(signature)], RunContext())
                    ),
                )
                key, outcome, error = session.next_completion()
                assert (key, error) == ("child", None)
                assert outcome[0] == pytest.approx(value + 1.0)
                session.finish_run()
            for _, _, session in sessions:
                session.shutdown()
        finally:
            fleet.shutdown()

    def test_sessions_share_one_cached_artifact_per_signature(self):
        """Two sessions resolving the *same* signature on one worker hit a
        single cached blob: the first resolve fetches (peer or
        coordinator), the second is a cross-session cache hit — no second
        fetch reaches the coordinator, and the fleet's plane stats expose
        the reuse (the counter ``repro serve`` reports)."""
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        fleet = DistributedExecutor(max_workers=1, fetch_inputs=True)
        shared_value = 21.0
        try:
            fetches = []
            original = DistributedExecutor._answer_fetch

            def counting(self, worker, session_id, signature):
                fetches.append(signature)
                original(self, worker, session_id, signature)

            DistributedExecutor._answer_fetch = counting
            try:
                for _ in range(2):
                    session = fleet.session()
                    store = InMemoryStore()
                    store.put("parent", "sig-shared", shared_value)
                    session.bind_store(store)
                    session.start()
                    session.submit_payload(
                        "child",
                        serialize(
                            ("child", LatencyOperator(offset=1.0), [ArtifactRef("sig-shared")], RunContext())
                        ),
                    )
                    key, outcome, error = session.next_completion()
                    assert (key, error) == ("child", None)
                    session.finish_run()
                    session.shutdown()
            finally:
                DistributedExecutor._answer_fetch = original
            assert fetches == ["sig-shared"]  # exactly one coordinator fetch
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:  # stats ride the heartbeat
                plane = fleet.artifact_plane_stats()
                if plane.get("cross_session_hits", 0) >= 1:
                    break
                time.sleep(0.05)
            assert plane.get("cross_session_hits", 0) >= 1, plane
            assert plane["fetches_served"] == 1
            assert plane["fetch_bytes_served"] == len(serialize(shared_value))
        finally:
            fleet.shutdown()

    def test_one_sessions_backlog_does_not_starve_another(self):
        """Round-robin dispatch across sessions: a single-task session
        completes while a backlogged session still has queued work, instead
        of waiting behind the whole backlog."""
        from repro.core.operators import RunContext
        from repro.workloads.synthetic import LatencyOperator

        fleet = DistributedExecutor(max_workers=1, pipeline_depth=1)
        order = []
        try:
            busy = fleet.session()
            light = fleet.session()
            busy.start()
            light.start()
            slow = LatencyOperator(offset=1.0, sleep_seconds=0.15)
            for index in range(4):
                busy.submit_payload(
                    f"a{index}", serialize((f"a{index}", slow, [], RunContext()))
                )
            light.submit_payload(
                "b0", serialize(("b0", LatencyOperator(offset=2.0), [], RunContext()))
            )

            def _collect(session, count):
                for _ in range(count):
                    key, _, error = session.next_completion()
                    assert error is None
                    order.append(key)

            busy_thread = threading.Thread(target=_collect, args=(busy, 4))
            light_thread = threading.Thread(target=_collect, args=(light, 1))
            busy_thread.start()
            light_thread.start()
            busy_thread.join(timeout=30)
            light_thread.join(timeout=30)
            busy.shutdown()
            light.shutdown()
            assert order.index("b0") < order.index("a3"), order
        finally:
            fleet.shutdown()
