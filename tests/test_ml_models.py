"""Unit tests for k-means, naive Bayes and the embedding models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.embeddings import CooccurrenceEmbedding, RandomProjectionEmbedding, build_cooccurrence
from repro.ml.kmeans import KMeans
from repro.ml.naive_bayes import MultinomialNaiveBayes


def _blobs(n_per_cluster=30, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])
    points = []
    labels = []
    for index, center in enumerate(centers):
        points.append(center + rng.normal(scale=0.5, size=(n_per_cluster, 2)))
        labels += [index] * n_per_cluster
    return np.vstack(points), np.array(labels)


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        X, labels = _blobs()
        model = KMeans(n_clusters=3, seed=0).fit(X)
        predicted = model.predict(X)
        # Each true cluster should map to exactly one predicted cluster.
        for cluster in range(3):
            assert len(np.unique(predicted[labels == cluster])) == 1
        assert len(np.unique(predicted)) == 3

    def test_inertia_decreases_with_more_clusters(self):
        X, _ = _blobs()
        inertia_1 = KMeans(n_clusters=1, seed=0).fit(X).inertia_
        inertia_3 = KMeans(n_clusters=3, seed=0).fit(X).inertia_
        assert inertia_3 < inertia_1

    def test_transform_distances_shape(self):
        X, _ = _blobs()
        model = KMeans(n_clusters=3, seed=0).fit(X)
        assert model.transform(X).shape == (len(X), 3)

    def test_more_clusters_than_points(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        model = KMeans(n_clusters=5, seed=0).fit(X)
        assert model.cluster_centers_.shape == (5, 2)
        assert model.predict(X).shape == (2,)

    def test_empty_fit_and_predict(self):
        model = KMeans(n_clusters=2).fit(np.zeros((0, 3)))
        assert model.inertia_ == 0.0
        assert model.predict(np.zeros((0, 3))).shape == (0,)

    def test_unfitted_predict_raises(self):
        with pytest.raises(ValueError):
            KMeans().predict(np.zeros((1, 2)))

    def test_invalid_cluster_count(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)

    def test_deterministic_given_seed(self):
        X, _ = _blobs()
        a = KMeans(n_clusters=3, seed=5).fit(X).inertia_
        b = KMeans(n_clusters=3, seed=5).fit(X).inertia_
        assert a == b

    def test_score_is_negative_inertia(self):
        X, _ = _blobs()
        model = KMeans(n_clusters=3, seed=0).fit(X)
        assert model.score(X) == pytest.approx(-model.inertia_)


class TestMultinomialNaiveBayes:
    def _count_data(self, seed=0):
        rng = np.random.default_rng(seed)
        # Class 0 uses mostly the first half of the vocabulary, class 1 the second half.
        X0 = rng.poisson(lam=[3, 3, 0.2, 0.2], size=(60, 4))
        X1 = rng.poisson(lam=[0.2, 0.2, 3, 3], size=(60, 4))
        X = np.vstack([X0, X1]).astype(float)
        y = np.array([0.0] * 60 + [1.0] * 60)
        return X, y

    def test_classifies_count_data(self):
        X, y = self._count_data()
        model = MultinomialNaiveBayes().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_predict_proba_normalized(self):
        X, y = self._count_data()
        proba = MultinomialNaiveBayes().fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_negative_features_clipped(self):
        X, y = self._count_data()
        X[0, 0] = -5.0
        model = MultinomialNaiveBayes().fit(X, y)
        assert np.isfinite(model.feature_log_prob_).all()

    def test_feature_weights_nonempty_after_fit(self):
        X, y = self._count_data()
        model = MultinomialNaiveBayes().fit(X, y)
        assert len(model.feature_weights()) == X.shape[1]
        assert MultinomialNaiveBayes().feature_weights() == {}

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes(alpha=0.0)

    def test_unfitted_predict_raises(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().predict(np.zeros((1, 2)))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit(np.zeros((3, 2)), np.zeros(4))


DOCS = [
    "gene001 regulates gene002 in carcinoma".split(),
    "gene001 binds gene002 pathway".split(),
    "gene003 expresses gene004 in tissue".split(),
    "gene003 gene004 signalling network".split(),
    "gene001 gene002 interact strongly".split(),
    "gene003 gene004 interact weakly".split(),
]


class TestCooccurrence:
    def test_build_cooccurrence_symmetric_counts(self):
        vocabulary, matrix = build_cooccurrence(DOCS, window=2)
        assert matrix.shape == (len(vocabulary), len(vocabulary))
        assert np.allclose(matrix, matrix.T)
        i = vocabulary["gene001"]
        j = vocabulary["gene002"]
        assert matrix[i, j] > 0

    def test_min_count_filters_rare_tokens(self):
        vocabulary, _ = build_cooccurrence(DOCS, min_count=3)
        assert "gene001" in vocabulary
        assert "carcinoma" not in vocabulary

    def test_embedding_groups_cooccurring_genes(self):
        model = CooccurrenceEmbedding(dimensions=4, window=3).fit(DOCS)
        similar = dict(model.most_similar("gene001", top_k=3))
        assert "gene002" in similar

    def test_vector_shapes_and_oov(self):
        model = CooccurrenceEmbedding(dimensions=6).fit(DOCS)
        assert model.vector("gene001").shape == (6,)
        assert np.allclose(model.vector("unknown_token"), 0.0)
        assert model.vectors(["gene001", "gene002"]).shape == (2, 6)

    def test_dimensions_padding_when_vocab_small(self):
        model = CooccurrenceEmbedding(dimensions=50).fit(DOCS[:2])
        assert model.embeddings_.shape[1] == 50

    def test_empty_corpus(self):
        model = CooccurrenceEmbedding(dimensions=4).fit([])
        assert model.embeddings_.shape == (0, 4)
        assert model.most_similar("anything") == []

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            CooccurrenceEmbedding(dimensions=0)

    def test_random_projection_is_seed_deterministic(self):
        a = RandomProjectionEmbedding(dimensions=4, seed=3).fit(DOCS)
        b = RandomProjectionEmbedding(dimensions=4, seed=3).fit(DOCS)
        c = RandomProjectionEmbedding(dimensions=4, seed=4).fit(DOCS)
        assert np.allclose(a.embeddings_, b.embeddings_)
        assert not np.allclose(a.embeddings_, c.embeddings_)

    def test_unfitted_vector_raises(self):
        with pytest.raises(ValueError):
            CooccurrenceEmbedding().vector("x")
