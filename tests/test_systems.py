"""Tests for the systems layer: Helix variants, KeystoneML and DeepDive comparators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optimizer.oep import NodeState
from repro.systems.deepdive import DeepDiveSystem
from repro.systems.helix import HelixSystem
from repro.systems.keystoneml import KeystoneMLSystem
from repro.workloads import IterationSpec, IterationType, get_workload
from repro.workloads.census import CensusConfig


WORKLOAD = get_workload("census")
SMALL = CensusConfig(n_train=200, n_test=80)


def _modified(config, kind, seed=0):
    return WORKLOAD.apply_iteration(config, IterationSpec(index=1, kind=kind), np.random.default_rng(seed))


class TestHelixSystem:
    def test_first_iteration_computes_everything(self):
        system = HelixSystem.opt(seed=0)
        stats = system.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        assert stats.nodes_in_state(NodeState.LOAD) == []
        assert stats.nodes_in_state(NodeState.PRUNE) == []
        assert stats.storage_bytes > 0  # something was materialized

    def test_identical_rerun_prunes_everything(self):
        system = HelixSystem.opt(seed=0)
        system.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        stats = system.run_iteration(WORKLOAD.build(SMALL), iteration=1)
        fractions = stats.state_fractions()
        assert fractions["Sp"] == 1.0
        assert stats.total_time < 0.05

    def test_ppr_iteration_reuses_predictions(self):
        system = HelixSystem.opt(seed=0)
        first = system.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        changed = _modified(SMALL, IterationType.PPR)
        second = system.run_iteration(WORKLOAD.build(changed), iteration=1)
        assert "checked" in second.nodes_in_state(NodeState.COMPUTE)
        assert "rows" not in second.nodes_in_state(NodeState.COMPUTE)
        assert second.total_time < first.total_time / 3

    def test_reused_results_match_recomputation(self):
        """Correctness (Theorem 1): reuse must not change the output values."""
        reuse_system = HelixSystem.opt(seed=0)
        reuse_system.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        changed = _modified(SMALL, IterationType.PPR)
        with_reuse = reuse_system.run_iteration(WORKLOAD.build(changed), iteration=1)

        fresh_system = HelixSystem.opt(seed=0)
        from_scratch = fresh_system.run_iteration(WORKLOAD.build(changed), iteration=0)
        assert with_reuse.outputs["checked"] == from_scratch.outputs["checked"]

    def test_dpr_change_recomputes_downstream(self):
        system = HelixSystem.opt(seed=0)
        system.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        changed = _modified(SMALL, IterationType.DPR, seed=3)
        stats = system.run_iteration(WORKLOAD.build(changed), iteration=1)
        assert "predictions" in stats.nodes_in_state(NodeState.COMPUTE)

    def test_li_change_does_not_recompute_parsing(self):
        system = HelixSystem.opt(seed=0)
        system.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        changed = _modified(SMALL, IterationType.LI)
        stats = system.run_iteration(WORKLOAD.build(changed), iteration=1)
        assert "rows" not in stats.nodes_in_state(NodeState.COMPUTE)
        assert "predictions" in stats.nodes_in_state(NodeState.COMPUTE)

    def test_reverting_a_change_can_reuse_old_artifacts(self):
        system = HelixSystem.opt(seed=0)
        system.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        changed = _modified(SMALL, IterationType.LI)
        system.run_iteration(WORKLOAD.build(changed), iteration=1)
        reverted = system.run_iteration(WORKLOAD.build(SMALL), iteration=2)
        assert reverted.state_fractions()["Sc"] <= 0.2

    def test_reset_clears_state(self):
        system = HelixSystem.opt(seed=0)
        system.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        system.reset()
        assert system.storage_bytes() == 0
        stats = system.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        assert stats.state_fractions()["Sc"] == 1.0

    def test_variant_names(self):
        assert HelixSystem.opt().name == "helix-opt"
        assert HelixSystem.always_materialize().name == "helix-am"
        assert HelixSystem.never_materialize().name == "helix-nm"

    def test_am_materializes_more_and_uses_more_storage_than_opt(self):
        opt = HelixSystem.opt(seed=0)
        am = HelixSystem.always_materialize(seed=0)
        opt_stats = opt.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        am_stats = am.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        assert len(am_stats.materialized_nodes) >= len(opt_stats.materialized_nodes)
        assert am.storage_bytes() >= opt.storage_bytes()

    def test_nm_materializes_only_outputs(self):
        nm = HelixSystem.never_materialize(seed=0)
        stats = nm.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        assert stats.materialized_nodes == ["checked"]

    def test_nm_cannot_reuse_intermediates(self):
        nm = HelixSystem.never_materialize(seed=0)
        nm.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        changed = _modified(SMALL, IterationType.PPR)
        stats = nm.run_iteration(WORKLOAD.build(changed), iteration=1)
        # Only the final output was on disk, and it changed, so almost
        # everything is recomputed.
        assert stats.state_fractions()["Sc"] > 0.5

    def test_iteration_type_recorded(self):
        system = HelixSystem.opt(seed=0)
        stats = system.run_iteration(WORKLOAD.build(SMALL), iteration=0, iteration_type="DPR")
        assert stats.iteration_type == "DPR"


class TestKeystoneML:
    def test_recomputes_everything_every_iteration(self):
        system = KeystoneMLSystem(seed=0)
        first = system.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        second = system.run_iteration(WORKLOAD.build(SMALL), iteration=1)
        assert first.state_fractions()["Sc"] == 1.0
        assert second.state_fractions()["Sc"] == 1.0
        assert system.storage_bytes() == 0

    def test_does_not_support_nlp(self):
        assert not KeystoneMLSystem().supports("nlp")
        assert KeystoneMLSystem().supports("census")

    def test_li_overhead_factor(self):
        plain = KeystoneMLSystem(seed=0)
        slowed = KeystoneMLSystem(seed=0, li_overhead_factor=5.0)
        plain_stats = plain.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        slowed_stats = slowed.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        assert slowed_stats.component_breakdown()["L/I"] > plain_stats.component_breakdown()["L/I"]


class TestDeepDive:
    def test_supports_only_census_and_nlp(self):
        system = DeepDiveSystem()
        assert system.supports("census") and system.supports("nlp")
        assert not system.supports("genomics") and not system.supports("mnist")

    def test_materializes_everything_each_iteration(self):
        system = DeepDiveSystem(seed=0)
        stats = system.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        assert stats.state_fractions()["Sc"] == 1.0
        assert len(stats.materialized_nodes) == len(stats.node_states)
        assert stats.materialization_time > 0

    def test_storage_accumulates_across_iterations(self):
        system = DeepDiveSystem(seed=0)
        system.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        first = system.storage_bytes()
        system.run_iteration(WORKLOAD.build(SMALL), iteration=1)
        assert system.storage_bytes() > first
        system.reset()
        assert system.storage_bytes() == 0

    def test_dpr_slowdown_increases_dpr_time(self):
        fast = DeepDiveSystem(seed=0, dpr_slowdown=1.0)
        slow = DeepDiveSystem(seed=0, dpr_slowdown=4.0)
        fast_stats = fast.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        slow_stats = slow.run_iteration(WORKLOAD.build(SMALL), iteration=0)
        assert slow_stats.component_breakdown()["DPR"] > fast_stats.component_breakdown()["DPR"]
