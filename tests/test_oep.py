"""Unit and property tests for OPT-EXEC-PLAN (the max-flow reuse optimizer)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dag import Node, WorkflowDAG
from repro.exceptions import OptimizationError
from repro.optimizer.oep import NodeState, brute_force_oep, plan_run_time, solve_oep

from conftest import ConstOperator, SumOperator, make_chain_dag, make_diamond_dag

INF = float("inf")


def _costs(dag, compute=1.0, load=INF):
    return (
        {name: compute for name in dag.node_names},
        {name: load for name in dag.node_names},
    )


class TestBasicPlans:
    def test_first_iteration_computes_everything(self, diamond_dag):
        compute, load = _costs(diamond_dag)
        plan = solve_oep(diamond_dag, compute, load, forced_compute=diamond_dag.node_names)
        assert all(state is NodeState.COMPUTE for state in plan.states.values())
        assert plan.estimated_time == pytest.approx(4.0)

    def test_nothing_changed_everything_pruned(self, diamond_dag):
        compute = {name: 1.0 for name in diamond_dag.node_names}
        load = {name: 0.1 for name in diamond_dag.node_names}
        plan = solve_oep(diamond_dag, compute, load, forced_compute=())
        assert all(state is NodeState.PRUNE for state in plan.states.values())
        assert plan.estimated_time == 0.0

    def test_changed_sink_loads_cheap_parents(self, diamond_dag):
        # d changed; b and c are materialized and cheap to load; a can be pruned.
        compute = {"a": 10.0, "b": 5.0, "c": 5.0, "d": 1.0}
        load = {"a": 2.0, "b": 0.5, "c": 0.5, "d": INF}
        plan = solve_oep(diamond_dag, compute, load, forced_compute=["d"])
        assert plan.states["d"] is NodeState.COMPUTE
        assert plan.states["b"] is NodeState.LOAD
        assert plan.states["c"] is NodeState.LOAD
        assert plan.states["a"] is NodeState.PRUNE
        assert plan.estimated_time == pytest.approx(0.5 + 0.5 + 1.0)

    def test_expensive_load_prefers_recompute(self, diamond_dag):
        # Loading b is more expensive than recomputing it from a (which must be
        # loaded anyway for c).
        compute = {"a": 1.0, "b": 0.1, "c": 0.1, "d": 1.0}
        load = {"a": 0.2, "b": 50.0, "c": 50.0, "d": INF}
        plan = solve_oep(diamond_dag, compute, load, forced_compute=["d"])
        assert plan.states["a"] is NodeState.LOAD
        assert plan.states["b"] is NodeState.COMPUTE
        assert plan.states["c"] is NodeState.COMPUTE

    def test_unmaterialized_parent_of_changed_node_is_computed(self):
        chain = make_chain_dag(3)
        compute = {"n0": 1.0, "n1": 1.0, "n2": 1.0}
        load = {"n0": INF, "n1": INF, "n2": INF}
        plan = solve_oep(chain, compute, load, forced_compute=["n2"])
        assert plan.states == {
            "n0": NodeState.COMPUTE,
            "n1": NodeState.COMPUTE,
            "n2": NodeState.COMPUTE,
        }

    def test_loading_midpoint_prunes_ancestors(self):
        chain = make_chain_dag(4)
        compute = {name: 10.0 for name in chain.node_names}
        load = {"n0": INF, "n1": INF, "n2": 0.5, "n3": INF}
        plan = solve_oep(chain, compute, load, forced_compute=["n3"])
        assert plan.states["n3"] is NodeState.COMPUTE
        assert plan.states["n2"] is NodeState.LOAD
        assert plan.states["n1"] is NodeState.PRUNE
        assert plan.states["n0"] is NodeState.PRUNE

    def test_paper_figure4_structure(self):
        """The example of Figure 4: loading n7/n8 allows pruning n1-n6 except where needed."""
        nodes = [
            Node.create("n1", ConstOperator(1, tag="1")),
            Node.create("n2", ConstOperator(1, tag="2")),
            Node.create("n3", ConstOperator(1, tag="3")),
            Node.create("n4", SumOperator(), parents=["n1"]),
            Node.create("n5", SumOperator(), parents=["n2", "n3"]),
            Node.create("n6", SumOperator(offset=1), parents=["n4", "n5"]),
            Node.create("n7", SumOperator(offset=2), parents=["n6"], is_output=True),
            Node.create("n8", SumOperator(offset=3), parents=["n5"], is_output=True),
        ]
        dag = WorkflowDAG(nodes)
        compute = {f"n{i}": 4.0 for i in range(1, 9)}
        compute["n8"] = 0.5
        load = {f"n{i}": INF for i in range(1, 9)}
        load.update({"n4": 1.0, "n5": 1.0, "n7": 1.0, "n8": 10.0})
        plan = solve_oep(dag, compute, load, forced_compute=["n6", "n7", "n8"])
        # n6, n7 and n8 must be computed; n4 and n5 are loaded; n1-n3 pruned
        # (n8's need for n5 is already covered by the loaded n5).
        assert plan.states["n6"] is NodeState.COMPUTE
        assert plan.states["n7"] is NodeState.COMPUTE
        assert plan.states["n4"] is NodeState.LOAD
        assert plan.states["n5"] is NodeState.LOAD
        for pruned in ("n1", "n2", "n3"):
            assert plan.states[pruned] is NodeState.PRUNE
        assert plan.states["n8"] is NodeState.COMPUTE


class TestValidation:
    def test_missing_costs_rejected(self, diamond_dag):
        with pytest.raises(OptimizationError):
            solve_oep(diamond_dag, {}, {})

    def test_negative_costs_rejected(self, diamond_dag):
        compute, load = _costs(diamond_dag)
        compute["a"] = -1.0
        with pytest.raises(OptimizationError):
            solve_oep(diamond_dag, compute, load)

    def test_unknown_forced_node_rejected(self, diamond_dag):
        compute, load = _costs(diamond_dag)
        with pytest.raises(OptimizationError):
            solve_oep(diamond_dag, compute, load, forced_compute=["ghost"])

    def test_brute_force_size_limit(self):
        dag = make_chain_dag(13)
        compute, load = _costs(dag)
        with pytest.raises(OptimizationError):
            brute_force_oep(dag, compute, load)


class TestPlanProperties:
    def test_state_fractions_sum_to_one(self, diamond_dag):
        compute, load = _costs(diamond_dag)
        plan = solve_oep(diamond_dag, compute, load, forced_compute=diamond_dag.node_names)
        assert sum(plan.state_fractions().values()) == pytest.approx(1.0)

    def test_nodes_in_state(self, diamond_dag):
        compute, load = _costs(diamond_dag)
        plan = solve_oep(diamond_dag, compute, load, forced_compute=["d"])
        assert "d" in plan.nodes_in(NodeState.COMPUTE)

    def test_plan_run_time_matches_states(self):
        states = {"a": NodeState.COMPUTE, "b": NodeState.LOAD, "c": NodeState.PRUNE}
        total = plan_run_time(states, {"a": 2.0, "b": 9.0, "c": 5.0}, {"a": 1.0, "b": 3.0, "c": 1.0})
        assert total == pytest.approx(2.0 + 3.0)


@st.composite
def random_oep_instances(draw):
    """Random DAGs (<= 6 nodes) with random costs, materializations and changes."""
    n = draw(st.integers(2, 6))
    parents = []
    for i in range(n):
        choices = list(range(i))
        selected = [j for j in choices if draw(st.booleans())]
        parents.append(selected)
    compute = [draw(st.floats(0.1, 10.0)) for _ in range(n)]
    materialized = [draw(st.booleans()) for _ in range(n)]
    load = [draw(st.floats(0.1, 10.0)) if materialized[i] else INF for i in range(n)]
    forced = [i for i in range(n) if draw(st.integers(0, 3)) == 0]
    return parents, compute, load, forced


def _build_dag(parents):
    nodes = []
    for i, deps in enumerate(parents):
        operator = SumOperator(offset=float(i)) if deps else ConstOperator(i, tag=str(i))
        nodes.append(Node.create(f"n{i}", operator, parents=[f"n{j}" for j in deps]))
    return WorkflowDAG(nodes)


class TestOptimality:
    @given(random_oep_instances())
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, instance):
        parents, compute_list, load_list, forced_list = instance
        dag = _build_dag(parents)
        compute = {f"n{i}": compute_list[i] for i in range(len(parents))}
        load = {f"n{i}": load_list[i] for i in range(len(parents))}
        forced = [f"n{i}" for i in forced_list]
        exact = brute_force_oep(dag, compute, load, forced_compute=forced)
        solved = solve_oep(dag, compute, load, forced_compute=forced)
        assert solved.estimated_time == pytest.approx(exact.estimated_time, rel=1e-6, abs=1e-9)

    @given(random_oep_instances())
    @settings(max_examples=80, deadline=None)
    def test_plans_are_always_feasible(self, instance):
        parents, compute_list, load_list, forced_list = instance
        dag = _build_dag(parents)
        compute = {f"n{i}": compute_list[i] for i in range(len(parents))}
        load = {f"n{i}": load_list[i] for i in range(len(parents))}
        forced = [f"n{i}" for i in forced_list]
        plan = solve_oep(dag, compute, load, forced_compute=forced)
        for name in forced:
            assert plan.states[name] is NodeState.COMPUTE
        for name, state in plan.states.items():
            if state is NodeState.LOAD:
                assert load[name] != INF
            if state is NodeState.COMPUTE:
                for parent in dag.parents(name):
                    assert plan.states[parent] is not NodeState.PRUNE
