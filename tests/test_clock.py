"""Unit tests for cost models and the cluster-scaling model."""

from __future__ import annotations

import pytest

from repro.core.operators import Component
from repro.execution.clock import ClusterModel, MeasuredCostModel, SimulatedCostModel

from conftest import ConstOperator


class TestClusterModel:
    def test_single_worker_is_identity(self):
        cluster = ClusterModel(num_workers=1)
        assert cluster.scale(Component.DPR, 10.0) == 10.0

    def test_parallel_component_speeds_up(self):
        cluster = ClusterModel(num_workers=4, parallel_efficiency={"DPR": 1.0, "L/I": 1.0, "PPR": 0.0})
        assert cluster.scale(Component.DPR, 8.0) == pytest.approx(2.0)

    def test_efficiency_below_one_reduces_speedup(self):
        ideal = ClusterModel(num_workers=4, parallel_efficiency={"DPR": 1.0, "L/I": 1.0, "PPR": 0.0})
        lossy = ClusterModel(num_workers=4, parallel_efficiency={"DPR": 0.5, "L/I": 1.0, "PPR": 0.0})
        assert lossy.scale(Component.DPR, 8.0) > ideal.scale(Component.DPR, 8.0)

    def test_non_parallel_component_pays_overhead(self):
        cluster = ClusterModel(num_workers=8, communication_overhead=0.01)
        assert cluster.scale(Component.PPR, 1.0) == pytest.approx(1.0 + 0.08)

    def test_superlinear_efficiency_possible(self):
        cluster = ClusterModel(num_workers=2, parallel_efficiency={"DPR": 1.5, "L/I": 1.0, "PPR": 0.0})
        assert cluster.scale(Component.DPR, 10.0) < 5.0


class TestMeasuredCostModel:
    def test_charges_measured_seconds(self):
        model = MeasuredCostModel()
        charged = model.compute_cost(ConstOperator(cost=99.0), Component.DPR, [10], measured_seconds=0.2)
        assert charged == 0.2

    def test_io_cost_is_measured(self):
        assert MeasuredCostModel().io_cost(10_000, measured_seconds=0.05) == 0.05

    def test_estimate_io_cost_uses_bandwidth(self):
        model = MeasuredCostModel(disk_bandwidth=1e6, io_latency=0.0)
        assert model.estimate_io_cost(2_000_000) == pytest.approx(2.0)

    def test_cluster_scaling_applied(self):
        cluster = ClusterModel(num_workers=4, parallel_efficiency={"DPR": 1.0, "L/I": 1.0, "PPR": 0.0})
        model = MeasuredCostModel(cluster=cluster)
        assert model.compute_cost(ConstOperator(), Component.DPR, [], 4.0) == pytest.approx(1.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            MeasuredCostModel(disk_bandwidth=0)


class TestSimulatedCostModel:
    def test_charges_declared_cost(self):
        model = SimulatedCostModel()
        charged = model.compute_cost(ConstOperator(cost=2.5), Component.DPR, [1], measured_seconds=0.0001)
        assert charged == 2.5

    def test_io_cost_deterministic(self):
        model = SimulatedCostModel(disk_bandwidth=1e6, io_latency=0.001)
        assert model.io_cost(1_000_000, measured_seconds=123.0) == pytest.approx(1.001)
        assert model.estimate_io_cost(1_000_000) == pytest.approx(1.001)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            SimulatedCostModel(disk_bandwidth=-1)
