"""Unit tests for the built-in operator library."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.data import DataCollection, ElementKind, FeatureVector, Record, SemanticUnit, Split
from repro.core.operators import (
    Bucketizer,
    Component,
    CSVScanner,
    DataSource,
    ExampleSynthesizer,
    FieldExtractor,
    FunctionExtractor,
    InteractionFeature,
    JoinSynthesizer,
    Learner,
    PredictionsResult,
    Reducer,
    RunContext,
    Scanner,
)
from repro.exceptions import OperatorError, WorkflowSpecError
from repro.ml.linear import LogisticRegression

CTX = RunContext(seed=0)


def _record_dc(rows, split=Split.TRAIN):
    return DataCollection("rows", [Record(fields=r, split=split) for r in rows], kind=ElementKind.RECORD)


class TestDataSource:
    def test_requires_path_or_generator(self):
        with pytest.raises(WorkflowSpecError):
            DataSource()

    def test_generator_tags_splits(self):
        def gen(context, n=2):
            return [{"a": i} for i in range(n)], [{"a": 10}]

        dc = DataSource(generator=gen, params={"n": 3}).run([], CTX)
        assert len(dc) == 4
        assert sum(1 for r in dc if r.split is Split.TRAIN) == 3
        assert sum(1 for r in dc if r.split is Split.TEST) == 1

    def test_reads_csv_files(self, tmp_path):
        train = tmp_path / "train.csv"
        train.write_text("a,b\n1,2\n3,4\n")
        dc = DataSource(train_path=str(train)).run([], CTX)
        assert len(dc) == 2
        assert dc[0]["a"] == "1"

    def test_config_signature_changes_with_params(self):
        def gen(context):
            return [], []

        s1 = DataSource(generator=gen, params={"n": 1})
        s2 = DataSource(generator=gen, params={"n": 2})
        assert s1.config_signature() != s2.config_signature()

    def test_explicit_cost_used(self):
        def gen(context):
            return [], []

        assert DataSource(generator=gen, cost=3.5).estimated_cost([]) == 3.5


class TestScanner:
    def test_flat_map_and_filter(self):
        dc = _record_dc([{"v": 1}, {"v": 2}, {"v": 3}])
        scanner = Scanner(lambda r: [r] if r["v"] % 2 else [])
        out = scanner.run([dc], CTX)
        assert [r["v"] for r in out] == [1, 3]

    def test_rejects_non_collection(self):
        with pytest.raises(OperatorError):
            Scanner(lambda r: [r]).run(["not a dc"], CTX)

    def test_csv_scanner_parses_lines(self):
        dc = _record_dc([{"line": "39, Bachelors ,1"}])
        out = CSVScanner(["age", "education", "target"]).run([dc], CTX)
        assert out[0]["age"] == "39"
        assert out[0]["education"] == "Bachelors"
        assert out[0].split is Split.TRAIN

    def test_csv_scanner_passthrough_fields(self):
        dc = _record_dc([{"age": 10, "education": "HS"}])
        out = CSVScanner(["age", "education"]).run([dc], CTX)
        assert out[0]["age"] == 10


class TestExtractors:
    def test_field_extractor_numeric(self):
        dc = _record_dc([{"age": "30"}, {"age": "40"}])
        out = FieldExtractor("age").run([dc], CTX)
        assert out.kind is ElementKind.SEMANTIC_UNIT
        assert out[0].output.get("age") == 30.0

    def test_field_extractor_categorical(self):
        dc = _record_dc([{"color": "red"}])
        out = FieldExtractor("color").run([dc], CTX)
        assert out[0].output.get("color=red") == 1.0

    def test_field_extractor_forced_categorical(self):
        dc = _record_dc([{"age": "30"}])
        out = FieldExtractor("age", as_categorical=True).run([dc], CTX)
        assert out[0].output.get("age=30") == 1.0

    def test_bucketizer_learns_boundaries(self):
        dc = _record_dc([{"age": i} for i in range(100)])
        su = FieldExtractor("age").run([dc], CTX)
        out = Bucketizer("age", bins=4).run([su], CTX)
        buckets = {list(unit.output.items())[0][0] for unit in out}
        assert len(buckets) == 4  # four distinct bucket indicators

    def test_bucketizer_requires_positive_bins(self):
        with pytest.raises(WorkflowSpecError):
            Bucketizer("age", bins=0)

    def test_bucketizer_empty_input(self):
        out = Bucketizer("age", bins=4).run([DataCollection("x", [])], CTX)
        assert len(out) == 0

    def test_interaction_feature_categorical(self):
        dc = _record_dc([{"a": "x", "b": "y"}])
        ext_a = FieldExtractor("a").run([dc], CTX)
        ext_b = FieldExtractor("b").run([dc], CTX)
        out = InteractionFeature(["a", "b"]).run([ext_a, ext_b], CTX)
        (name, value), = list(out[0].output.items())
        assert value == 1.0
        assert "a=x" in name and "b=y" in name

    def test_interaction_feature_numeric_product(self):
        dc = _record_dc([{"a": 2, "b": 3}])
        ext_a = FieldExtractor("a").run([dc], CTX)
        ext_b = FieldExtractor("b").run([dc], CTX)
        out = InteractionFeature(["a", "b"]).run([ext_a, ext_b], CTX)
        assert out[0].output.get("axb") == 6.0

    def test_interaction_requires_two_inputs(self):
        with pytest.raises(WorkflowSpecError):
            InteractionFeature(["a"])

    def test_function_extractor_wraps_scalars(self):
        dc = _record_dc([{"v": 5}])
        out = FunctionExtractor("double", lambda r: float(r["v"]) * 2).run([dc], CTX)
        assert out[0].output.get("double") == 10.0


class TestSynthesizers:
    def _pipeline(self):
        rows = _record_dc([{"a": "x", "label": i % 2} for i in range(6)])
        ext = FieldExtractor("a").run([rows], CTX)
        label = FieldExtractor("label", as_categorical=False).run([rows], CTX)
        return rows, ext, label

    def test_example_synthesizer_assembles_features_and_labels(self):
        rows, ext, label = self._pipeline()
        out = ExampleSynthesizer(label_source="label").run([rows, ext, label], CTX)
        assert out.kind is ElementKind.EXAMPLE
        assert len(out) == 6
        assert out[0].label == 0.0 and out[1].label == 1.0
        assert out[0].features.get("a=x") == 1.0
        assert out[0].provenance["a=x"] == "a"

    def test_example_synthesizer_without_label(self):
        rows, ext, _ = self._pipeline()
        out = ExampleSynthesizer().run([rows, ext], CTX)
        assert out[0].label is None

    def test_example_synthesizer_requires_base(self):
        with pytest.raises(OperatorError):
            ExampleSynthesizer().run([], CTX)

    def test_join_synthesizer_inner(self):
        left = _record_dc([{"k": 1, "x": "a"}, {"k": 2, "x": "b"}])
        right = _record_dc([{"k": 1, "y": "c"}])
        out = JoinSynthesizer("k", "k").run([left, right], CTX)
        assert len(out) == 1
        assert out[0]["x"] == "a" and out[0]["y"] == "c"

    def test_join_synthesizer_left(self):
        left = _record_dc([{"k": 1}, {"k": 2}])
        right = _record_dc([{"k": 1}])
        out = JoinSynthesizer("k", "k", how="left").run([left, right], CTX)
        assert len(out) == 2

    def test_join_synthesizer_rejects_bad_how(self):
        with pytest.raises(WorkflowSpecError):
            JoinSynthesizer("k", "k", how="outer")


class TestLearnerAndReducer:
    def _examples(self, n=40):
        examples = []
        rng = np.random.default_rng(0)
        for i in range(n):
            x = float(rng.normal())
            label = 1.0 if x > 0 else 0.0
            examples.append(
                __import__("repro.core.data", fromlist=["Example"]).Example(
                    features=FeatureVector.scalar("x", x),
                    label=label,
                    split=Split.TRAIN if i < n * 3 // 4 else Split.TEST,
                )
            )
        return DataCollection("ex", examples, kind=ElementKind.EXAMPLE)

    def test_learner_fits_and_annotates(self):
        examples = self._examples()
        result = Learner(LogisticRegression, params={"max_iter": 200}).run([examples], CTX)
        assert isinstance(result, PredictionsResult)
        assert len(result.predictions) == len(examples)
        assert all(e.prediction is not None for e in result.predictions)
        labels = [e.label for e in result.predictions]
        predictions = [e.prediction for e in result.predictions]
        agreement = np.mean([l == p for l, p in zip(labels, predictions)])
        assert agreement > 0.8

    def test_learner_component_is_li(self):
        assert Learner(LogisticRegression).component is Component.LI

    def test_reducer_runs_on_test_only(self):
        examples = self._examples()
        learned = Learner(LogisticRegression).run([examples], CTX)

        def count(collection):
            return len(collection)

        n_test = Reducer(count, on_test_only=True).run([learned], CTX)
        n_all = Reducer(count, on_test_only=False).run([learned], CTX)
        assert n_test < n_all

    def test_reducer_accepts_scalar_second_input(self):
        def fn(collection, scalar=None):
            return (len(collection), scalar)

        dc = DataCollection("d", [1, 2, 3])
        assert Reducer(fn, on_test_only=False).run([dc, 42], CTX) == (3, 42)

    def test_reducer_requires_input(self):
        with pytest.raises(OperatorError):
            Reducer(lambda c: 0).run([], CTX)


class TestSignatures:
    def test_same_config_same_signature(self):
        assert FieldExtractor("age").config_signature() == FieldExtractor("age").config_signature()

    def test_different_config_different_signature(self):
        assert FieldExtractor("age").config_signature() != FieldExtractor("sex").config_signature()

    def test_udf_code_participates_in_signature(self):
        a = FunctionExtractor("f", lambda r: 1.0)
        b = FunctionExtractor("f", lambda r: 2.0)
        assert a.config_signature() != b.config_signature()

    def test_udf_version_attribute_changes_signature(self):
        def fn(r):
            return 1.0

        before = FunctionExtractor("f", fn).config_signature()
        fn._version = 2
        after = FunctionExtractor("f", fn).config_signature()
        assert before != after

    def test_nondeterministic_operator_never_equivalent(self):
        class NoisyOperator(FieldExtractor):
            deterministic = False

        assert NoisyOperator("age").config_signature() != NoisyOperator("age").config_signature()

    def test_nondeterministic_signature_stable_per_instance(self):
        class NoisyOperator(FieldExtractor):
            deterministic = False

        op = NoisyOperator("age")
        assert op.config_signature() == op.config_signature()
