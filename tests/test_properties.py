"""Cross-cutting property-based tests on core invariants (hypothesis)."""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dag import Node, WorkflowDAG
from repro.core.signatures import compute_node_signatures, diff_signatures
from repro.optimizer.oep import NodeState, plan_run_time, solve_oep
from repro.optimizer.omp import cumulative_run_time
from repro.optimizer.pruning import eviction_schedule, out_of_scope_after
from repro.storage.canonical import (
    CANONICAL_MAGIC,
    decode,
    encode,
    encode_segments,
)
from repro.storage.serialization import deserialize, serialize

from conftest import ConstOperator, SumOperator


@st.composite
def random_dags(draw):
    """Random DAGs with 2-8 nodes, returning (parents list, per-node tags)."""
    n = draw(st.integers(2, 8))
    parents = []
    for i in range(n):
        parents.append([j for j in range(i) if draw(st.booleans())])
    tags = [draw(st.integers(0, 3)) for _ in range(n)]
    return parents, tags


def _build(parents, tags):
    nodes = []
    for i, deps in enumerate(parents):
        operator = SumOperator(offset=float(tags[i])) if deps else ConstOperator(tags[i], tag=str(tags[i]))
        nodes.append(
            Node.create(f"n{i}", operator, parents=[f"n{j}" for j in deps], is_output=(i == len(parents) - 1))
        )
    return WorkflowDAG(nodes)


class TestDAGProperties:
    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_topological_order_respects_all_edges(self, spec):
        dag = _build(*spec)
        order = {name: i for i, name in enumerate(dag.topological_order())}
        for parent, child in dag.edges:
            assert order[parent] < order[child]

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_ancestors_descendants_are_inverse(self, spec):
        dag = _build(*spec)
        for name in dag.node_names:
            for ancestor in dag.ancestors(name):
                assert name in dag.descendants(ancestor)

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_slicing_keeps_output_cone_closed(self, spec):
        dag = _build(*spec)
        sliced = dag.sliced_to_outputs()
        for name in sliced.node_names:
            for parent in sliced.parents(name):
                assert parent in sliced

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_eviction_schedule_is_a_partition(self, spec):
        dag = _build(*spec)
        order = list(dag.topological_order())
        schedule = eviction_schedule(dag, order)
        evicted = sorted(name for names in schedule.values() for name in names)
        assert evicted == sorted(order)
        # No node is evicted before its own execution.
        positions = {name: i for i, name in enumerate(order)}
        for name, after in out_of_scope_after(dag, order).items():
            assert after >= positions[name]


class TestSignatureProperties:
    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_signatures_are_deterministic_and_unique_per_structure(self, spec):
        dag1 = _build(*spec)
        dag2 = _build(*spec)
        assert compute_node_signatures(dag1) == compute_node_signatures(dag2)

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_self_diff_has_no_original_nodes(self, spec):
        dag = _build(*spec)
        signatures = compute_node_signatures(dag)
        diff = diff_signatures(signatures, signatures)
        assert diff.original == frozenset()
        assert diff.reusable == frozenset(signatures)


class TestPlanProperties:
    @given(
        random_dags(),
        st.lists(st.floats(0.1, 5.0), min_size=8, max_size=8),
        st.lists(st.floats(0.05, 5.0), min_size=8, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_optimal_plan_never_beats_or_loses_to_infeasible_bounds(self, spec, computes, loads):
        parents, tags = spec
        dag = _build(parents, tags)
        compute = {f"n{i}": computes[i] for i in range(len(parents))}
        load = {f"n{i}": loads[i] for i in range(len(parents))}
        forced = [dag.node_names[-1]]
        plan = solve_oep(dag, compute, load, forced_compute=forced)
        # Lower bound: the forced node's own compute time.  Upper bound: computing everything.
        assert plan.estimated_time >= compute[forced[0]] - 1e-9
        assert plan.estimated_time <= sum(compute.values()) + 1e-9
        assert plan.estimated_time == pytest.approx(plan_run_time(plan.states, compute, load))

    @given(random_dags(), st.floats(0.1, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_cumulative_runtime_monotone_in_ancestry(self, spec, unit_cost):
        dag = _build(*spec)
        times = {name: unit_cost for name in dag.node_names}
        for name in dag.node_names:
            own = cumulative_run_time(name, dag, times)
            for child in dag.children(name):
                assert cumulative_run_time(child, dag, times) >= own - 1e-9


#: Scalars the canonical encoder gives a dedicated type tag; hashable, so
#: they double as set elements (dict keys stay text, as in real payloads).
_canonical_scalars = st.one_of(
    st.integers(-(2**70), 2**70),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
    st.booleans(),
    st.none(),
)

#: Recursive canonical values: every container family the wire carries.
_canonical_values = st.recursive(
    _canonical_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.lists(children, max_size=5).map(tuple),
        st.dictionaries(st.text(max_size=5), children, max_size=5),
        st.sets(_canonical_scalars, max_size=5),
        st.frozensets(_canonical_scalars, max_size=5),
    ),
    max_leaves=20,
)


class TestSerializationProperties:
    @given(
        st.recursive(
            st.one_of(st.integers(-1000, 1000), st.floats(allow_nan=False, allow_infinity=False),
                      st.text(max_size=20), st.booleans(), st.none()),
            lambda children: st.one_of(
                st.lists(children, max_size=5),
                st.dictionaries(st.text(max_size=5), children, max_size=5),
            ),
            max_leaves=20,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_serialize_round_trip(self, value):
        assert deserialize(serialize(value)) == value


#: Values encoded in a fresh interpreter to pin cross-process bit equality.
#: Deliberately hash-order sensitive (string-keyed dicts, sets) and layout
#: sensitive (C- and F-ordered arrays): the classic sources of drift.
_CROSS_PROCESS_CORPUS = [
    {"gamma": 1, "alpha": [2.5, None], "beta": {"nested": (True, b"x")}},
    {f"key{i}": i for i in range(40)},
    {"swapped", "order", "of", "a", "set"},
    frozenset(range(-5, 20)),
    [(-(2**70), 2**70), "unicode: é中ﬁ", b"\x00\xff" * 30],
    np.arange(24, dtype=np.float64).reshape(4, 6),
    np.asfortranarray(np.arange(24, dtype=np.int32).reshape(4, 6)),
    np.array(3.5, dtype=np.float32),
    np.float64(2.25),
]

#: Child-process encoder: reads a pickled value list on stdin, writes the
#: canonical encoding of each back on stdout.
_CHILD_ENCODER = (
    "import pickle, sys\n"
    "from repro.storage.canonical import encode\n"
    "corpus = pickle.loads(sys.stdin.buffer.read())\n"
    "sys.stdout.buffer.write(pickle.dumps([encode(v) for v in corpus]))\n"
)


class TestCanonicalDeterminism:
    """The bit-equality contract of :mod:`repro.storage.canonical`."""

    @given(_canonical_values)
    @settings(max_examples=80, deadline=None)
    def test_encode_is_deterministic_and_segments_join_to_encode(self, value):
        packed = encode(value)
        assert packed == encode(value)
        assert packed[:2] == CANONICAL_MAGIC
        assert b"".join(bytes(s) for s in encode_segments(value)) == packed

    @given(_canonical_values)
    @settings(max_examples=80, deadline=None)
    def test_decode_inverts_encode_and_reencode_is_a_fixpoint(self, value):
        packed = encode(value)
        decoded = decode(packed)
        assert decoded == value
        assert encode(decoded) == packed

    @given(st.dictionaries(st.text(max_size=8), _canonical_scalars, min_size=2, max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_dict_insertion_order_never_reaches_the_wire(self, mapping):
        reversed_insertion = dict(reversed(list(mapping.items())))
        assert reversed_insertion == mapping
        assert encode(reversed_insertion) == encode(mapping)
        shuffled = dict(sorted(mapping.items(), key=lambda kv: encode(kv[1])))
        assert encode(shuffled) == encode(mapping)

    def test_encoding_is_bit_identical_across_a_process_boundary(self):
        """A fresh interpreter — with a *different* string hash seed, so any
        hash-order dependence in dict/set encoding would show — produces the
        exact bytes this process produces."""
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[1] / "src"
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "8675309"
        child = subprocess.run(
            [sys.executable, "-c", _CHILD_ENCODER],
            input=pickle.dumps(_CROSS_PROCESS_CORPUS),
            stdout=subprocess.PIPE,
            env=env,
            check=True,
        )
        remote = pickle.loads(child.stdout)
        local = [encode(value) for value in _CROSS_PROCESS_CORPUS]
        assert len(remote) == len(local)
        for index, (theirs, ours) in enumerate(zip(remote, local)):
            assert theirs == ours, (
                f"corpus[{index}] encodes differently across processes"
            )

    def test_numpy_round_trip_preserves_dtype_layout_and_bits(self):
        for array in (
            np.arange(24, dtype=np.float64).reshape(4, 6),
            np.asfortranarray(np.arange(24, dtype=np.int16).reshape(6, 4)),
            np.array([], dtype=np.complex128),
            np.array(7, dtype=np.uint8),
        ):
            packed = encode(array)
            decoded = decode(packed)
            assert decoded.dtype == array.dtype
            assert decoded.shape == array.shape
            assert np.array_equal(decoded, array)
            assert decoded.flags["F_CONTIGUOUS"] == array.flags["F_CONTIGUOUS"]
            assert encode(decoded) == packed

    def test_large_arrays_travel_as_zero_copy_buffers(self):
        """The acceptance bar for the zero-copy path: a big array's bytes
        appear in ``encode_segments`` as an out-of-band memoryview sharing
        the array's memory, and ``decode(copy_buffers=False)`` hands back a
        read-only view into the payload instead of a copy."""
        array = np.arange(4096, dtype=np.float64)
        segments = encode_segments(array)
        shared = [
            segment
            for segment in segments
            if isinstance(segment, memoryview)
            and np.shares_memory(np.frombuffer(segment, dtype=np.uint8), array)
        ]
        assert shared, "no out-of-band segment shares the array's memory"

        payload = encode(array)
        view = decode(payload, copy_buffers=False)
        assert np.array_equal(view, array)
        assert not view.flags.writeable
        assert np.shares_memory(view, np.frombuffer(payload, dtype=np.uint8))

        copied = decode(payload)
        assert copied.flags.writeable
        assert not np.shares_memory(copied, np.frombuffer(payload, dtype=np.uint8))
