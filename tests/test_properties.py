"""Cross-cutting property-based tests on core invariants (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dag import Node, WorkflowDAG
from repro.core.signatures import compute_node_signatures, diff_signatures
from repro.optimizer.oep import NodeState, plan_run_time, solve_oep
from repro.optimizer.omp import cumulative_run_time
from repro.optimizer.pruning import eviction_schedule, out_of_scope_after
from repro.storage.serialization import deserialize, serialize

from conftest import ConstOperator, SumOperator


@st.composite
def random_dags(draw):
    """Random DAGs with 2-8 nodes, returning (parents list, per-node tags)."""
    n = draw(st.integers(2, 8))
    parents = []
    for i in range(n):
        parents.append([j for j in range(i) if draw(st.booleans())])
    tags = [draw(st.integers(0, 3)) for _ in range(n)]
    return parents, tags


def _build(parents, tags):
    nodes = []
    for i, deps in enumerate(parents):
        operator = SumOperator(offset=float(tags[i])) if deps else ConstOperator(tags[i], tag=str(tags[i]))
        nodes.append(
            Node.create(f"n{i}", operator, parents=[f"n{j}" for j in deps], is_output=(i == len(parents) - 1))
        )
    return WorkflowDAG(nodes)


class TestDAGProperties:
    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_topological_order_respects_all_edges(self, spec):
        dag = _build(*spec)
        order = {name: i for i, name in enumerate(dag.topological_order())}
        for parent, child in dag.edges:
            assert order[parent] < order[child]

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_ancestors_descendants_are_inverse(self, spec):
        dag = _build(*spec)
        for name in dag.node_names:
            for ancestor in dag.ancestors(name):
                assert name in dag.descendants(ancestor)

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_slicing_keeps_output_cone_closed(self, spec):
        dag = _build(*spec)
        sliced = dag.sliced_to_outputs()
        for name in sliced.node_names:
            for parent in sliced.parents(name):
                assert parent in sliced

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_eviction_schedule_is_a_partition(self, spec):
        dag = _build(*spec)
        order = list(dag.topological_order())
        schedule = eviction_schedule(dag, order)
        evicted = sorted(name for names in schedule.values() for name in names)
        assert evicted == sorted(order)
        # No node is evicted before its own execution.
        positions = {name: i for i, name in enumerate(order)}
        for name, after in out_of_scope_after(dag, order).items():
            assert after >= positions[name]


class TestSignatureProperties:
    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_signatures_are_deterministic_and_unique_per_structure(self, spec):
        dag1 = _build(*spec)
        dag2 = _build(*spec)
        assert compute_node_signatures(dag1) == compute_node_signatures(dag2)

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_self_diff_has_no_original_nodes(self, spec):
        dag = _build(*spec)
        signatures = compute_node_signatures(dag)
        diff = diff_signatures(signatures, signatures)
        assert diff.original == frozenset()
        assert diff.reusable == frozenset(signatures)


class TestPlanProperties:
    @given(
        random_dags(),
        st.lists(st.floats(0.1, 5.0), min_size=8, max_size=8),
        st.lists(st.floats(0.05, 5.0), min_size=8, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_optimal_plan_never_beats_or_loses_to_infeasible_bounds(self, spec, computes, loads):
        parents, tags = spec
        dag = _build(parents, tags)
        compute = {f"n{i}": computes[i] for i in range(len(parents))}
        load = {f"n{i}": loads[i] for i in range(len(parents))}
        forced = [dag.node_names[-1]]
        plan = solve_oep(dag, compute, load, forced_compute=forced)
        # Lower bound: the forced node's own compute time.  Upper bound: computing everything.
        assert plan.estimated_time >= compute[forced[0]] - 1e-9
        assert plan.estimated_time <= sum(compute.values()) + 1e-9
        assert plan.estimated_time == pytest.approx(plan_run_time(plan.states, compute, load))

    @given(random_dags(), st.floats(0.1, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_cumulative_runtime_monotone_in_ancestry(self, spec, unit_cost):
        dag = _build(*spec)
        times = {name: unit_cost for name in dag.node_names}
        for name in dag.node_names:
            own = cumulative_run_time(name, dag, times)
            for child in dag.children(name):
                assert cumulative_run_time(child, dag, times) >= own - 1e-9


class TestSerializationProperties:
    @given(
        st.recursive(
            st.one_of(st.integers(-1000, 1000), st.floats(allow_nan=False, allow_infinity=False),
                      st.text(max_size=20), st.booleans(), st.none()),
            lambda children: st.one_of(
                st.lists(children, max_size=5),
                st.dictionaries(st.text(max_size=5), children, max_size=5),
            ),
            max_leaves=20,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_serialize_round_trip(self, value):
        assert deserialize(serialize(value)) == value
