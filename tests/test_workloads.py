"""Unit tests for the four evaluation workloads and the iteration samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.operators import Component, RunContext
from repro.core.signatures import compute_node_signatures
from repro.workloads import (
    DOMAIN_FREQUENCIES,
    WORKLOADS,
    IterationSpec,
    IterationType,
    build_iteration_plan,
    get_workload,
)
from repro.workloads.census import CensusConfig, CensusWorkload, generate_census_rows
from repro.workloads.genomics import GenomicsWorkload, generate_articles, generate_gene_db
from repro.workloads.mnist import MnistWorkload, generate_digit_images
from repro.workloads.nlp_ie import IEWorkload, generate_news_articles, generate_spouse_kb

CTX = RunContext(seed=0)
RNG = np.random.default_rng(0)


class TestIterationPlans:
    def test_frequencies_are_normalized_enough(self):
        for domain, freqs in DOMAIN_FREQUENCIES.items():
            assert sum(freqs.values()) == pytest.approx(1.0), domain

    def test_plan_starts_with_initial_run(self):
        plan = build_iteration_plan("social_sciences", 5)
        assert plan[0].index == 0
        assert plan[0].description == "initial run"
        assert len(plan) == 5

    def test_plan_deterministic_per_seed(self):
        a = build_iteration_plan("natural_sciences", 10, seed=3)
        b = build_iteration_plan("natural_sciences", 10, seed=3)
        c = build_iteration_plan("natural_sciences", 10, seed=4)
        assert [s.kind for s in a] == [s.kind for s in b]
        assert a != c or [s.kind for s in a] != [s.kind for s in c]

    def test_nlp_plan_is_dpr_only(self):
        plan = build_iteration_plan("nlp", 6)
        assert all(spec.kind == IterationType.DPR for spec in plan)
        assert len(plan) == 6

    def test_default_iteration_counts(self):
        assert len(build_iteration_plan("social_sciences")) == 10
        assert len(build_iteration_plan("nlp")) == 6

    def test_unknown_domain_rejected(self):
        with pytest.raises(KeyError):
            build_iteration_plan("astrology")


class TestRegistry:
    def test_all_four_workloads_registered(self):
        assert {"census", "genomics", "nlp", "mnist"} <= set(WORKLOADS)

    def test_get_workload_unknown(self):
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_describe(self):
        description = get_workload("census").describe()
        assert description["name"] == "Census"


class TestGenerators:
    def test_census_rows_have_csv_lines(self):
        train, test = generate_census_rows(CTX, n_train=50, n_test=20, seed=1)
        assert len(train) == 50 and len(test) == 20
        assert train[0]["line"].count(",") == 8
        # Deterministic given the seed.
        again, _ = generate_census_rows(CTX, n_train=50, n_test=20, seed=1)
        assert train[0]["line"] == again[0]["line"]

    def test_census_labels_have_both_classes(self):
        train, _ = generate_census_rows(CTX, n_train=300, n_test=0, seed=0)
        labels = {row["line"].rsplit(",", 1)[-1] for row in train}
        assert labels == {"0", "1"}

    def test_gene_articles_mention_known_genes(self):
        articles, _ = generate_articles(CTX, n_articles=10, n_genes=10, seed=2)
        genes = {row["gene"] for row in generate_gene_db(CTX, n_genes=10)[0]}
        assert len(articles) == 10
        assert any(any(gene in article["text"] for gene in genes) for article in articles)

    def test_spouse_kb_pairs_are_unique_and_sorted(self):
        kb, _ = generate_spouse_kb(CTX, n_persons=20, n_pairs=8, seed=0)
        pairs = [(row["person_a"], row["person_b"]) for row in kb]
        assert len(pairs) == len(set(pairs))
        assert all(a <= b for a, b in pairs)

    def test_news_articles_split_into_train_and_test(self):
        train, test = generate_news_articles(CTX, n_articles=40, seed=0)
        assert len(train) + len(test) == 40
        assert len(test) >= 1

    def test_digit_images_have_pixels_and_binary_target(self):
        train, test = generate_digit_images(CTX, n_train=30, n_test=10, image_size=8, seed=0)
        assert len(train) == 30 and len(test) == 10
        assert train[0]["pixels"].shape == (64,)
        assert set(row["target"] for row in train) <= {0, 1}


def _iterate(workload, kinds):
    config = workload.initial_config()
    rng = np.random.default_rng(0)
    configs = [config]
    for index, kind in enumerate(kinds, start=1):
        config = workload.apply_iteration(config, IterationSpec(index=index, kind=kind), rng)
        configs.append(config)
    return configs


class TestWorkloadBuilders:
    @pytest.mark.parametrize("name", ["census", "genomics", "nlp", "mnist"])
    def test_build_produces_valid_dag_with_one_output(self, name):
        workload = get_workload(name)
        dag = workload.build(workload.initial_config()).compile()
        assert len(dag.outputs) == 1
        sliced = dag.sliced_to_outputs()
        assert len(sliced) <= len(dag)
        components = {sliced.node(n).component for n in sliced.node_names}
        assert Component.PPR in components and Component.LI in components

    @pytest.mark.parametrize("name", ["census", "genomics", "nlp", "mnist"])
    def test_iteration_changes_some_node_signature(self, name):
        workload = get_workload(name)
        kinds = [IterationType.DPR, IterationType.LI, IterationType.PPR]
        if name == "nlp":
            kinds = [IterationType.DPR, IterationType.DPR, IterationType.DPR]
        configs = _iterate(workload, kinds)
        previous = compute_node_signatures(workload.build(configs[0]).compile().sliced_to_outputs())
        for config in configs[1:]:
            current = compute_node_signatures(workload.build(config).compile().sliced_to_outputs())
            assert set(current.values()) != set(previous.values())
            previous = current

    @pytest.mark.parametrize("name", ["census", "genomics", "nlp", "mnist"])
    def test_iteration_zero_is_identity(self, name):
        workload = get_workload(name)
        config = workload.initial_config()
        unchanged = workload.apply_iteration(config, IterationSpec(index=0, kind=IterationType.DPR), RNG)
        assert unchanged == config

    @pytest.mark.parametrize("name", ["census", "genomics", "nlp", "mnist"])
    def test_characteristics_match_table2(self, name):
        characteristics = get_workload(name).characteristics()
        assert characteristics.supported_by_helix
        if name in ("genomics", "mnist"):
            assert not characteristics.supported_by_deepdive
        if name == "nlp":
            assert not characteristics.supported_by_keystoneml

    def test_census_scaling(self):
        config = CensusConfig(n_train=100, n_test=50).scaled(10)
        assert config.n_train == 1000 and config.n_test == 500

    def test_census_ppr_iteration_only_touches_reducer(self):
        workload = get_workload("census")
        base = workload.initial_config()
        changed = workload.apply_iteration(base, IterationSpec(index=1, kind=IterationType.PPR), RNG)
        before = compute_node_signatures(workload.build(base).compile().sliced_to_outputs())
        after = compute_node_signatures(workload.build(changed).compile().sliced_to_outputs())
        different = {name for name in before if before[name] != after.get(name)}
        assert different == {"checked"}

    def test_census_li_iteration_does_not_touch_dpr(self):
        workload = get_workload("census")
        base = workload.initial_config()
        rng = np.random.default_rng(1)
        changed = workload.apply_iteration(base, IterationSpec(index=1, kind=IterationType.LI), rng)
        before = compute_node_signatures(workload.build(base).compile().sliced_to_outputs())
        after = compute_node_signatures(workload.build(changed).compile().sliced_to_outputs())
        assert before["income"] == after["income"]
        assert before["predictions"] != after["predictions"]

    def test_census_raceext_declared_but_pruned(self):
        workload = get_workload("census")
        dag = workload.build(workload.initial_config()).compile()
        assert "raceExt" in dag
        assert "raceExt" not in dag.sliced_to_outputs()
