"""Engine-equivalence test harness: one lifecycle, four executor strategies.

The execution engine's contract (see ``repro/execution/engine.py``) is that
every executor strategy — inline, thread, process, distributed — produces
the same run statistics modulo timing and memory residency.  This suite pins
that contract down:

* **Equivalence over random DAGs** — all four executors execute identical
  plans over seeded random DAGs (varying width/depth, mixed
  LOAD/COMPUTE/PRUNE states across two iterations, all three materialization
  policies, tight storage budgets) and must produce identical outputs, node
  states, materialized-node sets, decisions, StatsStore contents and store
  catalogs.
* **Determinism** — with the simulated cost model, repeated runs at
  different ``max_workers`` and on different executors produce byte-identical
  run signatures.
* **Crash paths** — a failing operator surfaces a single
  :class:`OperatorError` naming the node on every executor (including across
  the process boundary), cancels outstanding work, leaves the store's budget
  accounting consistent and the cache empty.
* **Process-safety guards** — the process executor rejects non-picklable
  operators (and ``supports_processes=False`` opt-outs) with a clear
  :class:`ExecutionError` naming the node, before any work is dispatched.
* **Missing-input regression** — ``_compute_node`` raises
  :class:`ExecutionError` when a declared parent is absent from the cache
  instead of silently running the operator with fewer inputs.
"""

from __future__ import annotations

import threading
from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dag import Node, WorkflowDAG
from repro.core.operators import Operator
from repro.core.signatures import compute_node_signatures
from repro.exceptions import ExecutionError, OperatorError
from repro.execution.clock import SimulatedCostModel
from repro.execution.engine import ExecutionEngine, create_engine
from repro.execution.equivalence import (
    ExecutorRig,
    assert_equivalent_runs,
    assert_executors_equivalent,
    run_executor_matrix,
    run_signature,
    stats_store_snapshot,
    store_snapshot,
)
from repro.execution.executors import EXECUTOR_NAMES
from repro.execution.parallel import ENGINE_NAMES, ParallelExecutionEngine
from repro.optimizer.metrics import StatsStore
from repro.optimizer.oep import NodeState, solve_oep
from repro.optimizer.omp import (
    AlwaysMaterialize,
    NeverMaterialize,
    StreamingMaterializationPolicy,
)
from repro.storage.store import InMemoryStore
from repro.systems.helix import HelixSystem
from repro.experiments.runner import run_lifecycle
from repro.workloads.synthetic import (
    LatencyOperator,
    make_cpu_dag,
    make_random_dag,
    make_wide_dag,
)

from conftest import FailingOperator, OptedOutOperator, UnpicklableOperator

INF = float("inf")

POLICIES = {
    "never": NeverMaterialize,
    "always": AlwaysMaterialize,
    "streaming": StreamingMaterializationPolicy,
}

#: Pool-backed executors (dispatch crosses a thread, process or socket
#: boundary).
POOLED_EXECUTORS = ("thread", "process", "distributed")


# ---------------------------------------------------------------------------
# Equivalence over random and structured DAGs (all three executors)
# ---------------------------------------------------------------------------
class TestExecutorEquivalence:
    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    @pytest.mark.parametrize("seed", range(6))
    def test_random_dags_two_iterations(self, seed, policy_name):
        dag = make_random_dag(seed, max_width=4, max_depth=5)
        assert_executors_equivalent(dag, policy_factory=POLICIES[policy_name])

    @pytest.mark.parametrize("branches,depth", [(8, 1), (8, 3), (2, 6), (1, 1)])
    def test_wide_and_deep_dags(self, branches, depth):
        dag = make_wide_dag(branches=branches, depth=depth)
        assert_executors_equivalent(dag)

    def test_cpu_bound_dag(self):
        """The CPU-bound benchmark shape is equivalent across executors too."""
        dag = make_cpu_dag(branches=4, depth=2, spin=1_000)
        assert_executors_equivalent(dag)

    def test_matrix_compares_storage_exactly(self):
        """The tolerance knobs are gone: storage stats always participate,
        and a run with divergent storage bytes must fail the harness."""
        from repro.execution.equivalence import run_executor_matrix
        from repro.execution.equivalence import (
            assert_executor_matrix_equivalent,
        )

        dag = make_wide_dag(branches=2, depth=1)
        rigs, runs = assert_executors_equivalent(dag)
        with pytest.raises(TypeError):
            assert_executors_equivalent(dag, include_storage=False)
        # Corrupt one candidate's storage statistic: exact comparison
        # must report the storage_bytes field by name.
        victim = next(name for name in runs if name != "inline")
        runs[victim][3].storage_bytes += 1
        with pytest.raises(AssertionError, match="storage_bytes"):
            assert_executor_matrix_equivalent(rigs, runs)

    def test_harness_catches_a_nondeterministic_encoder(self, monkeypatch):
        """Bit-equality is load-bearing: if the encoder ever stops being
        canonical (here: an injected encoder whose output grows with every
        call), two otherwise identical runs stop agreeing on serialized
        sizes and the harness must fail loudly instead of papering over it
        with a tolerance."""
        import repro.storage.store as store_module

        real_serialize = store_module.serialize
        real_deserialize = store_module.deserialize
        calls = {"count": 0}

        def drifting(value):
            calls["count"] += 1
            return real_serialize(("__drift__", "x" * calls["count"], value))

        def unwrapping(payload):
            value = real_deserialize(payload)
            if isinstance(value, tuple) and len(value) == 3 and value[0] == "__drift__":
                return value[2]
            return value

        monkeypatch.setattr(store_module, "serialize", drifting)
        monkeypatch.setattr(store_module, "deserialize", unwrapping)
        dag = make_wide_dag(branches=2, depth=1)
        signatures = compute_node_signatures(dag)
        reference = ExecutorRig("inline")
        candidate = ExecutorRig("inline")
        _, reference_stats = reference.run(dag, signatures, forced=dag.node_names)
        _, candidate_stats = candidate.run(dag, signatures, forced=dag.node_names)
        assert calls["count"] > 0  # the drifting encoder actually ran
        with pytest.raises(AssertionError, match="node_sizes|storage_bytes"):
            assert_equivalent_runs(
                reference_stats, candidate_stats, include_times=False
            )

    def test_second_iteration_has_mixed_states(self):
        """Sanity-check the harness itself: iteration 1 actually mixes states."""
        dag = make_wide_dag(branches=4, depth=2)
        _, runs = run_executor_matrix(dag, policy_factory=AlwaysMaterialize)
        for executor in EXECUTOR_NAMES:
            _, _, plan1, stats1 = runs[executor]
            states = set(plan1.states.values())
            assert NodeState.LOAD in states
            assert NodeState.COMPUTE in states
            assert stats1.nodes_in_state(NodeState.LOAD)

    @pytest.mark.parametrize("budget", [0, 400, 2000])
    def test_tight_budget_decision_sequences_match(self, budget):
        """Budget-exhaustion decisions depend on commit order; they must align."""
        dag = make_random_dag(3, max_width=4, max_depth=4)
        rigs, _ = assert_executors_equivalent(
            dag, policy_factory=AlwaysMaterialize, budget_bytes=budget
        )
        for rig in rigs.values():
            assert rig.store.total_bytes() <= budget if budget else True

    def test_outputs_equal_values_not_just_digests(self):
        dag = make_random_dag(7)
        _, runs = run_executor_matrix(dag, policy_factory=NeverMaterialize)
        _, inline0, _, _ = runs["inline"]
        for executor in POOLED_EXECUTORS:
            _, stats0, _, _ = runs[executor]
            assert stats0.outputs == inline0.outputs

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_property_equivalence_on_arbitrary_seeds(self, seed):
        dag = make_random_dag(seed, max_width=3, max_depth=4)
        signatures = compute_node_signatures(dag)
        rigs = {
            "inline": ExecutorRig("inline"),
            "thread": ExecutorRig("thread", max_workers=8),
            "process": ExecutorRig("process", max_workers=2),
            "distributed": ExecutorRig("distributed", max_workers=2),
        }
        stats = {
            name: rig.run(dag, signatures, forced=dag.node_names)[1]
            for name, rig in rigs.items()
        }
        for name in POOLED_EXECUTORS:
            assert_equivalent_runs(
                stats["inline"],
                stats[name],
                reference_stats=rigs["inline"].stats_store,
                candidate_stats=rigs[name].stats_store,
                reference_store=rigs["inline"].store,
                candidate_store=rigs[name].store,
            )


# ---------------------------------------------------------------------------
# Determinism across worker counts, repeated runs and executors
# ---------------------------------------------------------------------------
class TestExecutorDeterminism:
    @pytest.mark.parametrize("seed", [0, 11, 42])
    def test_byte_identical_across_worker_counts(self, seed):
        """With a fixed cost model, workers 1/2/8 give byte-identical signatures."""
        dag = make_random_dag(seed, max_width=4, max_depth=5)
        signatures_by_workers = {}
        for workers in (1, 2, 8):
            rig = ExecutorRig("thread", max_workers=workers)
            dag_signatures = compute_node_signatures(dag)
            _, stats0 = rig.run(dag, dag_signatures, forced=dag.node_names, iteration=0)
            _, stats1 = rig.run(dag, dag_signatures, forced=(), iteration=1)
            signatures_by_workers[workers] = (
                run_signature(stats0, include_times=True),
                run_signature(stats1, include_times=True),
                stats_store_snapshot(rig.stats_store),
                store_snapshot(rig.store),
            )
        reference = signatures_by_workers[1]
        assert signatures_by_workers[2] == reference
        assert signatures_by_workers[8] == reference

    def test_repeated_runs_identical(self):
        dag = make_wide_dag(branches=6, depth=2)
        seen = set()
        for _ in range(3):
            rig = ExecutorRig("thread", policy=AlwaysMaterialize(), max_workers=8)
            _, stats = rig.run(dag, compute_node_signatures(dag), forced=dag.node_names)
            seen.add(run_signature(stats, include_times=True))
        assert len(seen) == 1

    @pytest.mark.parametrize("executor", POOLED_EXECUTORS)
    def test_matches_inline_signature_bit_for_bit(self, executor):
        dag = make_random_dag(5)
        signatures = compute_node_signatures(dag)
        inline = ExecutorRig("inline")
        pooled = ExecutorRig(executor, max_workers=4)
        _, inline_stats = inline.run(dag, signatures, forced=dag.node_names)
        _, pooled_stats = pooled.run(dag, signatures, forced=dag.node_names)
        assert run_signature(inline_stats) == run_signature(pooled_stats)


# ---------------------------------------------------------------------------
# Crash paths (thread and process executors)
# ---------------------------------------------------------------------------
class RecordingOperator(LatencyOperator):
    """LatencyOperator that records executions into a shared thread-safe log.

    The log lives in the pytest process: with the process executor, worker
    processes append to their *own* copy, so only in-process executions are
    observable here (which is what the cancellation test relies on).
    """

    _log: List[str] = []
    _log_lock = threading.Lock()

    def __init__(self, name: str, **kwargs):
        super().__init__(tag=name, **kwargs)
        self._name = name

    def run(self, inputs, context):
        with RecordingOperator._log_lock:
            RecordingOperator._log.append(self._name)
        return super().run(inputs, context)

    @classmethod
    def reset_log(cls) -> None:
        with cls._log_lock:
            cls._log = []

    @classmethod
    def executed(cls) -> List[str]:
        with cls._log_lock:
            return list(cls._log)


def _crash_dag(branches: int = 4, depth: int = 10, sleep_seconds: float = 0.005) -> WorkflowDAG:
    """A failing root plus several slow chains: plenty of outstanding work."""
    nodes = [Node.create("boom", FailingOperator(), is_output=True)]
    for branch in range(branches):
        previous = None
        for level in range(depth):
            name = f"c{branch}_n{level}"
            parents = [previous] if previous else []
            nodes.append(
                Node.create(
                    name,
                    RecordingOperator(name, offset=1.0, sleep_seconds=sleep_seconds),
                    parents=parents,
                    is_output=(level == depth - 1),
                )
            )
            previous = name
    return WorkflowDAG(nodes, name="crash")


def _all_compute_plan(dag: WorkflowDAG):
    return solve_oep(
        dag,
        {name: 1.0 for name in dag.node_names},
        {name: INF for name in dag.node_names},
        forced_compute=dag.node_names,
    )


class TestCrashPaths:
    def _run_crash(self, executor="thread", policy=None, budget=None, max_workers=4):
        RecordingOperator.reset_log()
        dag = _crash_dag()
        store = InMemoryStore(budget_bytes=budget)
        engine = create_engine(
            executor,
            store=store,
            policy=policy if policy is not None else NeverMaterialize(),
            cost_model=SimulatedCostModel(),
            stats=StatsStore(),
            max_workers=max_workers,
        )
        with pytest.raises(OperatorError) as excinfo:
            engine.execute(dag, _all_compute_plan(dag), compute_node_signatures(dag))
        return dag, store, engine, excinfo.value

    @pytest.mark.parametrize("executor", POOLED_EXECUTORS)
    def test_single_operator_error_names_failing_node(self, executor):
        dag, _, _, error = self._run_crash(executor)
        assert error.node_name == "boom"
        assert "boom" in str(error)

    def test_outstanding_work_is_cancelled(self):
        dag, _, _, _ = self._run_crash("thread")
        executed = RecordingOperator.executed()
        # The failure surfaces long before the 40 slow chain nodes finish:
        # not-yet-started futures are cancelled, so most nodes never ran.
        assert len(executed) < len(dag) - 1

    @pytest.mark.parametrize("executor", POOLED_EXECUTORS)
    def test_budget_accounting_consistent_after_failure(self, executor):
        budget = 10_000
        _, store, _, _ = self._run_crash(executor, policy=AlwaysMaterialize(), budget=budget)
        records = store.artifacts()
        assert store.total_bytes() == sum(record.size_bytes for record in records)
        assert store.total_bytes() <= budget
        assert store.remaining_budget() == budget - store.total_bytes()

    @pytest.mark.parametrize("executor", POOLED_EXECUTORS)
    def test_cache_cleared_after_failure(self, executor):
        _, _, engine, _ = self._run_crash(executor)
        assert len(engine.cache) == 0

    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_all_executors_raise_same_error_type(self, executor):
        dag = _crash_dag(branches=1, depth=1, sleep_seconds=0.0)
        rig = ExecutorRig(executor, policy=NeverMaterialize(), max_workers=2)
        with pytest.raises(OperatorError) as excinfo:
            rig.engine.execute(dag, _all_compute_plan(dag), compute_node_signatures(dag))
        assert excinfo.value.node_name == "boom"

    def test_executor_instance_reusable_after_failure(self):
        """A user-supplied executor instance serves a clean run after a crash.

        The failed run's in-flight tasks drain into the completion queue
        during shutdown; start() must discard them or the next run would pop
        stale completions for nodes of a different DAG.
        """
        from repro.execution.executors import ThreadExecutor

        engine = ExecutionEngine(
            store=InMemoryStore(),
            cost_model=SimulatedCostModel(),
            executor=ThreadExecutor(max_workers=4),
        )
        crash = _crash_dag()
        with pytest.raises(OperatorError):
            engine.execute(crash, _all_compute_plan(crash), compute_node_signatures(crash))
        dag = make_wide_dag(branches=3, depth=2)
        stats = engine.execute(dag, _all_compute_plan(dag), compute_node_signatures(dag))
        assert set(stats.node_times) == set(dag.node_names)

    def test_operator_error_survives_pickling(self):
        import pickle

        error = OperatorError("boom", "intentional failure")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, OperatorError)
        assert clone.node_name == "boom"
        assert str(clone) == str(error)


# ---------------------------------------------------------------------------
# Process-safety guards
# ---------------------------------------------------------------------------
class UnpicklableResultOperator(Operator):
    """Picklable operator whose *result* cannot cross the process boundary."""

    def config(self):
        return {}

    def run(self, inputs, context):
        return lambda: None


class TestProcessSafetyGuards:
    def _execute(self, dag):
        rig = ExecutorRig("process", max_workers=2)
        return rig.engine.execute(
            dag, _all_compute_plan(dag), compute_node_signatures(dag)
        )

    def test_non_picklable_operator_rejected_naming_node(self):
        dag = WorkflowDAG([Node.create("closure_node", UnpicklableOperator(), is_output=True)])
        with pytest.raises(ExecutionError, match="closure_node.*not picklable"):
            self._execute(dag)

    def test_supports_processes_false_rejected(self):
        dag = WorkflowDAG([Node.create("opted_out", OptedOutOperator(), is_output=True)])
        with pytest.raises(ExecutionError, match="opted_out.*supports_processes=False"):
            self._execute(dag)

    def test_validation_happens_before_any_work(self):
        """A non-picklable node anywhere fails fast: nothing executes at all."""
        RecordingOperator.reset_log()
        nodes = [
            Node.create("ok", RecordingOperator("ok", offset=1.0), is_output=True),
            Node.create("closure_node", UnpicklableOperator(), is_output=True),
        ]
        with pytest.raises(ExecutionError, match="closure_node"):
            self._execute(WorkflowDAG(nodes, name="mixed"))
        assert RecordingOperator.executed() == []

    def test_unpicklable_result_surfaces_operator_error(self):
        dag = WorkflowDAG(
            [Node.create("bad_result", UnpicklableResultOperator(), is_output=True)]
        )
        with pytest.raises(OperatorError, match="bad_result.*not picklable"):
            self._execute(dag)

    def test_loads_do_not_require_picklable_operators(self):
        """Only COMPUTE nodes ship to workers; LOAD nodes run in-process."""
        dag = WorkflowDAG(
            [
                Node.create("opted_out", OptedOutOperator()),
                Node.create(
                    "consumer",
                    LatencyOperator(offset=1.0),
                    parents=["opted_out"],
                    is_output=True,
                ),
            ]
        )
        signatures = compute_node_signatures(dag)
        rig = ExecutorRig("process", policy=AlwaysMaterialize(), max_workers=2)
        # Materialize via the inline engine into the same store, then re-plan
        # with only the consumer forced: the process engine LOADs the
        # opted-out node (in-process) and only ships the consumer.
        inline = create_engine(
            "inline",
            store=rig.store,
            policy=AlwaysMaterialize(),
            cost_model=SimulatedCostModel(),
            stats=rig.stats_store,
        )
        inline.execute(dag, _all_compute_plan(dag), signatures)
        plan, stats = rig.run(dag, signatures, forced=["consumer"])
        assert plan.states["opted_out"] is NodeState.LOAD
        assert plan.states["consumer"] is NodeState.COMPUTE
        assert stats.outputs["consumer"] == 2.0


# ---------------------------------------------------------------------------
# Inline scheduling semantics
# ---------------------------------------------------------------------------
class TestInlineScheduling:
    def test_inline_executes_in_exact_topological_order(self):
        """The inline executor is the serial reference walk: one node at a
        time, in topological order, each cached and retired before the next
        runs — not a frontier computed eagerly at dispatch time."""
        RecordingOperator.reset_log()
        nodes = [Node.create("a", RecordingOperator("a", offset=1.0))]
        nodes += [
            Node.create(
                f"b{i}", RecordingOperator(f"b{i}", offset=1.0), parents=["a"], is_output=True
            )
            for i in range(5)
        ]
        dag = WorkflowDAG(nodes, name="fanout")
        rig = ExecutorRig("inline")
        rig.engine.execute(dag, _all_compute_plan(dag), compute_node_signatures(dag))
        assert RecordingOperator.executed() == list(dag.topological_order())

    def test_inline_peak_memory_bounded_by_retirement(self):
        """Independent leaves retire as they complete, so inline peak
        residency stays near two values, not the whole fan-out."""
        nodes = [Node.create("root", LatencyOperator(offset=1.0))]
        nodes += [
            Node.create(
                f"leaf{i}", LatencyOperator(offset=float(i)), parents=["root"], is_output=True
            )
            for i in range(8)
        ]
        dag = WorkflowDAG(nodes, name="fanout")
        rig = ExecutorRig("inline", policy=NeverMaterialize())
        _, stats = rig.run(dag, forced=dag.node_names)
        # root + at most one leaf resident at a time: each leaf is cached,
        # snapshotted and retired before the next leaf runs.
        assert stats.peak_memory_bytes <= max(stats.node_sizes.values()) * 3


# ---------------------------------------------------------------------------
# Executor selection plumbing (engines, systems, experiment runner)
# ---------------------------------------------------------------------------
class TestExecutorSelection:
    def test_create_engine_rejects_unknown_name(self):
        with pytest.raises(ExecutionError):
            create_engine("gpu", store=InMemoryStore())

    def test_configure_engine_rejects_unknown_name(self):
        with pytest.raises(ExecutionError), pytest.warns(DeprecationWarning):
            HelixSystem.opt().configure_engine("gpu")

    def test_configure_engine_is_deprecated_but_works(self):
        system = HelixSystem.opt()
        with pytest.warns(DeprecationWarning):
            system.configure_engine("parallel", max_workers=2)
        assert system.executor_name == "thread"
        assert system.engine == "parallel"

    @pytest.mark.parametrize("executor", POOLED_EXECUTORS)
    def test_pool_executors_reject_bad_worker_count(self, executor):
        with pytest.raises(ExecutionError):
            create_engine(executor, store=InMemoryStore(), max_workers=0)

    def test_parallel_engine_shim_rejects_bad_worker_count(self):
        with pytest.raises(ExecutionError):
            ParallelExecutionEngine(store=InMemoryStore(), max_workers=0)

    def test_parallel_engine_shim_uses_thread_executor(self):
        engine = ParallelExecutionEngine(store=InMemoryStore(), max_workers=2)
        assert engine.executor == "thread"

    def test_engine_rejects_max_workers_with_executor_instance(self):
        from repro.execution.executors import ThreadExecutor

        # The instance's own worker count wins; a silently ignored
        # max_workers would undo a deliberate concurrency limit.
        with pytest.raises(ExecutionError, match="executor instance"):
            ExecutionEngine(
                store=InMemoryStore(), executor=ThreadExecutor(max_workers=2), max_workers=4
            )

    def test_legacy_class_level_engine_attribute_translates(self):
        from repro.systems.base import System

        class LegacySystem(System):
            engine = "parallel"  # PR 2 style class-level declaration

            def run_iteration(self, workflow, iteration, iteration_type=""):
                raise NotImplementedError

            def reset(self):
                pass

        assert LegacySystem.executor_name == "thread"
        instance = LegacySystem()
        assert instance.executor_name == "thread"
        assert instance.engine == "parallel"

    def test_legacy_engine_names_resolve_to_executors(self):
        assert create_engine("serial", store=InMemoryStore()).executor == "inline"
        assert create_engine("parallel", store=InMemoryStore()).executor == "thread"
        with pytest.warns(DeprecationWarning):
            assert create_engine(engine="parallel", store=InMemoryStore()).executor == "thread"
        assert ENGINE_NAMES == ("serial", "parallel")

    def test_system_constructor_accepts_legacy_engine(self):
        with pytest.warns(DeprecationWarning):
            system = HelixSystem.opt(engine="parallel", max_workers=3)
        assert system.engine == "parallel"
        assert system.executor_name == "thread"
        assert system.max_workers == 3

    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_system_constructor_accepts_executor(self, executor):
        system = HelixSystem.opt(executor=executor, max_workers=2)
        assert system.executor_name == executor
        assert system.max_workers == 2

    def test_engine_property_round_trips_legacy_names(self):
        system = HelixSystem.opt()
        assert system.engine == "serial"
        system.engine = "parallel"
        assert system.executor_name == "thread"
        system.configure_executor("process")
        assert system.engine == "process"  # no legacy alias: canonical name

    def test_run_lifecycle_engine_override_equivalent(self):
        serial = HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0)
        parallel = HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0)
        reference = run_lifecycle(serial, "census", n_iterations=2)
        with pytest.warns(DeprecationWarning):
            candidate = run_lifecycle(
                parallel, "census", n_iterations=2, engine="parallel", max_workers=4
            )
        assert parallel.engine == "parallel"
        for serial_stats, parallel_stats in zip(reference.iterations, candidate.iterations):
            assert_equivalent_runs(serial_stats, parallel_stats)

    def test_run_lifecycle_executor_override(self):
        system = HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0)
        run_lifecycle(system, "census", n_iterations=1, executor="thread", max_workers=2)
        assert system.executor_name == "thread"


# ---------------------------------------------------------------------------
# Missing-input regression (previously: silent skip)
# ---------------------------------------------------------------------------
class TestMissingInputRegression:
    def test_compute_node_with_missing_parent_raises(self, diamond_dag):
        engine = ExecutionEngine(store=InMemoryStore(), cost_model=SimulatedCostModel())
        # The cache is empty, so computing "d" would previously have run the
        # operator with zero of its two declared inputs.
        with pytest.raises(ExecutionError, match="not cached"):
            engine._compute_node(diamond_dag, "d")

    def test_lru_pressure_eviction_surfaces_error_instead_of_wrong_result(self, diamond_dag):
        from repro.execution.cache import LRUCache

        # A pathologically small LRU cache evicts "a" while "b"/"c" still
        # need it.  The engine must fail loudly rather than compute "c" from
        # fewer inputs and return a silently wrong output.
        engine = ExecutionEngine(
            store=InMemoryStore(),
            cost_model=SimulatedCostModel(),
            cache=LRUCache(capacity_bytes=1),
        )
        with pytest.raises(ExecutionError, match="not cached"):
            engine.execute(
                diamond_dag, _all_compute_plan(diamond_dag), compute_node_signatures(diamond_dag)
            )

    @pytest.mark.parametrize("executor", POOLED_EXECUTORS)
    def test_pool_executors_also_guard_missing_inputs(self, executor, diamond_dag):
        from repro.execution.cache import LRUCache

        engine = create_engine(
            executor,
            store=InMemoryStore(),
            cost_model=SimulatedCostModel(),
            cache=LRUCache(capacity_bytes=1),
            max_workers=2,
        )
        with pytest.raises(ExecutionError):
            engine.execute(
                diamond_dag, _all_compute_plan(diamond_dag), compute_node_signatures(diamond_dag)
            )


# ---------------------------------------------------------------------------
# Thread-safe cache refcounts
# ---------------------------------------------------------------------------
class TestCacheRefcounts:
    def test_release_reports_zero_exactly_once(self):
        from repro.execution.cache import EagerCache

        cache = EagerCache()
        cache.put("x", 1.0)
        cache.set_consumers("x", 2)
        assert cache.release("x") is False
        assert cache.release("x") is True
        assert cache.release("x") is False  # further releases are inert

    def test_zero_consumer_entries_start_out_of_scope(self):
        from repro.execution.cache import EagerCache

        cache = EagerCache()
        cache.put("x", 1.0)
        cache.set_consumers("x", 0)
        assert cache.consumers("x") == 0
        assert cache.release("x") is False

    def test_negative_consumers_rejected(self):
        from repro.execution.cache import EagerCache

        with pytest.raises(ExecutionError):
            EagerCache().set_consumers("x", -1)

    def test_concurrent_releases_single_zero_transition(self):
        from repro.execution.cache import EagerCache

        cache = EagerCache()
        cache.put("x", 1.0)
        consumers = 64
        cache.set_consumers("x", consumers)
        zero_transitions = []
        barrier = threading.Barrier(8)

        def worker(releases: int) -> None:
            barrier.wait()
            for _ in range(releases):
                if cache.release("x"):
                    zero_transitions.append(True)

        threads = [threading.Thread(target=worker, args=(consumers // 8,)) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert zero_transitions == [True]
