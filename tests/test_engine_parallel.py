"""Engine-equivalence test harness: serial vs parallel execution.

The parallel engine's contract (see ``repro/execution/parallel.py``) is that
it produces the same run statistics as the serial engine modulo timing and
memory residency.  This suite pins that contract down:

* **Equivalence over random DAGs** — serial and parallel engines execute
  identical plans over seeded random DAGs (varying width/depth, mixed
  LOAD/COMPUTE/PRUNE states across two iterations, all three materialization
  policies, tight storage budgets) and must produce identical outputs, node
  states, materialized-node sets, decisions, StatsStore contents and store
  catalogs.
* **Determinism** — with the simulated cost model, repeated parallel runs at
  ``max_workers`` 1, 2 and 8 produce byte-identical run signatures.
* **Crash paths** — a failing operator surfaces a single
  :class:`OperatorError` naming the node, cancels outstanding work, and
  leaves the store's budget accounting consistent.
* **Missing-input regression** — ``_compute_node`` raises
  :class:`ExecutionError` when a declared parent is absent from the cache
  instead of silently running the operator with fewer inputs.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Sequence

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dag import Node, WorkflowDAG
from repro.core.operators import Component, Operator, RunContext
from repro.core.signatures import compute_node_signatures
from repro.exceptions import ExecutionError, OperatorError
from repro.execution.clock import SimulatedCostModel
from repro.execution.engine import ExecutionEngine
from repro.execution.equivalence import (
    assert_equivalent_runs,
    compare_runs,
    run_signature,
    stats_store_snapshot,
    store_snapshot,
)
from repro.execution.parallel import ParallelExecutionEngine, create_engine
from repro.optimizer.metrics import StatsStore
from repro.optimizer.oep import NodeState, solve_oep
from repro.optimizer.omp import (
    AlwaysMaterialize,
    MaterializationPolicy,
    NeverMaterialize,
    StreamingMaterializationPolicy,
)
from repro.storage.store import InMemoryStore
from repro.systems.helix import HelixSystem
from repro.experiments.runner import run_lifecycle
from repro.workloads.synthetic import LatencyOperator, make_random_dag, make_wide_dag

from conftest import FailingOperator

INF = float("inf")

POLICIES = {
    "never": NeverMaterialize,
    "always": AlwaysMaterialize,
    "streaming": StreamingMaterializationPolicy,
}


# ---------------------------------------------------------------------------
# Harness helpers
# ---------------------------------------------------------------------------
class EngineRig:
    """One engine with its own store/stats, driven through plan+execute."""

    def __init__(self, engine_name: str, policy: MaterializationPolicy, budget=None, max_workers=None):
        self.store = InMemoryStore(budget_bytes=budget)
        self.stats_store = StatsStore()
        self.engine = create_engine(
            engine_name,
            max_workers=max_workers,
            store=self.store,
            policy=policy,
            cost_model=SimulatedCostModel(),
            stats=self.stats_store,
            context=RunContext(seed=0),
        )

    def run(self, dag: WorkflowDAG, signatures: Dict[str, str], forced: Sequence[str], iteration: int = 0):
        """Solve an OEP plan (loads allowed where the store has artifacts) and execute it."""
        compute_time = {name: 1.0 for name in dag.node_names}
        load_time = {
            name: (0.01 if self.store.has(signatures[name]) else INF)
            for name in dag.node_names
        }
        plan = solve_oep(dag, compute_time, load_time, forced_compute=forced)
        return plan, self.engine.execute(dag, plan, signatures, iteration=iteration)


def run_engine_pair(dag, policy_name: str, budget=None, max_workers: int = 4):
    """Run serial and parallel rigs through two iterations over ``dag``.

    Iteration 0 computes everything (and materializes per policy); iteration
    1 re-plans against the now-populated store with a deterministic forced
    subset, producing a LOAD/COMPUTE/PRUNE mix.  Returns both rigs and the
    per-iteration stats for each engine.
    """
    signatures = compute_node_signatures(dag)
    forced_second = sorted(dag.node_names)[:: max(1, len(dag) // 3)]
    runs = {}
    rigs = {}
    for engine_name in ("serial", "parallel"):
        rig = EngineRig(
            engine_name,
            POLICIES[policy_name](),
            budget=budget,
            max_workers=max_workers if engine_name == "parallel" else None,
        )
        plan0, stats0 = rig.run(dag, signatures, forced=dag.node_names, iteration=0)
        plan1, stats1 = rig.run(dag, signatures, forced=forced_second, iteration=1)
        runs[engine_name] = (plan0, stats0, plan1, stats1)
        rigs[engine_name] = rig
    return rigs, runs


def assert_pair_equivalent(rigs, runs):
    serial_plan0, serial0, serial_plan1, serial1 = runs["serial"]
    parallel_plan0, parallel0, parallel_plan1, parallel1 = runs["parallel"]
    assert serial_plan0.states == parallel_plan0.states
    assert serial_plan1.states == parallel_plan1.states
    assert_equivalent_runs(serial0, parallel0)
    assert_equivalent_runs(
        serial1,
        parallel1,
        reference_stats=rigs["serial"].stats_store,
        candidate_stats=rigs["parallel"].stats_store,
        reference_store=rigs["serial"].store,
        candidate_store=rigs["parallel"].store,
    )


# ---------------------------------------------------------------------------
# Equivalence over random and structured DAGs
# ---------------------------------------------------------------------------
class TestEngineEquivalence:
    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    @pytest.mark.parametrize("seed", range(6))
    def test_random_dags_two_iterations(self, seed, policy_name):
        dag = make_random_dag(seed, max_width=4, max_depth=5)
        rigs, runs = run_engine_pair(dag, policy_name)
        assert_pair_equivalent(rigs, runs)

    @pytest.mark.parametrize("branches,depth", [(8, 1), (8, 3), (2, 6), (1, 1)])
    def test_wide_and_deep_dags(self, branches, depth):
        dag = make_wide_dag(branches=branches, depth=depth)
        rigs, runs = run_engine_pair(dag, "streaming")
        assert_pair_equivalent(rigs, runs)

    def test_second_iteration_has_mixed_states(self):
        """Sanity-check the harness itself: iteration 1 actually mixes states."""
        dag = make_wide_dag(branches=4, depth=2)
        _, runs = run_engine_pair(dag, "always")
        _, _, plan1, stats1 = runs["parallel"]
        states = set(plan1.states.values())
        assert NodeState.LOAD in states
        assert NodeState.COMPUTE in states
        assert stats1.nodes_in_state(NodeState.LOAD)

    @pytest.mark.parametrize("budget", [0, 400, 2000])
    def test_tight_budget_decision_sequences_match(self, budget):
        """Budget-exhaustion decisions depend on commit order; they must align."""
        dag = make_random_dag(3, max_width=4, max_depth=4)
        rigs, runs = run_engine_pair(dag, "always", budget=budget)
        assert_pair_equivalent(rigs, runs)
        _, _, _, serial1 = runs["serial"]
        assert rigs["serial"].store.total_bytes() <= budget if budget else True

    def test_outputs_equal_values_not_just_digests(self):
        dag = make_random_dag(7)
        _, runs = run_engine_pair(dag, "never")
        _, serial0, _, _ = runs["serial"]
        _, parallel0, _, _ = runs["parallel"]
        assert serial0.outputs == parallel0.outputs

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_property_equivalence_on_arbitrary_seeds(self, seed):
        dag = make_random_dag(seed, max_width=3, max_depth=4)
        signatures = compute_node_signatures(dag)
        serial = EngineRig("serial", StreamingMaterializationPolicy())
        parallel = EngineRig("parallel", StreamingMaterializationPolicy(), max_workers=8)
        _, serial_stats = serial.run(dag, signatures, forced=dag.node_names)
        _, parallel_stats = parallel.run(dag, signatures, forced=dag.node_names)
        assert_equivalent_runs(
            serial_stats,
            parallel_stats,
            reference_stats=serial.stats_store,
            candidate_stats=parallel.stats_store,
            reference_store=serial.store,
            candidate_store=parallel.store,
        )


# ---------------------------------------------------------------------------
# Determinism across worker counts and repeated runs
# ---------------------------------------------------------------------------
class TestParallelDeterminism:
    @pytest.mark.parametrize("seed", [0, 11, 42])
    def test_byte_identical_across_worker_counts(self, seed):
        """With a fixed cost model, workers 1/2/8 give byte-identical signatures."""
        dag = make_random_dag(seed, max_width=4, max_depth=5)
        signatures_by_workers = {}
        for workers in (1, 2, 8):
            rig = EngineRig("parallel", StreamingMaterializationPolicy(), max_workers=workers)
            dag_signatures = compute_node_signatures(dag)
            _, stats0 = rig.run(dag, dag_signatures, forced=dag.node_names, iteration=0)
            _, stats1 = rig.run(dag, dag_signatures, forced=(), iteration=1)
            signatures_by_workers[workers] = (
                run_signature(stats0, include_times=True),
                run_signature(stats1, include_times=True),
                stats_store_snapshot(rig.stats_store),
                store_snapshot(rig.store),
            )
        reference = signatures_by_workers[1]
        assert signatures_by_workers[2] == reference
        assert signatures_by_workers[8] == reference

    def test_repeated_runs_identical(self):
        dag = make_wide_dag(branches=6, depth=2)
        seen = set()
        for _ in range(3):
            rig = EngineRig("parallel", AlwaysMaterialize(), max_workers=8)
            _, stats = rig.run(dag, compute_node_signatures(dag), forced=dag.node_names)
            seen.add(run_signature(stats, include_times=True))
        assert len(seen) == 1

    def test_matches_serial_signature_bit_for_bit(self):
        dag = make_random_dag(5)
        signatures = compute_node_signatures(dag)
        serial = EngineRig("serial", StreamingMaterializationPolicy())
        parallel = EngineRig("parallel", StreamingMaterializationPolicy(), max_workers=8)
        _, serial_stats = serial.run(dag, signatures, forced=dag.node_names)
        _, parallel_stats = parallel.run(dag, signatures, forced=dag.node_names)
        assert run_signature(serial_stats) == run_signature(parallel_stats)


# ---------------------------------------------------------------------------
# Crash paths
# ---------------------------------------------------------------------------
class RecordingOperator(LatencyOperator):
    """LatencyOperator that records executions into a shared thread-safe log."""

    _log: List[str] = []
    _log_lock = threading.Lock()

    def __init__(self, name: str, **kwargs):
        super().__init__(tag=name, **kwargs)
        self._name = name

    def run(self, inputs, context):
        with RecordingOperator._log_lock:
            RecordingOperator._log.append(self._name)
        return super().run(inputs, context)

    @classmethod
    def reset_log(cls) -> None:
        with cls._log_lock:
            cls._log = []

    @classmethod
    def executed(cls) -> List[str]:
        with cls._log_lock:
            return list(cls._log)


def _crash_dag(branches: int = 4, depth: int = 10, sleep_seconds: float = 0.005) -> WorkflowDAG:
    """A failing root plus several slow chains: plenty of outstanding work."""
    nodes = [Node.create("boom", FailingOperator(), is_output=True)]
    for branch in range(branches):
        previous = None
        for level in range(depth):
            name = f"c{branch}_n{level}"
            parents = [previous] if previous else []
            nodes.append(
                Node.create(
                    name,
                    RecordingOperator(name, offset=1.0, sleep_seconds=sleep_seconds),
                    parents=parents,
                    is_output=(level == depth - 1),
                )
            )
            previous = name
    return WorkflowDAG(nodes, name="crash")


def _all_compute_plan(dag: WorkflowDAG):
    return solve_oep(
        dag,
        {name: 1.0 for name in dag.node_names},
        {name: INF for name in dag.node_names},
        forced_compute=dag.node_names,
    )


class TestCrashPaths:
    def _run_crash(self, policy=None, budget=None, max_workers=4):
        RecordingOperator.reset_log()
        dag = _crash_dag()
        store = InMemoryStore(budget_bytes=budget)
        engine = ParallelExecutionEngine(
            store=store,
            policy=policy if policy is not None else NeverMaterialize(),
            cost_model=SimulatedCostModel(),
            stats=StatsStore(),
            max_workers=max_workers,
        )
        with pytest.raises(OperatorError) as excinfo:
            engine.execute(dag, _all_compute_plan(dag), compute_node_signatures(dag))
        return dag, store, engine, excinfo.value

    def test_single_operator_error_names_failing_node(self):
        dag, _, _, error = self._run_crash()
        assert error.node_name == "boom"
        assert "boom" in str(error)

    def test_outstanding_work_is_cancelled(self):
        dag, _, _, _ = self._run_crash()
        executed = RecordingOperator.executed()
        # The failure surfaces long before the 40 slow chain nodes finish:
        # not-yet-started futures are cancelled, so most nodes never ran.
        assert len(executed) < len(dag) - 1

    def test_budget_accounting_consistent_after_failure(self):
        budget = 10_000
        _, store, _, _ = self._run_crash(policy=AlwaysMaterialize(), budget=budget)
        records = store.artifacts()
        assert store.total_bytes() == sum(record.size_bytes for record in records)
        assert store.total_bytes() <= budget
        assert store.remaining_budget() == budget - store.total_bytes()

    def test_cache_cleared_after_failure(self):
        _, _, engine, _ = self._run_crash()
        assert len(engine.cache) == 0

    def test_serial_and_parallel_raise_same_error_type(self):
        dag = _crash_dag(branches=1, depth=1, sleep_seconds=0.0)
        for engine_name in ("serial", "parallel"):
            rig = EngineRig(engine_name, NeverMaterialize())
            with pytest.raises(OperatorError) as excinfo:
                rig.engine.execute(dag, _all_compute_plan(dag), compute_node_signatures(dag))
            assert excinfo.value.node_name == "boom"


# ---------------------------------------------------------------------------
# Engine selection plumbing (systems + experiment runner)
# ---------------------------------------------------------------------------
class TestEngineSelection:
    def test_create_engine_rejects_unknown_name(self):
        with pytest.raises(ExecutionError):
            create_engine("distributed", store=InMemoryStore())

    def test_configure_engine_rejects_unknown_name(self):
        with pytest.raises(ExecutionError):
            HelixSystem.opt().configure_engine("gpu")

    def test_parallel_engine_rejects_bad_worker_count(self):
        with pytest.raises(ExecutionError):
            ParallelExecutionEngine(store=InMemoryStore(), max_workers=0)

    def test_system_constructor_accepts_engine(self):
        system = HelixSystem.opt(engine="parallel", max_workers=3)
        assert system.engine == "parallel"
        assert system.max_workers == 3

    def test_run_lifecycle_engine_override_equivalent(self):
        serial = HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0)
        parallel = HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0)
        reference = run_lifecycle(serial, "census", n_iterations=2)
        candidate = run_lifecycle(parallel, "census", n_iterations=2, engine="parallel", max_workers=4)
        assert parallel.engine == "parallel"
        for serial_stats, parallel_stats in zip(reference.iterations, candidate.iterations):
            assert_equivalent_runs(serial_stats, parallel_stats)


# ---------------------------------------------------------------------------
# Missing-input regression (previously: silent skip)
# ---------------------------------------------------------------------------
class TestMissingInputRegression:
    def test_compute_node_with_missing_parent_raises(self, diamond_dag):
        engine = ExecutionEngine(store=InMemoryStore(), cost_model=SimulatedCostModel())
        # The cache is empty, so computing "d" would previously have run the
        # operator with zero of its two declared inputs.
        with pytest.raises(ExecutionError, match="not cached"):
            engine._compute_node(diamond_dag, "d")

    def test_lru_pressure_eviction_surfaces_error_instead_of_wrong_result(self, diamond_dag):
        from repro.execution.cache import LRUCache

        # A pathologically small LRU cache evicts "a" while "b"/"c" still
        # need it.  The engine must fail loudly rather than compute "c" from
        # fewer inputs and return a silently wrong output.
        engine = ExecutionEngine(
            store=InMemoryStore(),
            cost_model=SimulatedCostModel(),
            cache=LRUCache(capacity_bytes=1),
        )
        with pytest.raises(ExecutionError, match="not cached"):
            engine.execute(
                diamond_dag, _all_compute_plan(diamond_dag), compute_node_signatures(diamond_dag)
            )

    def test_parallel_engine_also_guards_missing_inputs(self, diamond_dag):
        from repro.execution.cache import LRUCache

        engine = ParallelExecutionEngine(
            store=InMemoryStore(),
            cost_model=SimulatedCostModel(),
            cache=LRUCache(capacity_bytes=1),
            max_workers=2,
        )
        with pytest.raises(ExecutionError):
            engine.execute(
                diamond_dag, _all_compute_plan(diamond_dag), compute_node_signatures(diamond_dag)
            )


# ---------------------------------------------------------------------------
# Thread-safe cache refcounts
# ---------------------------------------------------------------------------
class TestCacheRefcounts:
    def test_release_reports_zero_exactly_once(self):
        from repro.execution.cache import EagerCache

        cache = EagerCache()
        cache.put("x", 1.0)
        cache.set_consumers("x", 2)
        assert cache.release("x") is False
        assert cache.release("x") is True
        assert cache.release("x") is False  # further releases are inert

    def test_zero_consumer_entries_start_out_of_scope(self):
        from repro.execution.cache import EagerCache

        cache = EagerCache()
        cache.put("x", 1.0)
        cache.set_consumers("x", 0)
        assert cache.consumers("x") == 0
        assert cache.release("x") is False

    def test_negative_consumers_rejected(self):
        from repro.execution.cache import EagerCache

        with pytest.raises(ExecutionError):
            EagerCache().set_consumers("x", -1)

    def test_concurrent_releases_single_zero_transition(self):
        from repro.execution.cache import EagerCache

        cache = EagerCache()
        cache.put("x", 1.0)
        consumers = 64
        cache.set_consumers("x", consumers)
        zero_transitions = []
        barrier = threading.Barrier(8)

        def worker(releases: int) -> None:
            barrier.wait()
            for _ in range(releases):
                if cache.release("x"):
                    zero_transitions.append(True)

        threads = [threading.Thread(target=worker, args=(consumers // 8,)) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert zero_transitions == [True]
