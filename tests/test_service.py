"""Helix-as-a-service: the ``repro serve`` daemon and ``repro submit`` client.

Pins down the serving layer built on protocol v3 session multiplexing:

* **Equivalence** — two runs submitted concurrently to one daemon execute
  on a shared 2-worker fleet at the same time (``peak_active == 2``) and
  each produces stats identical (modulo timing/memory) to an inline run of
  the same spec, checked through the equivalence-harness payloads.
* **Scheduling** — admission is FIFO; ``max_concurrent_runs`` bounds how
  many runs execute at once, and queued submissions report their position.
* **Admission** — malformed specs (unknown workload, bad policy, wrong
  frame) are refused with a typed message at submit time, client- and
  daemon-side, without disturbing the fleet.
* **CLI** — ``repro submit --verify-inline --json`` round-trips against an
  in-process daemon.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.exceptions import ExecutionError
from repro.execution.executors import _recv_message, _send_message
from repro.service import (
    ServeDaemon,
    ServiceClient,
    assert_payloads_equivalent,
    inline_reference,
    submit_run,
    validate_spec,
)
from repro.service.cli import submit_main

CENSUS_SPEC = {
    "workload": "census",
    "iterations": 2,
    "scale": 0.25,
    "seed": 7,
    "policy": "opt",
    "cost_model": "simulated",
}


# ---------------------------------------------------------------------------
# Spec validation (admission-time refusal)
# ---------------------------------------------------------------------------
class TestSpecValidation:
    def test_normalizes_and_fills_defaults(self):
        spec = validate_spec({"workload": "census"})
        assert spec == {
            "workload": "census",
            "iterations": 0,
            "scale": 1.0,
            "seed": 7,
            "policy": "opt",
            "cost_model": "simulated",
            "tenant": "default",
            "priority": 0,
        }

    def test_tenant_and_priority_are_validated(self):
        spec = validate_spec(
            {"workload": "census", "tenant": "team-a", "priority": 7}
        )
        assert spec["tenant"] == "team-a"
        assert spec["priority"] == 7

    @pytest.mark.parametrize(
        ("bad", "match"),
        [
            ("not-a-dict", "must be a dict"),
            ({}, "workload name"),
            ({"workload": 7}, "workload name"),
            ({"workload": "nope"}, "unknown workload"),
            ({"workload": "census", "typo": 1}, "unknown field"),
            ({"workload": "census", "iterations": "many"}, "non-numeric"),
            ({"workload": "census", "iterations": -1}, "iterations"),
            ({"workload": "census", "scale": 0}, "scale"),
            ({"workload": "census", "policy": "maybe"}, "unknown policy"),
            ({"workload": "census", "cost_model": "guess"}, "unknown cost_model"),
            ({"workload": "census", "tenant": ""}, "tenant"),
            ({"workload": "census", "tenant": 7}, "tenant"),
            ({"workload": "census", "tenant": "bad tenant!"}, "tenant"),
            ({"workload": "census", "tenant": "x" * 65}, "tenant"),
            ({"workload": "census", "priority": "urgent"}, "non-numeric priority"),
            ({"workload": "census", "priority": -1}, "priority must be within"),
            ({"workload": "census", "priority": 10}, "priority must be within"),
        ],
    )
    def test_malformed_specs_fail_typed(self, bad, match):
        with pytest.raises(ExecutionError, match=match):
            validate_spec(bad)


# ---------------------------------------------------------------------------
# Serving runs on a shared fleet
# ---------------------------------------------------------------------------
class TestServeDaemon:
    def test_concurrent_runs_share_the_fleet_and_match_inline(self):
        """The acceptance criterion: two concurrent submissions execute on
        one 2-worker fleet simultaneously and each matches its inline
        reference through the equivalence payloads."""
        spec_a = dict(CENSUS_SPEC)
        spec_b = dict(CENSUS_SPEC, seed=11)
        with ServeDaemon(max_workers=2, max_concurrent_runs=2) as daemon:
            client = ServiceClient(daemon.address)
            handle_a = client.submit(spec_a)
            handle_b = client.submit(spec_b)
            progress = []
            payload_a = handle_a.result(
                on_event=lambda kind, info: progress.append(info["iteration"])
            )
            payload_b = handle_b.result()
            stats = daemon.stats()
            assert len(daemon.worker_pids()) == 2  # one fleet served both
        assert stats["peak_active"] == 2  # the runs truly overlapped
        assert sorted(stats["completed"]) == ["run-1", "run-2"]
        assert stats["failed"] == []
        assert progress == [0, 1]  # streamed per-iteration progress
        assert_payloads_equivalent(payload_a, inline_reference(spec_a))
        assert_payloads_equivalent(payload_b, inline_reference(spec_b))
        # different seeds are genuinely different runs — the harness agrees
        with pytest.raises(AssertionError):
            assert_payloads_equivalent(payload_a, payload_b)

    def test_admission_is_fifo_and_concurrency_is_bounded(self):
        spec = dict(CENSUS_SPEC, iterations=1)
        with ServeDaemon(max_workers=1, max_concurrent_runs=1) as daemon:
            client = ServiceClient(daemon.address)
            handles = [client.submit(dict(spec, seed=seed)) for seed in (1, 2, 3)]
            # the daemon reported each submission's queue position at admission
            assert [h.queue_position for h in handles] == [0, 1, 2]
            for handle in handles:
                handle.result()
            stats = daemon.stats()
        assert stats["peak_active"] == 1  # never more than the knob allows
        assert stats["completed"] == ["run-1", "run-2", "run-3"]  # FIFO

    def test_failed_run_reports_typed_and_daemon_survives(self):
        """A run that fails mid-execution reports ('failed', ...) to its
        submitter; the daemon and fleet keep serving later submissions."""
        with ServeDaemon(max_workers=1, max_concurrent_runs=1) as daemon:
            client = ServiceClient(daemon.address)
            # scale small enough that the census workload cannot stratify
            # is hard to provoke; instead fail validation server-side by
            # bypassing the client's local validate with a raw frame
            sock = socket.create_connection(daemon.address, timeout=5)
            try:
                _send_message(sock, ("submit", {"workload": "nope"}))
                reply = _recv_message(sock)
            finally:
                sock.close()
            assert reply[0] == "failed"
            assert "unknown workload" in reply[2]
            # the fleet is untouched: a good run still completes
            payload = client.submit(dict(CENSUS_SPEC, iterations=1)).result()
            assert payload["summary"]["iterations"] == 1

    def test_non_submit_frame_is_refused(self):
        with ServeDaemon(max_workers=1) as daemon:
            sock = socket.create_connection(daemon.address, timeout=5)
            try:
                _send_message(sock, ("heartbeat", "w0"))
                reply = _recv_message(sock)
            finally:
                sock.close()
        assert reply[0] == "failed"
        assert "submit" in reply[2]

    def test_client_rejects_bad_spec_without_connecting(self):
        client = ServiceClient(("127.0.0.1", 1))  # nothing listens there
        with pytest.raises(ExecutionError, match="unknown workload"):
            client.submit({"workload": "nope"})

    def test_max_concurrent_runs_validated(self):
        with pytest.raises(ExecutionError, match="max_concurrent_runs"):
            ServeDaemon(max_workers=1, max_concurrent_runs=0)

    def test_overlapping_identical_runs_reuse_artifacts(self):
        """Same-seed runs produce identical signatures, so later runs
        resolve artifacts from the fleet's shared content-addressed tier
        (or a peer worker) instead of pulling every byte through the
        coordinator again — wire-observable in the ``artifact_plane``
        counters, which must also survive stop().  The first two runs
        overlap (their fetches may race); the third starts against warm
        worker caches, so at least one peer fetch or cross-session hit is
        guaranteed."""
        with ServeDaemon(max_workers=2, max_concurrent_runs=2) as daemon:
            client = ServiceClient(daemon.address)
            handle_a = client.submit(dict(CENSUS_SPEC))
            handle_b = client.submit(dict(CENSUS_SPEC))  # same seed: same sigs
            handle_a.result()
            handle_b.result()
            client.submit(dict(CENSUS_SPEC)).result()  # warm-tier run
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:  # worker stats ride heartbeats
                plane = daemon.stats()["artifact_plane"]
                reuse = plane.get("peer_fetches", 0) + plane.get(
                    "cross_session_hits", 0
                )
                if reuse >= 1:
                    break
                time.sleep(0.05)
            assert reuse >= 1, plane
        # the stop() snapshot keeps the counters readable after the fleet
        # (and its stats-carrying heartbeats) are gone
        frozen = daemon.stats()["artifact_plane"]
        assert frozen.get("peer_fetches", 0) + frozen.get("cross_session_hits", 0) >= 1
        assert "locates_served" in frozen and "fetch_bytes_served" in frozen

    def test_peer_fetch_off_routes_all_bytes_through_coordinator(self):
        """The ``peer_fetch=False`` knob fully disables the plane: locates
        are never answered with peers and workers never dial each other,
        yet runs still complete and match inline."""
        spec = dict(CENSUS_SPEC, iterations=1)
        with ServeDaemon(
            max_workers=1, max_concurrent_runs=1, peer_fetch=False
        ) as daemon:
            payload = submit_run(daemon.address, spec)
            plane = daemon.stats()["artifact_plane"]
        assert payload["summary"]["iterations"] == 1
        assert plane["locates_served"] == 0
        assert plane["locates_with_peers"] == 0
        assert_payloads_equivalent(payload, inline_reference(spec))

    def test_submit_run_convenience(self):
        with ServeDaemon(max_workers=1) as daemon:
            events = []
            payload = submit_run(
                daemon.address,
                dict(CENSUS_SPEC, iterations=1),
                on_event=lambda kind, info: events.append(kind),
            )
        assert payload["summary"]["workload"] == "census"
        assert events == ["progress"]


# ---------------------------------------------------------------------------
# Shutdown semantics (review-fix regressions)
# ---------------------------------------------------------------------------
class _GatedDaemon(ServeDaemon):
    """A daemon whose runs block on a gate, so a test can pin one 'active'
    while others sit queued — without racing against real run durations."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = threading.Event()
        self.executed = []

    def _execute(self, record):
        self.executed.append(record.run_id)
        if not self.gate.wait(timeout=20):
            raise ExecutionError("test gate never opened")
        return {"ok": record.run_id}


class TestStopSemantics:
    def test_stop_fails_queued_runs_without_executing_them(self):
        """stop() lets the active run finish but fails the queued backlog
        without running it — and the stats stay consistent: failed runs are
        counted, nothing stays 'queued' forever."""
        daemon = _GatedDaemon(max_workers=1, max_concurrent_runs=1)
        daemon.start()
        try:
            client = ServiceClient(daemon.address)
            handle_a = client.submit(dict(CENSUS_SPEC, iterations=1))
            handle_b = client.submit(dict(CENSUS_SPEC, iterations=1, seed=11))
            deadline = time.monotonic() + 10
            while not daemon.executed and time.monotonic() < deadline:
                time.sleep(0.01)
            assert daemon.executed == ["run-1"]  # run-2 queued behind it

            stopper = threading.Thread(target=daemon.stop)
            stopper.start()
            while not daemon._stopping.is_set():
                time.sleep(0.01)
            daemon.gate.set()  # now let the active run finish
            stopper.join(timeout=30)
            assert not stopper.is_alive()

            assert handle_a.result() == {"ok": "run-1"}
            with pytest.raises(ExecutionError, match="before the run started"):
                handle_b.result()
            assert daemon.executed == ["run-1"]  # run-2 never executed
            stats = daemon.stats()
            assert stats["queued"] == 0 and stats["active"] == 0
            assert stats["completed"] == ["run-1"]
            assert stats["failed"] == ["run-2"]
        finally:
            daemon.gate.set()
            daemon.stop()

    def test_submission_racing_with_stop_is_refused(self):
        """An admission that catches the daemon mid-stop gets a terminal
        'failed' frame instead of being queued behind the final drain and
        leaving its client blocked forever."""
        daemon = ServeDaemon(max_workers=1)
        daemon._stopping.set()  # mid-stop, admission-side view
        # a real TCP pair: admission sets TCP_NODELAY, which an AF_UNIX
        # socketpair would reject
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        client_sock = socket.create_connection(listener.getsockname())
        server_side, _ = listener.accept()
        listener.close()
        try:
            _send_message(client_sock, ("submit", dict(CENSUS_SPEC)))
            daemon._handle_submission(server_side)
            client_sock.settimeout(5.0)
            reply = _recv_message(client_sock)
            assert reply[0] == "failed"
            assert "stopping" in reply[2]
            assert daemon._scheduler.qsize() == 0  # nothing stranded for a drain
            assert daemon.stats()["queued"] == 0
        finally:
            client_sock.close()


# ---------------------------------------------------------------------------
# Service-layer bugfix regressions
# ---------------------------------------------------------------------------
class _NoWatcherDaemon(_GatedDaemon):
    """Gated daemon with the disconnect watcher disabled, so a dead
    client survives in the queue until the dequeue-time liveness check —
    the path a client racing the runner handoff takes."""

    def _watch_queued_client(self, record):
        pass


class TestBugfixes:
    def test_dead_client_run_is_not_executed(self):
        """A queued run whose submitter vanished must not occupy a runner
        slot and the fleet: the dequeue-time EOF peek fails it unrun."""
        daemon = _NoWatcherDaemon(max_workers=1, max_concurrent_runs=1)
        daemon.start()
        try:
            client = ServiceClient(daemon.address)
            running = client.submit(dict(CENSUS_SPEC, iterations=1))
            deadline = time.monotonic() + 10
            while not daemon.executed and time.monotonic() < deadline:
                time.sleep(0.01)
            assert daemon.executed == ["run-1"]
            dead = client.submit(dict(CENSUS_SPEC, iterations=1, seed=11))
            dead.close()  # the submitter hangs up while run-2 is queued
            daemon.gate.set()
            running.result()
            deadline = time.monotonic() + 10
            while "run-2" not in daemon.stats()["failed"]:
                assert time.monotonic() < deadline, daemon.stats()
                time.sleep(0.01)
            stats = daemon.stats()
            assert daemon.executed == ["run-1"]  # run-2 never executed
            assert stats["failed"] == ["run-2"]
            assert stats["queued"] == 0 and stats["active"] == 0
        finally:
            daemon.gate.set()
            daemon.stop()

    def test_stop_warns_on_runner_still_mid_run(self):
        """stop() must not silently proceed past a runner that outlived
        the join timeout: it warns naming the thread, re-joins after the
        fleet drain, and warns again if the thread truly leaked."""
        daemon = _GatedDaemon(max_workers=1, max_concurrent_runs=1)
        daemon.start()
        try:
            client = ServiceClient(daemon.address)
            handle = client.submit(dict(CENSUS_SPEC, iterations=1))
            deadline = time.monotonic() + 10
            while not daemon.executed and time.monotonic() < deadline:
                time.sleep(0.01)
            assert daemon.executed == ["run-1"]
            with pytest.warns(RuntimeWarning, match="repro-serve-run-0"):
                daemon.stop(join_timeout=0.2)  # the gated run is still live
        finally:
            daemon.gate.set()
        assert handle.result() == {"ok": "run-1"}  # the run still finished

    @pytest.mark.parametrize(
        "reply",
        [
            ("accepted",),                 # truncated tuple
            ("accepted", "run-1"),         # missing admission info
            ("failed",),                   # truncated refusal
            "accepted",                    # not a tuple at all
            ("accepted", "run-1", "soon"), # junk position payload
        ],
    )
    def test_malformed_admission_reply_raises_typed(self, reply):
        """A daemon (or impostor) sending a malformed admission tuple
        must surface as ExecutionError, not bare IndexError/TypeError."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)

        def _fake_daemon():
            conn, _ = listener.accept()
            _recv_message(conn)  # the submit frame
            _send_message(conn, reply)
            conn.close()

        server = threading.Thread(target=_fake_daemon, daemon=True)
        server.start()
        try:
            client = ServiceClient(listener.getsockname(), connect_timeout=5)
            with pytest.raises(ExecutionError, match="admission reply"):
                client.submit(dict(CENSUS_SPEC))
        finally:
            server.join(timeout=5)
            listener.close()

    def test_legacy_integer_admission_reply_still_accepted(self):
        """Pre-scheduler daemons reported a bare queued+active count."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)

        def _fake_daemon():
            conn, _ = listener.accept()
            _recv_message(conn)
            _send_message(conn, ("accepted", "run-1", 3))
            conn.close()

        server = threading.Thread(target=_fake_daemon, daemon=True)
        server.start()
        try:
            client = ServiceClient(listener.getsockname(), connect_timeout=5)
            handle = client.submit(dict(CENSUS_SPEC))
            assert handle.queue_position == 3
            assert handle.queued_ahead == 3 and handle.active_at_admission == 0
            handle.close()
        finally:
            server.join(timeout=5)
            listener.close()

    def test_queue_position_reports_queued_and_active_split(self):
        """Client and daemon agree on the semantics: queue_position is the
        admitted-but-unfinished count, with the queued/active split (and
        the policy position) reported alongside."""
        daemon = _GatedDaemon(max_workers=1, max_concurrent_runs=1)
        daemon.start()
        try:
            client = ServiceClient(daemon.address)
            first = client.submit(dict(CENSUS_SPEC, iterations=1))
            deadline = time.monotonic() + 10
            while not daemon.executed and time.monotonic() < deadline:
                time.sleep(0.01)
            second = client.submit(dict(CENSUS_SPEC, iterations=1, seed=11))
            assert first.queue_position == 0
            # run-1 is executing, nothing else queued: the split is exact
            assert second.queued_ahead == 0
            assert second.active_at_admission == 1
            assert second.queue_position == 1
            assert second.position == 0  # no *queued* run starts first
            assert second.scheduler == "fifo"
            daemon.gate.set()
            first.result()
            second.result()
        finally:
            daemon.gate.set()
            daemon.stop()

    def test_abandoned_event_stream_releases_the_socket(self):
        """Breaking out of events() mid-stream must close the connection
        promptly (try/finally in the generator), not at interpreter GC."""
        with ServeDaemon(max_workers=1) as daemon:
            client = ServiceClient(daemon.address)
            handle = client.submit(dict(CENSUS_SPEC, iterations=2))
            for _kind, _info in handle.events():
                break  # walk away after the first progress event
            assert handle._sock is None  # released immediately
            with pytest.raises(ExecutionError, match="abandoned"):
                handle.result()
            # the daemon finishes the orphaned run and keeps serving
            payload = client.submit(dict(CENSUS_SPEC, iterations=1)).result()
            assert payload["summary"]["iterations"] == 1
            deadline = time.monotonic() + 10
            while len(daemon.stats()["completed"]) < 2:
                assert time.monotonic() < deadline, daemon.stats()
                time.sleep(0.01)

    def test_run_handle_is_a_context_manager(self):
        with ServeDaemon(max_workers=1) as daemon:
            client = ServiceClient(daemon.address)
            with client.submit(dict(CENSUS_SPEC, iterations=1)) as handle:
                payload = handle.result()
            assert handle._sock is None
            assert payload["summary"]["iterations"] == 1


# ---------------------------------------------------------------------------
# Command line
# ---------------------------------------------------------------------------
class TestSubmitCli:
    def test_submit_verify_inline_and_json(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        with ServeDaemon(max_workers=2) as daemon:
            host, port = daemon.address
            rc = submit_main(
                [
                    "--address", f"{host}:{port}",
                    "--workload", "census",
                    "--iterations", "2",
                    "--scale", "0.25",
                    "--verify-inline",
                    "--json", str(out),
                ]
            )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "submitted run-1" in printed
        assert "equivalent to the inline reference" in printed
        payload = json.loads(out.read_text())
        assert payload["summary"]["system"] == "helix-opt"
        assert payload["summary"]["iterations"] == 2
        assert len(payload["iterations"]) == 2
        assert payload["iteration_types"] == ["DPR", "PPR"]
