"""Helix-as-a-service: the ``repro serve`` daemon and ``repro submit`` client.

Pins down the serving layer built on protocol v3 session multiplexing:

* **Equivalence** — two runs submitted concurrently to one daemon execute
  on a shared 2-worker fleet at the same time (``peak_active == 2``) and
  each produces stats identical (modulo timing/memory) to an inline run of
  the same spec, checked through the equivalence-harness payloads.
* **Scheduling** — admission is FIFO; ``max_concurrent_runs`` bounds how
  many runs execute at once, and queued submissions report their position.
* **Admission** — malformed specs (unknown workload, bad policy, wrong
  frame) are refused with a typed message at submit time, client- and
  daemon-side, without disturbing the fleet.
* **CLI** — ``repro submit --verify-inline --json`` round-trips against an
  in-process daemon.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.exceptions import ExecutionError
from repro.execution.executors import _recv_message, _send_message
from repro.service import (
    ServeDaemon,
    ServiceClient,
    assert_payloads_equivalent,
    inline_reference,
    submit_run,
    validate_spec,
)
from repro.service.cli import submit_main

CENSUS_SPEC = {
    "workload": "census",
    "iterations": 2,
    "scale": 0.25,
    "seed": 7,
    "policy": "opt",
    "cost_model": "simulated",
}


# ---------------------------------------------------------------------------
# Spec validation (admission-time refusal)
# ---------------------------------------------------------------------------
class TestSpecValidation:
    def test_normalizes_and_fills_defaults(self):
        spec = validate_spec({"workload": "census"})
        assert spec == {
            "workload": "census",
            "iterations": 0,
            "scale": 1.0,
            "seed": 7,
            "policy": "opt",
            "cost_model": "simulated",
        }

    @pytest.mark.parametrize(
        ("bad", "match"),
        [
            ("not-a-dict", "must be a dict"),
            ({}, "workload name"),
            ({"workload": 7}, "workload name"),
            ({"workload": "nope"}, "unknown workload"),
            ({"workload": "census", "typo": 1}, "unknown field"),
            ({"workload": "census", "iterations": "many"}, "non-numeric"),
            ({"workload": "census", "iterations": -1}, "iterations"),
            ({"workload": "census", "scale": 0}, "scale"),
            ({"workload": "census", "policy": "maybe"}, "unknown policy"),
            ({"workload": "census", "cost_model": "guess"}, "unknown cost_model"),
        ],
    )
    def test_malformed_specs_fail_typed(self, bad, match):
        with pytest.raises(ExecutionError, match=match):
            validate_spec(bad)


# ---------------------------------------------------------------------------
# Serving runs on a shared fleet
# ---------------------------------------------------------------------------
class TestServeDaemon:
    def test_concurrent_runs_share_the_fleet_and_match_inline(self):
        """The acceptance criterion: two concurrent submissions execute on
        one 2-worker fleet simultaneously and each matches its inline
        reference through the equivalence payloads."""
        spec_a = dict(CENSUS_SPEC)
        spec_b = dict(CENSUS_SPEC, seed=11)
        with ServeDaemon(max_workers=2, max_concurrent_runs=2) as daemon:
            client = ServiceClient(daemon.address)
            handle_a = client.submit(spec_a)
            handle_b = client.submit(spec_b)
            progress = []
            payload_a = handle_a.result(
                on_event=lambda kind, info: progress.append(info["iteration"])
            )
            payload_b = handle_b.result()
            stats = daemon.stats()
            assert len(daemon.worker_pids()) == 2  # one fleet served both
        assert stats["peak_active"] == 2  # the runs truly overlapped
        assert sorted(stats["completed"]) == ["run-1", "run-2"]
        assert stats["failed"] == []
        assert progress == [0, 1]  # streamed per-iteration progress
        assert_payloads_equivalent(payload_a, inline_reference(spec_a))
        assert_payloads_equivalent(payload_b, inline_reference(spec_b))
        # different seeds are genuinely different runs — the harness agrees
        with pytest.raises(AssertionError):
            assert_payloads_equivalent(payload_a, payload_b)

    def test_admission_is_fifo_and_concurrency_is_bounded(self):
        spec = dict(CENSUS_SPEC, iterations=1)
        with ServeDaemon(max_workers=1, max_concurrent_runs=1) as daemon:
            client = ServiceClient(daemon.address)
            handles = [client.submit(dict(spec, seed=seed)) for seed in (1, 2, 3)]
            # the daemon reported each submission's queue position at admission
            assert [h.queue_position for h in handles] == [0, 1, 2]
            for handle in handles:
                handle.result()
            stats = daemon.stats()
        assert stats["peak_active"] == 1  # never more than the knob allows
        assert stats["completed"] == ["run-1", "run-2", "run-3"]  # FIFO

    def test_failed_run_reports_typed_and_daemon_survives(self):
        """A run that fails mid-execution reports ('failed', ...) to its
        submitter; the daemon and fleet keep serving later submissions."""
        with ServeDaemon(max_workers=1, max_concurrent_runs=1) as daemon:
            client = ServiceClient(daemon.address)
            # scale small enough that the census workload cannot stratify
            # is hard to provoke; instead fail validation server-side by
            # bypassing the client's local validate with a raw frame
            sock = socket.create_connection(daemon.address, timeout=5)
            try:
                _send_message(sock, ("submit", {"workload": "nope"}))
                reply = _recv_message(sock)
            finally:
                sock.close()
            assert reply[0] == "failed"
            assert "unknown workload" in reply[2]
            # the fleet is untouched: a good run still completes
            payload = client.submit(dict(CENSUS_SPEC, iterations=1)).result()
            assert payload["summary"]["iterations"] == 1

    def test_non_submit_frame_is_refused(self):
        with ServeDaemon(max_workers=1) as daemon:
            sock = socket.create_connection(daemon.address, timeout=5)
            try:
                _send_message(sock, ("heartbeat", "w0"))
                reply = _recv_message(sock)
            finally:
                sock.close()
        assert reply[0] == "failed"
        assert "submit" in reply[2]

    def test_client_rejects_bad_spec_without_connecting(self):
        client = ServiceClient(("127.0.0.1", 1))  # nothing listens there
        with pytest.raises(ExecutionError, match="unknown workload"):
            client.submit({"workload": "nope"})

    def test_max_concurrent_runs_validated(self):
        with pytest.raises(ExecutionError, match="max_concurrent_runs"):
            ServeDaemon(max_workers=1, max_concurrent_runs=0)

    def test_submit_run_convenience(self):
        with ServeDaemon(max_workers=1) as daemon:
            events = []
            payload = submit_run(
                daemon.address,
                dict(CENSUS_SPEC, iterations=1),
                on_event=lambda kind, info: events.append(kind),
            )
        assert payload["summary"]["workload"] == "census"
        assert events == ["progress"]


# ---------------------------------------------------------------------------
# Command line
# ---------------------------------------------------------------------------
class TestSubmitCli:
    def test_submit_verify_inline_and_json(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        with ServeDaemon(max_workers=2) as daemon:
            host, port = daemon.address
            rc = submit_main(
                [
                    "--address", f"{host}:{port}",
                    "--workload", "census",
                    "--iterations", "2",
                    "--scale", "0.25",
                    "--verify-inline",
                    "--json", str(out),
                ]
            )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "submitted run-1" in printed
        assert "equivalent to the inline reference" in printed
        payload = json.loads(out.read_text())
        assert payload["summary"]["system"] == "helix-opt"
        assert payload["summary"]["iterations"] == 2
        assert len(payload["iterations"]) == 2
        assert payload["iteration_types"] == ["DPR", "PPR"]
