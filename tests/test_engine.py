"""Unit tests for the execution engine: plan execution, caching, materialization."""

from __future__ import annotations

import pytest

from repro.core.dag import Node, WorkflowDAG
from repro.core.operators import Component, RunContext
from repro.core.signatures import compute_node_signatures
from repro.exceptions import ExecutionError, OperatorError
from repro.execution.clock import SimulatedCostModel
from repro.execution.engine import ExecutionEngine
from repro.optimizer.metrics import StatsStore
from repro.optimizer.oep import ExecutionPlan, NodeState, solve_oep
from repro.optimizer.omp import AlwaysMaterialize, NeverMaterialize, StreamingMaterializationPolicy
from repro.storage.store import InMemoryStore

from conftest import ConstOperator, FailingOperator, SumOperator, make_chain_dag, make_diamond_dag

INF = float("inf")


def _plan_all_compute(dag) -> ExecutionPlan:
    compute = {n: 1.0 for n in dag.node_names}
    load = {n: INF for n in dag.node_names}
    return solve_oep(dag, compute, load, forced_compute=dag.node_names)


def _engine(policy=None, store=None, stats=None):
    return ExecutionEngine(
        store=store if store is not None else InMemoryStore(),
        policy=policy if policy is not None else NeverMaterialize(),
        cost_model=SimulatedCostModel(),
        stats=stats if stats is not None else StatsStore(),
        context=RunContext(seed=0),
    )


class TestExecution:
    def test_computes_all_nodes_and_output_value(self, diamond_dag):
        engine = _engine()
        signatures = compute_node_signatures(diamond_dag)
        stats = engine.execute(diamond_dag, _plan_all_compute(diamond_dag), signatures)
        # a=2, b=a+1=3, c=a+2=4, d=b+c=7
        assert stats.outputs["d"] == 7.0
        assert set(stats.node_times) == {"a", "b", "c", "d"}
        assert stats.total_time > 0

    def test_charged_times_use_cost_model(self, diamond_dag):
        engine = _engine()
        signatures = compute_node_signatures(diamond_dag)
        stats = engine.execute(diamond_dag, _plan_all_compute(diamond_dag), signatures)
        # SimulatedCostModel charges the declared operator costs (4, 2, 3, 1).
        assert stats.node_times["a"] == pytest.approx(4.0)
        assert stats.execution_time == pytest.approx(10.0)

    def test_component_breakdown(self, diamond_dag):
        engine = _engine()
        signatures = compute_node_signatures(diamond_dag)
        stats = engine.execute(diamond_dag, _plan_all_compute(diamond_dag), signatures)
        breakdown = stats.component_breakdown()
        assert breakdown["DPR"] == pytest.approx(10.0)
        assert breakdown["Mat."] >= 0.0

    def test_pruned_nodes_not_executed(self, diamond_dag):
        store = InMemoryStore()
        signatures = compute_node_signatures(diamond_dag)
        store.put("b", signatures["b"], 3.0)
        store.put("c", signatures["c"], 4.0)
        compute = {"a": 4.0, "b": 2.0, "c": 3.0, "d": 1.0}
        load = {"a": INF, "b": 0.01, "c": 0.01, "d": INF}
        plan = solve_oep(diamond_dag, compute, load, forced_compute=["d"])
        engine = _engine(store=store)
        stats = engine.execute(diamond_dag, plan, signatures)
        assert "a" not in stats.node_times
        assert stats.node_states["a"] is NodeState.PRUNE
        assert stats.outputs["d"] == 7.0  # loaded parents give the same result

    def test_loading_from_store_charges_io_cost(self, diamond_dag):
        store = InMemoryStore()
        signatures = compute_node_signatures(diamond_dag)
        store.put("b", signatures["b"], 3.0)
        store.put("c", signatures["c"], 4.0)
        compute = {"a": 4.0, "b": 2.0, "c": 3.0, "d": 1.0}
        load = {"a": INF, "b": 0.01, "c": 0.01, "d": INF}
        plan = solve_oep(diamond_dag, compute, load, forced_compute=["d"])
        stats = _engine(store=store).execute(diamond_dag, plan, signatures)
        assert stats.node_states["b"] is NodeState.LOAD
        assert stats.node_times["b"] > 0
        assert stats.node_times["b"] < 1.0  # io cost, not the 2.0 compute cost

    def test_plan_load_without_materialization_fails(self, diamond_dag):
        signatures = compute_node_signatures(diamond_dag)
        states = {"a": NodeState.PRUNE, "b": NodeState.LOAD, "c": NodeState.PRUNE, "d": NodeState.PRUNE}
        plan = ExecutionPlan(states=states, estimated_time=0.0)
        with pytest.raises(ExecutionError):
            _engine().execute(diamond_dag, plan, signatures)

    def test_infeasible_plan_rejected(self, diamond_dag):
        signatures = compute_node_signatures(diamond_dag)
        states = {"a": NodeState.PRUNE, "b": NodeState.COMPUTE, "c": NodeState.PRUNE, "d": NodeState.PRUNE}
        plan = ExecutionPlan(states=states, estimated_time=0.0)
        with pytest.raises(ExecutionError):
            _engine().execute(diamond_dag, plan, signatures)

    def test_missing_signature_rejected(self, diamond_dag):
        plan = _plan_all_compute(diamond_dag)
        with pytest.raises(ExecutionError):
            _engine().execute(diamond_dag, plan, {"a": "x"})

    def test_operator_failure_wrapped(self):
        dag = WorkflowDAG([Node.create("bad", FailingOperator(), is_output=True)])
        plan = _plan_all_compute(dag)
        with pytest.raises(OperatorError) as excinfo:
            _engine().execute(dag, plan, compute_node_signatures(dag))
        assert excinfo.value.node_name == "bad"

    def test_missing_cached_parent_raises_instead_of_silent_skip(self, diamond_dag):
        # Regression: parents absent from the cache used to be skipped, so an
        # operator could run with fewer inputs than the DAG declares and
        # return a silently wrong value.
        engine = _engine()
        with pytest.raises(ExecutionError, match="not cached"):
            engine._compute_node(diamond_dag, "d")


class TestMaterialization:
    def test_outputs_always_materialized(self, diamond_dag):
        store = InMemoryStore()
        engine = _engine(policy=NeverMaterialize(), store=store)
        signatures = compute_node_signatures(diamond_dag)
        stats = engine.execute(diamond_dag, _plan_all_compute(diamond_dag), signatures)
        assert store.has(signatures["d"])
        assert "d" in stats.materialized_nodes
        assert stats.materialization_time > 0

    def test_output_materialization_can_be_disabled(self, diamond_dag):
        store = InMemoryStore()
        engine = ExecutionEngine(
            store=store, policy=NeverMaterialize(), cost_model=SimulatedCostModel(),
            materialize_outputs=False,
        )
        signatures = compute_node_signatures(diamond_dag)
        engine.execute(diamond_dag, _plan_all_compute(diamond_dag), signatures)
        assert store.total_bytes() == 0

    def test_always_policy_materializes_everything(self, diamond_dag):
        store = InMemoryStore()
        engine = _engine(policy=AlwaysMaterialize(), store=store)
        signatures = compute_node_signatures(diamond_dag)
        stats = engine.execute(diamond_dag, _plan_all_compute(diamond_dag), signatures)
        assert sorted(stats.materialized_nodes) == ["a", "b", "c", "d"]
        assert all(store.has(signatures[n]) for n in diamond_dag.node_names)

    def test_streaming_policy_materializes_expensive_subtrees(self, diamond_dag):
        store = InMemoryStore()
        engine = _engine(policy=StreamingMaterializationPolicy(), store=store)
        signatures = compute_node_signatures(diamond_dag)
        stats = engine.execute(diamond_dag, _plan_all_compute(diamond_dag), signatures)
        # With simulated costs of seconds vs. sub-millisecond loads, every node
        # clears the 2*l < C bar.
        assert "d" in stats.materialized_nodes

    def test_existing_artifacts_not_rewritten(self, diamond_dag):
        store = InMemoryStore()
        signatures = compute_node_signatures(diamond_dag)
        store.put("d", signatures["d"], 7.0)
        engine = _engine(policy=AlwaysMaterialize(), store=store)
        stats = engine.execute(diamond_dag, _plan_all_compute(diamond_dag), signatures)
        assert "d" not in stats.materialized_nodes

    def test_budget_prevents_materialization_gracefully(self, diamond_dag):
        store = InMemoryStore(budget_bytes=1)  # nothing fits
        engine = _engine(policy=AlwaysMaterialize(), store=store)
        signatures = compute_node_signatures(diamond_dag)
        stats = engine.execute(diamond_dag, _plan_all_compute(diamond_dag), signatures)
        assert stats.materialized_nodes == []
        assert store.total_bytes() == 0

    def test_stats_recorded_for_future_iterations(self, diamond_dag):
        stats_store = StatsStore()
        engine = _engine(policy=AlwaysMaterialize(), stats=stats_store)
        signatures = compute_node_signatures(diamond_dag)
        engine.execute(diamond_dag, _plan_all_compute(diamond_dag), signatures)
        metrics = stats_store.get(signatures["a"])
        assert metrics is not None
        assert metrics.compute_time == pytest.approx(4.0)
        assert metrics.storage_bytes > 0


class TestMemoryTracking:
    def test_memory_snapshots_recorded(self, diamond_dag):
        engine = _engine()
        signatures = compute_node_signatures(diamond_dag)
        stats = engine.execute(diamond_dag, _plan_all_compute(diamond_dag), signatures)
        assert stats.peak_memory_bytes > 0
        assert 0 < stats.average_memory_bytes <= stats.peak_memory_bytes

    def test_cache_is_empty_after_execution(self, diamond_dag):
        engine = _engine()
        signatures = compute_node_signatures(diamond_dag)
        engine.execute(diamond_dag, _plan_all_compute(diamond_dag), signatures)
        assert len(engine.cache) == 0
