"""Process-safety contract over the built-in workloads.

The process executor requires every COMPUTE operator to be picklable (its
payload is serialized to a worker and the value serialized back).  These
tests pin the contract for the library itself:

* every operator produced by every registered workload — across several
  lifecycle iterations, not just the initial configuration — round-trips
  through ``serialize``/``deserialize`` with its configuration signature
  intact, and passes :func:`ensure_process_safe`;
* :func:`ensure_process_safe` raises a clear :class:`ExecutionError` naming
  the node for non-picklable operators and ``supports_processes=False``
  opt-outs;
* a real workload lifecycle (census) executed on the process executor is
  equivalent to the inline reference, iteration by iteration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.operators import ensure_process_safe
from repro.exceptions import ExecutionError
from repro.execution.clock import SimulatedCostModel
from repro.execution.equivalence import assert_equivalent_runs
from repro.experiments.runner import run_lifecycle
from repro.storage.serialization import deserialize, serialize
from repro.systems.helix import HelixSystem

from conftest import OptedOutOperator, UnpicklableOperator
from repro.workloads import WORKLOADS
from repro.workloads.iterations import build_iteration_plan

#: Iterations sampled per workload: enough to hit DPR/LI/PPR modifications
#: (model swaps, extractor toggles, metric changes) that build new operators.
N_ITERATIONS = 4


def _iterated_dags(workload, n_iterations: int = N_ITERATIONS, seed: int = 7):
    """Yield the compiled DAG of every lifecycle iteration of ``workload``."""
    plan = build_iteration_plan(workload.domain, n_iterations, seed=seed)
    rng = np.random.default_rng(seed + 1)
    config = workload.initial_config(scale=0.25, seed=seed)
    for spec in plan:
        config = workload.apply_iteration(config, spec, rng)
        yield workload.build(config).compile().sliced_to_outputs()


class TestWorkloadPicklability:
    @pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
    def test_every_operator_round_trips_with_signature_intact(self, workload_name):
        workload = WORKLOADS[workload_name]
        checked = 0
        for dag in _iterated_dags(workload):
            for name in dag.node_names:
                operator = dag.node(name).operator
                signature = operator.config_signature()
                ensure_process_safe(operator, node_name=name)
                clone = deserialize(serialize(operator))
                assert clone.config_signature() == signature, (
                    f"{workload_name}:{name} changed signature across pickling"
                )
                checked += 1
        assert checked > 0

    @pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
    def test_every_operator_declares_process_support(self, workload_name):
        workload = WORKLOADS[workload_name]
        for dag in _iterated_dags(workload, n_iterations=1):
            for name in dag.node_names:
                assert dag.node(name).operator.supports_processes


class TestEnsureProcessSafe:
    def test_rejects_non_picklable_naming_node(self):
        with pytest.raises(ExecutionError, match="my_node.*UnpicklableOperator.*not picklable"):
            ensure_process_safe(UnpicklableOperator(), node_name="my_node")

    def test_rejects_non_picklable_without_node_name(self):
        with pytest.raises(ExecutionError, match="UnpicklableOperator.*not picklable"):
            ensure_process_safe(UnpicklableOperator())

    def test_rejects_opt_out_flag(self):
        with pytest.raises(ExecutionError, match="my_node.*supports_processes=False"):
            ensure_process_safe(OptedOutOperator(), node_name="my_node")

    def test_accepts_library_operators(self):
        from repro.workloads.synthetic import CpuBoundOperator, LatencyOperator

        ensure_process_safe(LatencyOperator(offset=1.0), node_name="latency")
        ensure_process_safe(CpuBoundOperator(spin=10), node_name="cpu")


class TestWorkerPayloadFailures:
    def test_worker_rejects_garbage_payload_with_operator_error(self):
        """Payload deserialization failures in a worker surface as the same
        typed, picklable OperatorError as any other operator failure."""
        from repro.exceptions import OperatorError
        from repro.execution.executors import run_serialized_task

        with pytest.raises(OperatorError, match="could not deserialize"):
            run_serialized_task(b"not a pickle")


class TestSharedExecutorInstance:
    def test_process_pool_survives_across_lifecycle_iterations(self):
        """A user-supplied executor instance amortizes pool startup: the
        per-iteration engines drain it (finish_run) instead of destroying it,
        and the caller owns the final shutdown."""
        from repro.execution.executors import ProcessExecutor

        executor = ProcessExecutor(max_workers=2)
        try:
            system = HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0)
            system.configure_executor(executor)
            assert system.engine == "process"
            result = run_lifecycle(system, "census", n_iterations=2, scale=0.25)
            assert len(result.iterations) == 2
            assert executor._pool is not None  # survived both iterations
        finally:
            executor.shutdown()
        assert executor._pool is None


class TestProcessLifecycleEquivalence:
    def test_census_lifecycle_on_process_executor_matches_inline(self):
        reference = run_lifecycle(
            HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0),
            "census",
            n_iterations=2,
            scale=0.25,
        )
        candidate_system = HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0)
        candidate = run_lifecycle(
            candidate_system,
            "census",
            n_iterations=2,
            scale=0.25,
            executor="process",
            max_workers=2,
        )
        assert candidate_system.executor_name == "process"
        assert len(reference.iterations) == len(candidate.iterations)
        for inline_stats, process_stats in zip(reference.iterations, candidate.iterations):
            # Canonical serialization makes exact artifact sizes — and the
            # storage_bytes statistic — bit-identical across the process
            # boundary, so the comparison includes them with exact equality
            # (repro/execution/equivalence.py).  Charged times are derived
            # from measured size estimates and stay approximate.
            assert_equivalent_runs(inline_stats, process_stats, include_times=False)
            assert process_stats.storage_bytes == inline_stats.storage_bytes
            assert process_stats.node_times == pytest.approx(
                inline_stats.node_times, rel=1e-3
            )
            assert process_stats.materialization_time == pytest.approx(
                inline_stats.materialization_time, rel=1e-3
            )
