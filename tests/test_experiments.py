"""Tests for the experiment harness: runner, figure drivers, tables, reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import figure5, figure6, figure8, figure9, figure10, speedup
from repro.experiments.report import (
    format_breakdown_table,
    format_fraction_table,
    format_memory_table,
    format_series_table,
)
from repro.experiments.runner import run_comparison, run_lifecycle
from repro.experiments.tables import format_table2, table2_rows
from repro.systems.deepdive import DeepDiveSystem
from repro.systems.helix import HelixSystem
from repro.systems.keystoneml import KeystoneMLSystem
from repro.workloads import get_workload


class TestRunner:
    def test_lifecycle_runs_requested_iterations(self):
        result = run_lifecycle(HelixSystem.opt(seed=0), "census", n_iterations=3, seed=7)
        assert result.num_iterations == 3
        assert len(result.cumulative_times()) == 3
        assert result.cumulative_times()[-1] == pytest.approx(result.total_time())
        assert len(result.iteration_types()) == 3

    def test_cumulative_times_are_non_decreasing(self):
        result = run_lifecycle(HelixSystem.opt(seed=0), "census", n_iterations=4, seed=7)
        cumulative = result.cumulative_times()
        assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))

    def test_series_accessors_have_one_entry_per_iteration(self):
        result = run_lifecycle(HelixSystem.opt(seed=0), "genomics", n_iterations=3, seed=7)
        assert len(result.storage_series()) == 3
        assert len(result.memory_series()) == 3
        assert len(result.state_fraction_series()) == 3
        assert len(result.component_breakdowns()) == 3

    def test_summary(self):
        result = run_lifecycle(HelixSystem.opt(seed=0), "census", n_iterations=2, seed=7)
        summary = result.summary()
        assert summary["system"] == "helix-opt"
        assert summary["workload"] == "census"
        assert summary["iterations"] == 2

    def test_comparison_skips_unsupported_systems(self):
        results = run_comparison(
            [HelixSystem.opt(seed=0), KeystoneMLSystem(seed=0), DeepDiveSystem(seed=0)],
            "genomics",
            n_iterations=2,
            seed=7,
        )
        assert "deepdive" not in results
        assert set(results) == {"helix-opt", "keystoneml"}

    def test_comparison_uses_identical_plan(self):
        results = run_comparison(
            [HelixSystem.opt(seed=0), KeystoneMLSystem(seed=0)], "census", n_iterations=3, seed=7
        )
        types = {name: result.iteration_types() for name, result in results.items()}
        assert types["helix-opt"] == types["keystoneml"]

    def test_speedup_helper(self):
        results = run_comparison(
            [HelixSystem.opt(seed=0), KeystoneMLSystem(seed=0)], "census", n_iterations=3, seed=7
        )
        assert speedup(results, "keystoneml") > 1.0
        assert np.isnan(speedup(results, "missing-system"))


class TestFigureDrivers:
    def test_figure5_series_structure(self):
        series = figure5("census", n_iterations=3, seed=7)
        assert "helix-opt" in series and "keystoneml" in series
        assert len(series["helix-opt"]["cumulative"]) == 3
        assert series["_speedups"]["vs_keystoneml"][0] > 1.0

    def test_figure6_breakdowns(self):
        breakdowns = figure6("census", n_iterations=3, seed=7)
        assert len(breakdowns) == 3
        assert all({"DPR", "L/I", "PPR", "Mat."} <= set(b) for b in breakdowns)

    def test_figure8_state_fractions(self):
        output = figure8(workloads=["census"], n_iterations=3, seed=7)
        series = output["census"]
        assert len(series["helix-opt"]) == 3
        for fractions in series["helix-opt"]:
            assert sum(fractions.values()) == pytest.approx(1.0)

    def test_figure9_policies(self):
        output = figure9("census", n_iterations=3, seed=7)
        assert {"helix-opt", "helix-am", "helix-nm"} <= set(output)
        assert output["helix-nm"]["storage"][-1] <= output["helix-am"]["storage"][-1]

    def test_figure10_memory(self):
        output = figure10(workloads=["census"], n_iterations=2, seed=7)
        assert len(output["census"]) == 2
        assert output["census"][0]["peak"] >= output["census"][0]["average"]


class TestTablesAndReports:
    def test_table2_rows(self):
        rows = table2_rows()
        assert rows["Num. Data Source"]["Census"] == "Single"
        assert rows["Supported by DeepDive"]["MNIST"] is False
        assert rows["Learning Task Type"]["Genomics"] == "Unsupervised"

    def test_format_table2_renders_all_workloads(self):
        text = format_table2()
        for name in ("Census", "Genomics", "IE", "MNIST"):
            assert name in text

    def test_format_series_table(self):
        text = format_series_table({"helix": [1.0, 2.0], "keystone": [3.0, 4.0]}, title="t")
        assert "helix" in text and "keystone" in text
        assert "3.0000" in text

    def test_format_breakdown_table(self):
        text = format_breakdown_table([{"DPR": 1.0, "L/I": 0.5, "PPR": 0.1, "Mat.": 0.0}])
        assert "DPR" in text and "0" in text

    def test_format_fraction_table(self):
        text = format_fraction_table([{"Sp": 0.5, "Sl": 0.25, "Sc": 0.25}])
        assert "Sp" in text and "0.50" in text

    def test_format_memory_table(self):
        text = format_memory_table([{"peak": 2048.0, "average": 1024.0}])
        assert "2.0" in text and "1.0" in text
