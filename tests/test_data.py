"""Unit tests for the core data model (records, feature vectors, collections)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.data import (
    DataCollection,
    ElementKind,
    Example,
    FeatureVector,
    Record,
    SemanticUnit,
    Split,
)


class TestRecord:
    def test_getitem_and_get(self):
        record = Record(fields={"age": 30, "name": "x"})
        assert record["age"] == 30
        assert record.get("missing", 5) == 5
        assert "name" in record

    def test_default_split_is_all(self):
        assert Record(fields={}).split is Split.ALL

    def test_with_fields_merges_and_preserves_split(self):
        record = Record(fields={"a": 1}, split=Split.TEST)
        updated = record.with_fields(b=2, a=3)
        assert updated["a"] == 3 and updated["b"] == 2
        assert updated.split is Split.TEST
        assert record["a"] == 1  # original untouched

    def test_keys(self):
        record = Record(fields={"a": 1, "b": 2})
        assert sorted(record.keys()) == ["a", "b"]


class TestFeatureVector:
    def test_scalar_and_one_hot(self):
        fv = FeatureVector.scalar("age", 31)
        assert fv.get("age") == 31.0
        hot = FeatureVector.one_hot("color", "red")
        assert hot.get("color=red") == 1.0

    def test_from_dense_names_features(self):
        fv = FeatureVector.from_dense([1.0, 2.0, 3.0], prefix="p")
        assert fv.get("p_1") == 2.0
        assert len(fv) == 3

    def test_concat_disjoint(self):
        merged = FeatureVector.scalar("a", 1).concat(FeatureVector.scalar("b", 2))
        assert merged.get("a") == 1.0 and merged.get("b") == 2.0

    def test_concat_conflict_raises(self):
        with pytest.raises(ValueError):
            FeatureVector.scalar("a", 1).concat(FeatureVector.scalar("a", 2))

    def test_concat_same_value_ok(self):
        merged = FeatureVector.scalar("a", 1).concat(FeatureVector.scalar("a", 1))
        assert merged.get("a") == 1.0

    def test_to_dense_respects_index(self):
        fv = FeatureVector({"x": 1.0, "y": 2.0})
        dense = fv.to_dense({"y": 0, "x": 1, "z": 2})
        assert dense.tolist() == [2.0, 1.0, 0.0]

    def test_equality(self):
        assert FeatureVector({"a": 1.0}) == FeatureVector({"a": 1.0})
        assert FeatureVector({"a": 1.0}) != FeatureVector({"a": 2.0})

    def test_norm(self):
        assert FeatureVector({"a": 3.0, "b": 4.0}).norm() == pytest.approx(5.0)

    @given(st.dictionaries(st.text(min_size=1, max_size=8), st.floats(-100, 100), max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_to_dense_round_trips_values(self, values):
        fv = FeatureVector(values)
        index = {name: i for i, name in enumerate(sorted(values))}
        dense = fv.to_dense(index)
        for name, position in index.items():
            assert dense[position] == pytest.approx(values[name])

    @given(
        st.dictionaries(st.text(min_size=1, max_size=5), st.floats(-10, 10), max_size=5),
        st.dictionaries(st.text(min_size=6, max_size=10), st.floats(-10, 10), max_size=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_concat_is_union_of_names(self, left, right):
        merged = FeatureVector(left).concat(FeatureVector(right))
        assert set(merged.names) == set(left) | set(right)


class TestSemanticUnitAndExample:
    def test_has_features(self):
        su = SemanticUnit(input=1, source="s", output=FeatureVector.scalar("x", 1))
        assert su.has_features
        assert not SemanticUnit(input=1, source="s", output="raw").has_features

    def test_example_with_prediction_copies(self):
        example = Example(features=FeatureVector.scalar("x", 1), label=1.0, split=Split.TEST)
        predicted = example.with_prediction(0.0, score=0.2)
        assert predicted.prediction == 0.0
        assert predicted.score == 0.2
        assert predicted.split is Split.TEST
        assert example.prediction is None


class TestDataCollection:
    def _examples(self):
        return [
            Example(features=FeatureVector.scalar("x", i), label=float(i % 2),
                    split=Split.TRAIN if i < 3 else Split.TEST)
            for i in range(5)
        ]

    def test_len_iter_getitem(self):
        dc = DataCollection("d", [1, 2, 3])
        assert len(dc) == 3
        assert list(dc) == [1, 2, 3]
        assert dc[1] == 2

    def test_train_test_selectors(self):
        dc = DataCollection("d", self._examples(), kind=ElementKind.EXAMPLE)
        assert len(dc.train()) == 3
        assert len(dc.test()) == 2

    def test_untagged_elements_appear_in_both(self):
        dc = DataCollection("d", [Example(features=FeatureVector.scalar("x", 1))])
        assert len(dc.train()) == 1
        assert len(dc.test()) == 1

    def test_map_and_flat_map(self):
        dc = DataCollection("d", [1, 2, 3])
        assert list(dc.map(lambda x: x * 2)) == [2, 4, 6]
        assert list(dc.flat_map(lambda x: [x] * x)) == [1, 2, 2, 3, 3, 3]

    def test_filter(self):
        dc = DataCollection("d", [1, 2, 3, 4])
        assert list(dc.filter(lambda x: x % 2 == 0)) == [2, 4]

    def test_feature_index_is_sorted_and_stable(self):
        dc = DataCollection("d", self._examples(), kind=ElementKind.EXAMPLE)
        index = dc.feature_index()
        assert list(index.values()) == list(range(len(index)))
        assert list(index.keys()) == sorted(index.keys())

    def test_to_matrix_shapes_and_labels(self):
        dc = DataCollection("d", self._examples(), kind=ElementKind.EXAMPLE)
        X, y, index = dc.to_matrix()
        assert X.shape == (5, len(index))
        assert y.shape == (5,)
        assert y[0] == 0.0 and y[1] == 1.0

    def test_to_matrix_requires_examples(self):
        dc = DataCollection("d", [1, 2, 3])
        with pytest.raises(TypeError):
            dc.to_matrix()

    def test_to_matrix_empty(self):
        X, y, index = DataCollection("d", []).to_matrix({})
        assert X.shape == (0, 0)
        assert y.shape == (0,)

    def test_estimated_size_grows_with_elements(self):
        small = DataCollection("d", self._examples()[:1])
        large = DataCollection("d", self._examples())
        assert large.estimated_size_bytes() > small.estimated_size_bytes()

    def test_estimated_size_counts_numpy_fields(self):
        records = [Record(fields={"pixels": np.zeros(1000)})]
        dc = DataCollection("d", records)
        assert dc.estimated_size_bytes() > 8000
