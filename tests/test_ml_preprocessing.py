"""Unit tests for preprocessing transforms, metrics, model selection and text utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy,
    cluster_sizes,
    confusion_matrix,
    f1_score,
    log_loss,
    mean_squared_error,
    precision,
    recall,
    silhouette_score,
)
from repro.ml.model_selection import GridSearch, KFold, cross_val_score, train_test_split
from repro.ml.linear import LogisticRegression
from repro.ml.preprocessing import (
    HashingVectorizer,
    MinMaxScaler,
    OneHotIndexer,
    QuantileDiscretizer,
    RandomFourierFeatures,
    StandardScaler,
)
from repro.ml.text import STOP_WORDS, ngrams, pos_tag, remove_stop_words, split_sentences, tokenize


class TestScalers:
    def test_standard_scaler_zero_mean_unit_variance(self):
        X = np.random.default_rng(0).normal(loc=5, scale=3, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1, atol=1e-9)

    def test_standard_scaler_constant_column_safe(self):
        X = np.ones((10, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.isfinite(Z).all()

    def test_standard_scaler_unfitted_raises(self):
        with pytest.raises(ValueError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_minmax_scaler_range(self):
        X = np.random.default_rng(1).normal(size=(50, 3)) * 10
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() >= 0.0 and Z.max() <= 1.0

    def test_minmax_constant_column_safe(self):
        Z = MinMaxScaler().fit_transform(np.full((5, 1), 7.0))
        assert np.isfinite(Z).all()


class TestDiscretizerAndEncoders:
    def test_quantile_discretizer_balanced_buckets(self):
        values = np.arange(1000, dtype=float)
        buckets = QuantileDiscretizer(bins=4).fit_transform(values)
        counts = np.bincount(buckets)
        assert len(counts) == 4
        assert counts.max() - counts.min() <= 2

    def test_quantile_discretizer_empty(self):
        discretizer = QuantileDiscretizer(bins=3).fit(np.array([]))
        assert discretizer.transform(np.array([1.0])).tolist() == [0]

    def test_quantile_discretizer_invalid_bins(self):
        with pytest.raises(ValueError):
            QuantileDiscretizer(bins=0)

    def test_one_hot_indexer(self):
        indexer = OneHotIndexer().fit(["red", "blue", "red"])
        assert indexer.dimension == 2
        transformed = indexer.transform(["red", "blue", "green"])
        assert transformed.shape == (3, 2)
        assert transformed[2].sum() == 0  # unknown ignored

    def test_one_hot_indexer_error_mode(self):
        indexer = OneHotIndexer(handle_unknown="error").fit(["a"])
        with pytest.raises(ValueError):
            indexer.transform(["b"])

    def test_hashing_vectorizer_deterministic(self):
        vectorizer = HashingVectorizer(n_features=16, seed=1)
        a = vectorizer.transform([["x", "y", "x"]])
        b = vectorizer.transform([["x", "y", "x"]])
        assert np.array_equal(a, b)
        assert a.sum() == 3

    def test_hashing_vectorizer_invalid(self):
        with pytest.raises(ValueError):
            HashingVectorizer(n_features=0)

    def test_random_fourier_features_shape_and_seed(self):
        X = np.random.default_rng(0).normal(size=(20, 5))
        a = RandomFourierFeatures(n_components=8, seed=1).fit_transform(X)
        b = RandomFourierFeatures(n_components=8, seed=1).fit_transform(X)
        c = RandomFourierFeatures(n_components=8, seed=2).fit_transform(X)
        assert a.shape == (20, 8)
        assert np.allclose(a, b)
        assert not np.allclose(a, c)

    def test_random_fourier_unfitted_raises(self):
        with pytest.raises(ValueError):
            RandomFourierFeatures().transform(np.zeros((1, 2)))


class TestMetrics:
    def test_accuracy_and_confusion(self):
        y_true = [1, 0, 1, 1]
        y_pred = [1, 0, 0, 1]
        assert accuracy(y_true, y_pred) == 0.75
        cm = confusion_matrix(y_true, y_pred)
        assert cm == {"tp": 2, "fp": 0, "tn": 1, "fn": 1}

    def test_precision_recall_f1(self):
        y_true = [1, 1, 0, 0]
        y_pred = [1, 0, 1, 0]
        assert precision(y_true, y_pred) == 0.5
        assert recall(y_true, y_pred) == 0.5
        assert f1_score(y_true, y_pred) == 0.5

    def test_degenerate_precision_recall(self):
        assert precision([0, 0], [0, 0]) == 0.0
        assert recall([0, 0], [0, 0]) == 0.0
        assert f1_score([0, 0], [0, 0]) == 0.0

    def test_empty_inputs(self):
        assert accuracy([], []) == 0.0
        assert mean_squared_error([], []) == 0.0
        assert log_loss([], []) == 0.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            accuracy([1], [1, 0])

    def test_log_loss_penalizes_confident_mistakes(self):
        confident_wrong = log_loss([1, 1], [0.01, 0.01])
        confident_right = log_loss([1, 1], [0.99, 0.99])
        assert confident_wrong > confident_right

    def test_mean_squared_error(self):
        assert mean_squared_error([1, 2], [1, 4]) == pytest.approx(2.0)

    def test_cluster_sizes(self):
        assert cluster_sizes([0, 0, 1, 2, 2, 2]) == {0: 2, 1: 1, 2: 3}

    def test_silhouette_separated_better_than_random(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 0.2, size=(20, 2)), rng.normal(5, 0.2, size=(20, 2))])
        good = [0] * 20 + [1] * 20
        bad = list(rng.integers(0, 2, size=40))
        assert silhouette_score(X, good) > silhouette_score(X, bad)

    def test_silhouette_degenerate(self):
        assert silhouette_score(np.zeros((3, 2)), [0, 0, 0]) == 0.0
        assert silhouette_score(np.zeros((1, 2)), [0]) == 0.0


class TestModelSelection:
    def _data(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(80, 2))
        y = (X[:, 0] > 0).astype(float)
        return X, y

    def test_train_test_split_sizes(self):
        X, y = self._data()
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_fraction=0.25, seed=1)
        assert len(X_test) == 20 and len(X_train) == 60
        assert len(y_test) == 20

    def test_train_test_split_without_labels(self):
        X, _ = self._data()
        X_train, X_test, y_train, y_test = train_test_split(X, test_fraction=0.5)
        assert y_train is None and y_test is None

    def test_train_test_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), test_fraction=1.5)

    def test_kfold_covers_all_indices(self):
        folds = list(KFold(n_splits=4, seed=0).split(20))
        assert len(folds) == 4
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(20))

    def test_kfold_validation(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))

    def test_cross_val_score_reasonable(self):
        X, y = self._data()
        scores = cross_val_score(LogisticRegression, X, y, n_splits=4)
        assert len(scores) == 4
        assert np.mean(scores) > 0.8

    def test_grid_search_picks_better_regularization(self):
        X, y = self._data()
        search = GridSearch(LogisticRegression, {"reg_param": [0.01, 100.0]}, n_splits=3)
        result = search.fit(X, y)
        assert result.best_params["reg_param"] == 0.01
        assert len(result.results) == 2
        assert result.best_score >= max(score for _p, score in result.results) - 1e-12

    def test_grid_search_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            GridSearch(LogisticRegression, {})


class TestText:
    def test_tokenize_lowercases_and_splits(self):
        assert tokenize("Alice married Bob.") == ["alice", "married", "bob"]
        assert tokenize("Alice married Bob.", lowercase=False)[0] == "Alice"

    def test_split_sentences(self):
        sentences = split_sentences("First one. Second one! Third?")
        assert len(sentences) == 3

    def test_ngrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    def test_remove_stop_words(self):
        assert remove_stop_words(["the", "gene", "and", "protein"]) == ["gene", "protein"]
        assert "the" in STOP_WORDS

    def test_pos_tag_rules(self):
        tags = dict(pos_tag(["The", "Alice", "married", "quickly", "42", "of", "and", "it", "dog"]))
        assert tags["The"] == "DT"
        assert tags["Alice"] == "NNP"
        assert tags["married"] == "VB"
        assert tags["quickly"] == "RB"
        assert tags["42"] == "CD"
        assert tags["of"] == "IN"
        assert tags["and"] == "CC"
        assert tags["it"] == "PRP"
        assert tags["dog"] == "NN"
