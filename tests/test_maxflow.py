"""Unit and property tests for the Edmonds–Karp max-flow / min-cut solver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer.maxflow import INFINITY, FlowNetwork


def _classic_network() -> FlowNetwork:
    """The standard CLRS example network with max flow 23."""
    network = FlowNetwork()
    edges = [
        ("s", "v1", 16), ("s", "v2", 13), ("v1", "v3", 12), ("v2", "v1", 4),
        ("v2", "v4", 14), ("v3", "v2", 9), ("v3", "t", 20), ("v4", "v3", 7),
        ("v4", "t", 4),
    ]
    for u, v, c in edges:
        network.add_edge(u, v, c)
    return network


class TestMaxFlow:
    def test_classic_example(self):
        flow, _ = _classic_network().max_flow("s", "t")
        assert flow == pytest.approx(23.0)

    def test_min_cut_value_equals_max_flow(self):
        network = _classic_network()
        flow, _ = network.max_flow("s", "t")
        cut, source_side, sink_side = network.min_cut("s", "t")
        assert cut == pytest.approx(flow)
        assert "s" in source_side and "t" in sink_side
        assert source_side.isdisjoint(sink_side)
        assert source_side | sink_side == network.nodes

    def test_single_edge(self):
        network = FlowNetwork()
        network.add_edge("s", "t", 5)
        flow, _ = network.max_flow("s", "t")
        assert flow == 5

    def test_disconnected_graph_has_zero_flow(self):
        network = FlowNetwork()
        network.add_node("s")
        network.add_node("t")
        network.add_edge("s", "a", 10)
        flow, _ = network.max_flow("s", "t")
        assert flow == 0

    def test_parallel_edges_accumulate(self):
        network = FlowNetwork()
        network.add_edge("s", "t", 2)
        network.add_edge("s", "t", 3)
        flow, _ = network.max_flow("s", "t")
        assert flow == 5

    def test_infinite_path_rejected(self):
        network = FlowNetwork()
        network.add_edge("s", "t", INFINITY)
        with pytest.raises(ValueError):
            network.max_flow("s", "t")

    def test_infinite_edge_off_path_is_fine(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 3)
        network.add_edge("a", "t", 2)
        network.add_edge("b", "a", INFINITY)  # not on any s-t path
        flow, _ = network.max_flow("s", "t")
        assert flow == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork().add_edge("a", "b", -1)

    def test_self_loop_ignored(self):
        network = FlowNetwork()
        network.add_edge("s", "s", 10)
        network.add_edge("s", "t", 1)
        flow, _ = network.max_flow("s", "t")
        assert flow == 1

    def test_same_source_and_sink_rejected(self):
        network = FlowNetwork()
        network.add_edge("s", "t", 1)
        with pytest.raises(ValueError):
            network.max_flow("s", "s")

    def test_unknown_nodes_rejected(self):
        network = FlowNetwork()
        network.add_edge("s", "t", 1)
        with pytest.raises(ValueError):
            network.max_flow("s", "zzz")


@st.composite
def random_networks(draw):
    """Small random layered networks for comparison with networkx."""
    n_mid = draw(st.integers(1, 5))
    edges = []
    for i in range(n_mid):
        if draw(st.booleans()):
            edges.append(("s", f"m{i}", draw(st.integers(1, 20))))
        if draw(st.booleans()):
            edges.append((f"m{i}", "t", draw(st.integers(1, 20))))
        for j in range(i + 1, n_mid):
            if draw(st.booleans()):
                edges.append((f"m{i}", f"m{j}", draw(st.integers(1, 20))))
    edges.append(("s", "m0", draw(st.integers(1, 20))))
    edges.append((f"m{n_mid - 1}", "t", draw(st.integers(1, 20))))
    return edges


class TestAgainstNetworkx:
    @given(random_networks())
    @settings(max_examples=60, deadline=None)
    def test_max_flow_matches_networkx(self, edges):
        networkx = pytest.importorskip("networkx")
        ours = FlowNetwork()
        theirs = networkx.DiGraph()
        for u, v, c in edges:
            ours.add_edge(u, v, c)
        # networkx sums parallel edges only if we accumulate explicitly.
        for u, v, c in edges:
            if theirs.has_edge(u, v):
                theirs[u][v]["capacity"] += c
            else:
                theirs.add_edge(u, v, capacity=c)
        ours_value, _ = ours.max_flow("s", "t")
        theirs_value = networkx.maximum_flow_value(theirs, "s", "t")
        assert ours_value == pytest.approx(theirs_value)
