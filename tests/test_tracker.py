"""Unit tests for run statistics and the memory tracker."""

from __future__ import annotations

import pytest

from repro.execution.tracker import MemoryTracker, RunStats
from repro.optimizer.oep import NodeState


class TestMemoryTracker:
    def test_empty_tracker(self):
        tracker = MemoryTracker()
        assert tracker.peak_bytes == 0
        assert tracker.average_bytes == 0.0
        assert tracker.snapshots == []

    def test_peak_and_average(self):
        tracker = MemoryTracker()
        for value in (100, 300, 200):
            tracker.snapshot(value)
        assert tracker.peak_bytes == 300
        assert tracker.average_bytes == pytest.approx(200.0)


class TestRunStats:
    def _stats(self):
        stats = RunStats(iteration=3, workflow_name="census")
        stats.node_states = {"a": NodeState.COMPUTE, "b": NodeState.LOAD, "c": NodeState.PRUNE}
        stats.node_times = {"a": 2.0, "b": 0.5}
        stats.component_times = {"DPR": 1.5, "L/I": 1.0}
        stats.materialization_time = 0.25
        stats.materialized_nodes = ["a"]
        stats.storage_bytes = 1000
        stats.peak_memory_bytes = 2048
        stats.average_memory_bytes = 1024.0
        return stats

    def test_execution_and_total_time(self):
        stats = self._stats()
        assert stats.execution_time == pytest.approx(2.5)
        assert stats.total_time == pytest.approx(2.75)

    def test_component_breakdown_includes_materialization(self):
        breakdown = self._stats().component_breakdown()
        assert breakdown["DPR"] == 1.5
        assert breakdown["Mat."] == 0.25
        assert breakdown["PPR"] == 0.0

    def test_state_fractions(self):
        fractions = self._stats().state_fractions()
        assert fractions["Sc"] == pytest.approx(1 / 3)
        assert fractions["Sl"] == pytest.approx(1 / 3)
        assert fractions["Sp"] == pytest.approx(1 / 3)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_state_fractions_empty(self):
        assert RunStats(iteration=0).state_fractions()["Sc"] == 0.0

    def test_nodes_in_state(self):
        stats = self._stats()
        assert stats.nodes_in_state(NodeState.COMPUTE) == ["a"]
        assert stats.nodes_in_state(NodeState.PRUNE) == ["c"]

    def test_summary_fields(self):
        summary = self._stats().summary()
        assert summary["iteration"] == 3
        assert summary["workflow"] == "census"
        assert summary["num_computed"] == 1
        assert summary["num_loaded"] == 1
        assert summary["num_pruned"] == 1
        assert summary["num_materialized"] == 1
        assert summary["total_time"] == pytest.approx(2.75)
