"""End-to-end execution tests: each workload runs and produces sensible ML results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.systems.helix import HelixSystem
from repro.workloads import get_workload
from repro.workloads.census import CensusConfig
from repro.workloads.genomics import GenomicsConfig
from repro.workloads.mnist import MnistConfig
from repro.workloads.nlp_ie import IEConfig


def _run_once(workload_name, config):
    workload = get_workload(workload_name)
    system = HelixSystem.opt(seed=0)
    stats = system.run_iteration(workload.build(config), iteration=0)
    return stats


class TestCensusExecution:
    def test_produces_accurate_classifier(self):
        stats = _run_once("census", CensusConfig(n_train=400, n_test=150))
        checked = stats.outputs["checked"]
        assert checked["n"] > 0
        assert checked["accuracy"] > 0.65  # well above the ~50% base rate

    def test_f1_metric_variant(self):
        stats = _run_once("census", CensusConfig(n_train=300, n_test=100, ppr_metric="f1"))
        assert "f1" in stats.outputs["checked"]

    def test_naive_bayes_variant_runs(self):
        stats = _run_once("census", CensusConfig(n_train=300, n_test=100, model_type="nb"))
        assert stats.outputs["checked"]["accuracy"] > 0.5


class TestGenomicsExecution:
    def test_cluster_report_sizes(self):
        stats = _run_once("genomics", GenomicsConfig(n_articles=60))
        report = stats.outputs["cluster_report"]
        assert report["n_genes"] > 0
        assert sum(report["cluster_sizes"].values()) == report["n_genes"]

    def test_clustering_recovers_planted_groups(self):
        """Genes planted in the same functional group should mostly share a cluster."""
        workload = get_workload("genomics")
        config = GenomicsConfig(n_articles=120, n_genes=20, n_groups=4, n_clusters=4)
        system = HelixSystem.opt(seed=0)
        dag = workload.build(config).compile().sliced_to_outputs()
        # Run and pull the cluster assignments out of the clusters node by
        # re-running its operator chain through the engine outputs.
        stats = system.run_iteration(workload.build(config), iteration=0)
        assert stats.outputs["cluster_report"]["n_genes"] >= 10

    def test_silhouette_metric_variant(self):
        stats = _run_once("genomics", GenomicsConfig(n_articles=60, ppr_metric="silhouette"))
        assert "silhouette" in stats.outputs["cluster_report"]


class TestIEExecution:
    def test_extraction_quality_report(self):
        stats = _run_once("nlp", IEConfig(n_articles=120))
        report = stats.outputs["extraction_quality"]
        assert report["n"] > 0
        assert 0.0 <= report["f1"] <= 1.0

    def test_distant_supervision_beats_random(self):
        stats = _run_once("nlp", IEConfig(n_articles=200, reg_param=0.01))
        report = stats.outputs["extraction_quality"]
        # The planted spouse sentences are highly regular, so precision should be solid.
        assert report["precision"] > 0.5


class TestMnistExecution:
    def test_digit_classifier_above_chance(self):
        stats = _run_once("mnist", MnistConfig(n_train=300, n_test=100))
        report = stats.outputs["digit_accuracy"]
        assert report["n"] > 0
        assert report["accuracy"] > 0.7

    def test_confusion_metric_variant(self):
        stats = _run_once("mnist", MnistConfig(n_train=200, n_test=80, ppr_metric="confusion"))
        report = stats.outputs["digit_accuracy"]
        assert {"tp", "fp", "tn", "fn"} <= set(report)
