"""Unit tests for the materialization stores, catalog and serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ArtifactNotFoundError, BudgetExceededError, StorageError
from repro.storage.catalog import ArtifactRecord, Catalog
from repro.storage.serialization import (
    deserialize,
    estimate_size_bytes,
    serialize,
    serialized_size,
)
from repro.storage.store import DiskStore, InMemoryStore


class TestSerialization:
    def test_round_trip(self):
        value = {"a": [1, 2, 3], "b": np.arange(4)}
        restored = deserialize(serialize(value))
        assert restored["a"] == [1, 2, 3]
        assert np.array_equal(restored["b"], np.arange(4))

    def test_serialized_size_positive(self):
        assert serialized_size([1, 2, 3]) > 0

    def test_estimate_uses_object_hook(self):
        class Sized:
            def estimated_size_bytes(self):
                return 12345

        assert estimate_size_bytes(Sized()) == 12345

    def test_estimate_numpy(self):
        assert estimate_size_bytes(np.zeros(1000)) >= 8000

    def test_estimate_scalars_and_strings(self):
        assert estimate_size_bytes(1) == 32
        assert estimate_size_bytes("hello") == 49 + 5
        assert estimate_size_bytes(None) == 32

    def test_estimate_containers(self):
        assert estimate_size_bytes([1, 2, 3]) > 3 * 32
        assert estimate_size_bytes({"a": 1}) > 32


class TestCatalog:
    def _record(self, signature="sig", node="n", size=10, iteration=0):
        return ArtifactRecord(signature=signature, node_name=node, size_bytes=size, iteration=iteration)

    def test_add_get_remove(self):
        catalog = Catalog()
        catalog.add(self._record())
        assert "sig" in catalog
        assert catalog.get("sig").node_name == "n"
        catalog.remove("sig")
        assert "sig" not in catalog

    def test_total_bytes_and_by_node(self):
        catalog = Catalog()
        catalog.add(self._record("s1", "a", 10))
        catalog.add(self._record("s2", "a", 20))
        catalog.add(self._record("s3", "b", 5))
        assert catalog.total_bytes() == 35
        assert len(catalog.by_node("a")) == 2

    def test_stale_signatures(self):
        catalog = Catalog()
        catalog.add(self._record("old", "a"))
        catalog.add(self._record("new", "a"))
        assert catalog.stale_signatures("a", "new") == ["old"]

    def test_persistence(self, tmp_path):
        path = tmp_path / "catalog.json"
        catalog = Catalog(path=path)
        catalog.add(self._record())
        catalog.save()
        reloaded = Catalog(path=path)
        assert "sig" in reloaded
        assert reloaded.get("sig").size_bytes == 10

    def test_record_round_trip(self):
        record = self._record()
        assert ArtifactRecord.from_dict(record.to_dict()) == record


class TestInMemoryStore:
    def test_put_load_round_trip(self):
        store = InMemoryStore()
        artifact = store.put("node", "sig", {"value": 42})
        assert artifact.record.size_bytes > 0
        assert artifact.write_time > 0
        value, load_time = store.load("sig")
        assert value == {"value": 42}
        assert load_time > 0

    def test_put_is_idempotent(self):
        store = InMemoryStore()
        store.put("node", "sig", [1, 2, 3])
        second = store.put("node", "sig", [1, 2, 3])
        assert second.write_time == 0.0
        assert len(store.artifacts()) == 1

    def test_missing_artifact_raises(self):
        with pytest.raises(ArtifactNotFoundError):
            InMemoryStore().load("nope")

    def test_budget_enforced(self):
        store = InMemoryStore(budget_bytes=64)
        with pytest.raises(BudgetExceededError):
            store.put("node", "sig", list(range(1000)))
        assert store.total_bytes() == 0

    def test_remaining_budget(self):
        store = InMemoryStore(budget_bytes=10_000)
        assert store.remaining_budget() == 10_000
        store.put("node", "sig", [1])
        assert store.remaining_budget() < 10_000
        assert InMemoryStore().remaining_budget() is None

    def test_negative_budget_rejected(self):
        with pytest.raises(StorageError):
            InMemoryStore(budget_bytes=-1)

    def test_delete_and_clear(self):
        store = InMemoryStore()
        store.put("node", "sig", 1)
        store.delete("sig")
        assert not store.has("sig")
        store.put("n1", "s1", 1)
        store.put("n2", "s2", 2)
        store.clear()
        assert store.total_bytes() == 0

    def test_purge_node_keeps_current_signature(self):
        store = InMemoryStore()
        store.put("node", "old_sig", 1)
        store.put("node", "new_sig", 2)
        store.put("other", "other_sig", 3)
        removed = store.purge_node("node", keep_signature="new_sig")
        assert removed == ["old_sig"]
        assert store.has("new_sig") and store.has("other_sig")

    def test_modelled_io_time_scales_with_size(self):
        store = InMemoryStore(disk_bandwidth=1e6)
        small = store.put("a", "s_small", list(range(10)))
        large = store.put("b", "s_large", list(range(10_000)))
        assert large.write_time > small.write_time

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(StorageError):
            InMemoryStore(disk_bandwidth=0)


class TestDiskStore:
    def test_put_load_round_trip(self, tmp_path):
        store = DiskStore(tmp_path / "artifacts")
        store.put("node", "sig", {"x": np.arange(10)})
        value, load_time = store.load("sig")
        assert np.array_equal(value["x"], np.arange(10))
        assert load_time >= 0

    def test_files_created_and_removed(self, tmp_path):
        root = tmp_path / "artifacts"
        store = DiskStore(root)
        store.put("node", "sig", [1, 2, 3])
        assert any(root.iterdir())
        store.delete("sig")
        assert not any(root.iterdir())

    def test_missing_file_raises(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("node", "sig", 1)
        for path in tmp_path.glob("*.pkl"):
            path.unlink()
        with pytest.raises(ArtifactNotFoundError):
            store.load("sig")

    def test_budget_enforced(self, tmp_path):
        store = DiskStore(tmp_path, budget_bytes=16)
        with pytest.raises(BudgetExceededError):
            store.put("node", "sig", list(range(1000)))
        assert not any(tmp_path.glob("*.pkl"))
