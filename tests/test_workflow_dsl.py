"""Unit tests for the Workflow builder (the HML-equivalent DSL)."""

from __future__ import annotations

import pytest

from repro.core.data import FeatureVector
from repro.core.operators import (
    Component,
    CSVScanner,
    DataSource,
    ExampleSynthesizer,
    FieldExtractor,
    FunctionExtractor,
    JoinSynthesizer,
    Learner,
    Reducer,
)
from repro.core.workflow import Workflow
from repro.exceptions import WorkflowSpecError
from repro.ml.linear import LogisticRegression


def _source():
    return DataSource(generator=lambda context: ([{"a": 1, "target": 0}], []))


def build_basic_workflow() -> Workflow:
    wf = Workflow("basic")
    wf.data_source("data", _source())
    wf.scan("rows", "data", CSVScanner(["a", "target"]))
    wf.extractor("aExt", "rows", FieldExtractor("a"))
    wf.extractor("target", "rows", FieldExtractor("target", as_categorical=False))
    wf.examples("examples", "rows", extractors=["aExt"], label="target")
    wf.learner("predictions", "examples", Learner(LogisticRegression))
    wf.reducer("checked", "predictions", Reducer(lambda c: len(c)), uses=["target"])
    wf.output("checked")
    return wf


class TestDeclarations:
    def test_duplicate_name_rejected(self):
        wf = Workflow()
        wf.data_source("data", _source())
        with pytest.raises(WorkflowSpecError):
            wf.data_source("data", _source())

    def test_empty_name_rejected(self):
        with pytest.raises(WorkflowSpecError):
            Workflow().data_source("", _source())

    def test_unknown_parent_rejected(self):
        wf = Workflow()
        with pytest.raises(WorkflowSpecError):
            wf.scan("rows", "missing", CSVScanner(["a"]))

    def test_data_source_type_checked(self):
        with pytest.raises(WorkflowSpecError):
            Workflow().data_source("d", CSVScanner(["a"]))  # type: ignore[arg-type]

    def test_scan_type_checked(self):
        wf = Workflow()
        wf.data_source("d", _source())
        with pytest.raises(WorkflowSpecError):
            wf.scan("rows", "d", FieldExtractor("a"))  # type: ignore[arg-type]

    def test_learner_type_checked(self):
        wf = Workflow()
        wf.data_source("d", _source())
        with pytest.raises(WorkflowSpecError):
            wf.learner("m", "d", FieldExtractor("a"))  # type: ignore[arg-type]

    def test_contains_and_declared_names(self):
        wf = build_basic_workflow()
        assert "rows" in wf
        assert wf.declared_names[0] == "data"


class TestLinking:
    def test_has_extractors_overrides_attachment(self):
        wf = Workflow()
        wf.data_source("data", _source())
        wf.scan("rows", "data", CSVScanner(["a"]))
        wf.extractor("e1", "rows", FieldExtractor("a"))
        wf.extractor("e2", "rows", FieldExtractor("a"))
        assert wf.attached_extractors("rows") == ["e1", "e2"]
        wf.has_extractors("rows", ["e2"])
        assert wf.attached_extractors("rows") == ["e2"]

    def test_has_extractors_validates_names(self):
        wf = Workflow()
        wf.data_source("data", _source())
        wf.scan("rows", "data", CSVScanner(["a"]))
        with pytest.raises(WorkflowSpecError):
            wf.has_extractors("rows", ["ghost"])
        with pytest.raises(WorkflowSpecError):
            wf.has_extractors("ghost", [])

    def test_examples_appends_label_extractor(self):
        wf = Workflow()
        wf.data_source("data", _source())
        wf.scan("rows", "data", CSVScanner(["a", "target"]))
        wf.extractor("aExt", "rows", FieldExtractor("a"))
        wf.extractor("target", "rows", FieldExtractor("target"))
        wf.examples("examples", "rows", extractors=["aExt"], label="target")
        dag = wf.compile()
        assert set(dag.parents("examples")) == {"rows", "aExt", "target"}

    def test_examples_unknown_label_rejected(self):
        wf = Workflow()
        wf.data_source("data", _source())
        wf.scan("rows", "data", CSVScanner(["a"]))
        with pytest.raises(WorkflowSpecError):
            wf.examples("examples", "rows", label="ghost")

    def test_uses_adds_parent_edges(self):
        wf = build_basic_workflow()
        wf.uses("checked", ["aExt"])
        dag = wf.compile()
        assert "aExt" in dag.parents("checked")

    def test_uses_unknown_dependency_rejected(self):
        wf = build_basic_workflow()
        with pytest.raises(WorkflowSpecError):
            wf.uses("checked", ["ghost"])
        with pytest.raises(WorkflowSpecError):
            wf.uses("ghost", ["rows"])

    def test_reducer_uses_merges_parents(self):
        wf = build_basic_workflow()
        dag = wf.compile()
        assert dag.parents("checked") == ("predictions", "target")

    def test_output_marks_nodes(self):
        wf = build_basic_workflow()
        dag = wf.compile()
        assert dag.outputs == ("checked",)

    def test_output_unknown_rejected(self):
        with pytest.raises(WorkflowSpecError):
            build_basic_workflow().output("ghost")

    def test_synthesize_generic_join(self):
        wf = Workflow()
        wf.data_source("left", _source())
        wf.data_source("right", _source())
        wf.synthesize("joined", ["left", "right"], JoinSynthesizer("a", "a"))
        dag = wf.compile()
        assert dag.parents("joined") == ("left", "right")

    def test_synthesize_type_checked(self):
        wf = Workflow()
        wf.data_source("left", _source())
        with pytest.raises(WorkflowSpecError):
            wf.synthesize("joined", ["left"], FieldExtractor("a"))  # type: ignore[arg-type]


class TestCompilation:
    def test_empty_workflow_rejected(self):
        with pytest.raises(WorkflowSpecError):
            Workflow().compile()

    def test_components_assigned(self):
        dag = build_basic_workflow().compile()
        assert dag.node("rows").component is Component.DPR
        assert dag.node("predictions").component is Component.LI
        assert dag.node("checked").component is Component.PPR

    def test_compile_is_repeatable(self):
        wf = build_basic_workflow()
        assert wf.compile().node_names == wf.compile().node_names

    def test_unused_extractor_is_pruned_by_slicing(self):
        wf = Workflow()
        wf.data_source("data", _source())
        wf.scan("rows", "data", CSVScanner(["a", "target"]))
        wf.extractor("aExt", "rows", FieldExtractor("a"))
        wf.extractor("raceExt", "rows", FieldExtractor("race"))
        wf.extractor("target", "rows", FieldExtractor("target"))
        wf.examples("examples", "rows", extractors=["aExt"], label="target")
        wf.output("examples")
        dag = wf.compile()
        assert "raceExt" in dag
        assert "raceExt" not in dag.sliced_to_outputs()
