"""Unit tests for the Workflow DAG representation."""

from __future__ import annotations

import pytest

from repro.core.dag import Node, WorkflowDAG
from repro.core.operators import Component
from repro.exceptions import CycleError, DAGError

from conftest import ConstOperator, SumOperator, make_chain_dag, make_diamond_dag


class TestConstruction:
    def test_duplicate_names_rejected(self):
        nodes = [Node.create("a", ConstOperator()), Node.create("a", ConstOperator())]
        with pytest.raises(DAGError):
            WorkflowDAG(nodes)

    def test_unknown_parent_rejected(self):
        with pytest.raises(DAGError):
            WorkflowDAG([Node.create("a", ConstOperator(), parents=["ghost"])])

    def test_cycle_detected(self):
        nodes = [
            Node.create("a", SumOperator(), parents=["b"]),
            Node.create("b", SumOperator(), parents=["a"]),
        ]
        with pytest.raises(CycleError):
            WorkflowDAG(nodes)

    def test_len_and_contains(self, diamond_dag):
        assert len(diamond_dag) == 4
        assert "a" in diamond_dag and "zzz" not in diamond_dag

    def test_unknown_node_lookup(self, diamond_dag):
        with pytest.raises(DAGError):
            diamond_dag.node("missing")


class TestQueries:
    def test_topological_order_respects_edges(self, diamond_dag):
        order = diamond_dag.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_topological_order_deterministic(self):
        assert make_diamond_dag().topological_order() == make_diamond_dag().topological_order()

    def test_parents_children(self, diamond_dag):
        assert diamond_dag.parents("d") == ("b", "c")
        assert set(diamond_dag.children("a")) == {"b", "c"}

    def test_roots_and_sinks(self, diamond_dag):
        assert diamond_dag.roots() == ("a",)
        assert diamond_dag.sinks() == ("d",)

    def test_ancestors_and_descendants(self, diamond_dag):
        assert diamond_dag.ancestors("d") == frozenset({"a", "b", "c"})
        assert diamond_dag.descendants("a") == frozenset({"b", "c", "d"})
        assert diamond_dag.ancestors("a") == frozenset()

    def test_edges_sorted(self, diamond_dag):
        assert diamond_dag.edges == (("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"))

    def test_outputs(self, diamond_dag):
        assert diamond_dag.outputs == ("d",)

    def test_summary_counts(self, diamond_dag):
        summary = diamond_dag.summary()
        assert summary["nodes"] == 4
        assert summary["edges"] == 4
        assert summary["outputs"] == 1

    def test_component_of(self, diamond_dag):
        assert diamond_dag.component_of("a") is Component.DPR


class TestTransformations:
    def test_slicing_removes_unreachable_nodes(self):
        nodes = [
            Node.create("a", ConstOperator()),
            Node.create("b", SumOperator(), parents=["a"], is_output=True),
            Node.create("orphan", ConstOperator()),
            Node.create("dead_branch", SumOperator(), parents=["a"]),
        ]
        dag = WorkflowDAG(nodes)
        sliced = dag.sliced_to_outputs()
        assert set(sliced.node_names) == {"a", "b"}

    def test_slicing_without_outputs_is_identity(self):
        dag = WorkflowDAG([Node.create("a", ConstOperator()), Node.create("b", SumOperator(), parents=["a"])])
        assert set(dag.sliced_to_outputs().node_names) == {"a", "b"}

    def test_slicing_to_explicit_targets(self, diamond_dag):
        sliced = diamond_dag.sliced_to_outputs(["b"])
        assert set(sliced.node_names) == {"a", "b"}

    def test_without_nodes_drops_edges(self, diamond_dag):
        reduced = diamond_dag.without_nodes(["b"])
        assert "b" not in reduced
        assert reduced.parents("d") == ("c",)

    def test_relabel_outputs(self, diamond_dag):
        relabeled = diamond_dag.relabel_outputs(["b"])
        assert relabeled.outputs == ("b",)

    def test_relabel_unknown_output_rejected(self, diamond_dag):
        with pytest.raises(DAGError):
            diamond_dag.relabel_outputs(["nope"])

    def test_to_dot_mentions_all_nodes(self, diamond_dag):
        dot = diamond_dag.to_dot()
        for name in diamond_dag.node_names:
            assert f'"{name}"' in dot
        assert dot.startswith("digraph")

    def test_chain_dag_structure(self):
        chain = make_chain_dag(5)
        assert chain.topological_order() == ("n0", "n1", "n2", "n3", "n4")
        assert chain.ancestors("n4") == frozenset({"n0", "n1", "n2", "n3"})
