"""Documentation link check as a tier-1 test (doc rot fails the build).

Runs the same checker CI uses (``tools/check_docs.py``) over README.md,
ROADMAP.md and docs/*.md: every relative link must point at an existing
file and every ``#fragment`` at a real heading anchor.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
CHECKER = REPO_ROOT / "tools" / "check_docs.py"


def test_docs_links_and_anchors_are_valid():
    result = subprocess.run(
        [sys.executable, str(CHECKER)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, (
        f"documentation check failed:\n{result.stderr or result.stdout}"
    )


def test_docs_tree_exists():
    """The documented entry points stay where README links point."""
    assert (REPO_ROOT / "docs" / "architecture.md").is_file()
    assert (REPO_ROOT / "docs" / "executors.md").is_file()
