"""Tests for the fluent HML facade over the Workflow builder."""

from __future__ import annotations

import pytest

from repro.core.hml import HML
from repro.core.operators import (
    CSVScanner,
    DataSource,
    FieldExtractor,
    JoinSynthesizer,
    Learner,
    Reducer,
)
from repro.exceptions import WorkflowSpecError
from repro.ml.linear import LogisticRegression
from repro.systems.helix import HelixSystem


def _source():
    def gen(context, n=30):
        rows = [{"line": f"{i % 50},{'A' if i % 2 else 'B'},{i % 2}"} for i in range(n)]
        return rows, rows[: n // 3]

    return DataSource(generator=gen)


def build_program() -> HML:
    hml = HML("census-hml")
    hml["data"].refers_to(_source())
    hml["data"].is_read_into("rows", using=CSVScanner(["age", "education", "target"]))
    hml["ageExt"].refers_to(FieldExtractor("age"), on="rows")
    hml["eduExt"].refers_to(FieldExtractor("education"), on="rows")
    hml["target"].refers_to(FieldExtractor("target", as_categorical=False), on="rows")
    hml["rows"].has_extractors("ageExt", "eduExt")
    hml["income"].results_from("rows", with_labels="target")
    hml["incPred"].refers_to(
        Learner(LogisticRegression, params={"max_iter": 50}), on="income", produces="predictions"
    )
    hml["checked"].results_from_reducer(
        Reducer(lambda dc: len(dc), name="check"), on="predictions", uses=["target"]
    )
    hml["checked"].is_output()
    return hml


class TestHMLFacade:
    def test_compiles_to_expected_dag(self):
        dag = build_program().compile()
        assert set(dag.node_names) >= {"data", "rows", "ageExt", "eduExt", "target",
                                       "income", "predictions", "checked"}
        assert dag.outputs == ("checked",)
        assert set(dag.parents("income")) == {"rows", "ageExt", "eduExt", "target"}
        assert "target" in dag.parents("checked")

    def test_program_executes_end_to_end(self):
        dag_count = HelixSystem.opt(seed=0).run_iteration(
            build_program().workflow, iteration=0
        )
        assert dag_count.outputs["checked"] > 0

    def test_handles_are_cached_and_membership_works(self):
        hml = HML()
        handle = hml["x"]
        assert hml["x"] is handle
        hml["data"].refers_to(_source())
        assert "data" in hml
        assert "ghost" not in hml

    def test_scanner_requires_single_input(self):
        hml = HML()
        hml["data"].refers_to(_source())
        with pytest.raises(WorkflowSpecError):
            hml["rows"].refers_to(CSVScanner(["a"]))

    def test_extractor_requires_input(self):
        hml = HML()
        with pytest.raises(WorkflowSpecError):
            hml["ext"].refers_to(FieldExtractor("a"))

    def test_learner_requires_single_input(self):
        hml = HML()
        with pytest.raises(WorkflowSpecError):
            hml["m"].refers_to(Learner(LogisticRegression))

    def test_reducer_requires_input(self):
        hml = HML()
        with pytest.raises(WorkflowSpecError):
            hml["r"].refers_to(Reducer(lambda dc: 0))

    def test_synthesizer_via_refers_to(self):
        hml = HML()
        hml["left"].refers_to(_source())
        hml["right"].refers_to(_source())
        hml["joined"].refers_to(JoinSynthesizer("line", "line"), on=["left", "right"])
        dag = hml.compile()
        assert dag.parents("joined") == ("left", "right")

    def test_uses_verb(self):
        hml = build_program()
        hml["checked"].uses("rows")
        assert "rows" in hml.compile().parents("checked")

    def test_mixing_with_plain_workflow_builder(self):
        hml = build_program()
        hml.workflow.extractor("extra", "rows", FieldExtractor("education"))
        assert "extra" in hml.compile().node_names
