"""Unit tests for the operator caches (eager Helix cache, LRU baseline)."""

from __future__ import annotations

import pytest

from repro.exceptions import ExecutionError
from repro.execution.cache import CacheEntry, EagerCache, LRUCache


class TestEagerCache:
    def test_put_get(self):
        cache = EagerCache()
        cache.put("a", [1, 2, 3])
        assert cache.get("a") == [1, 2, 3]
        assert "a" in cache
        assert len(cache) == 1

    def test_get_missing_raises(self):
        with pytest.raises(ExecutionError):
            EagerCache().get("nope")

    def test_evict(self):
        cache = EagerCache()
        cache.put("a", 1)
        entry = cache.evict("a")
        assert isinstance(entry, CacheEntry)
        assert entry.value == 1
        assert "a" not in cache
        assert cache.evict("a") is None

    def test_snapshot_bytes_tracks_entries(self):
        cache = EagerCache()
        assert cache.snapshot_bytes() == 0
        cache.put("a", list(range(100)))
        assert cache.snapshot_bytes() > 0
        before = cache.snapshot_bytes()
        cache.put("b", list(range(1000)))
        assert cache.snapshot_bytes() > before

    def test_explicit_size_respected(self):
        cache = EagerCache()
        cache.put("a", "value", size_bytes=12345)
        assert cache.snapshot_bytes() == 12345

    def test_clear(self):
        cache = EagerCache()
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0


class TestLRUCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ExecutionError):
            LRUCache(capacity_bytes=0)

    def test_evicts_least_recently_used_under_pressure(self):
        cache = LRUCache(capacity_bytes=250)
        cache.put("a", "x", size_bytes=100)
        cache.put("b", "y", size_bytes=100)
        cache.put("c", "z", size_bytes=100)  # exceeds capacity -> evict "a"
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert cache.evicted_by_pressure == ["a"]

    def test_get_refreshes_recency(self):
        cache = LRUCache(capacity_bytes=250)
        cache.put("a", "x", size_bytes=100)
        cache.put("b", "y", size_bytes=100)
        cache.get("a")  # a becomes most recent
        cache.put("c", "z", size_bytes=100)
        assert "b" not in cache
        assert "a" in cache

    def test_new_entry_never_immediately_evicted(self):
        cache = LRUCache(capacity_bytes=50)
        cache.put("big", "x", size_bytes=100)
        assert "big" in cache

    def test_keys(self):
        cache = LRUCache(capacity_bytes=1000)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.keys() == ["a", "b"]
