"""Unit tests for cross-iteration change tracking (node signatures / equivalence)."""

from __future__ import annotations

import pytest

from repro.core.dag import Node, WorkflowDAG
from repro.core.signatures import ChangeTracker, compute_node_signatures, diff_signatures

from conftest import ConstOperator, SumOperator, make_diamond_dag


def _dag(offset_b: float = 1.0, value_a: int = 2) -> WorkflowDAG:
    a = Node.create("a", ConstOperator(value_a, tag="a"))
    b = Node.create("b", SumOperator(offset=offset_b), parents=["a"])
    c = Node.create("c", SumOperator(offset=5.0), parents=["b"], is_output=True)
    return WorkflowDAG([a, b, c])


class TestNodeSignatures:
    def test_identical_dags_have_identical_signatures(self):
        assert compute_node_signatures(_dag()) == compute_node_signatures(_dag())

    def test_changing_an_operator_changes_its_signature_and_descendants(self):
        base = compute_node_signatures(_dag(offset_b=1.0))
        changed = compute_node_signatures(_dag(offset_b=2.0))
        assert base["a"] == changed["a"]
        assert base["b"] != changed["b"]
        assert base["c"] != changed["c"]

    def test_changing_a_root_changes_everything_downstream(self):
        base = compute_node_signatures(_dag(value_a=2))
        changed = compute_node_signatures(_dag(value_a=3))
        assert base["a"] != changed["a"]
        assert base["b"] != changed["b"]
        assert base["c"] != changed["c"]

    def test_rename_preserves_signature_value(self):
        # The same operator chain under different node names yields the same
        # signatures, so materializations survive renames.
        a1 = Node.create("x", ConstOperator(2, tag="a"))
        b1 = Node.create("y", SumOperator(offset=1.0), parents=["x"])
        renamed = WorkflowDAG([a1, b1])
        original = WorkflowDAG(
            [Node.create("a", ConstOperator(2, tag="a")), Node.create("b", SumOperator(offset=1.0), parents=["a"])]
        )
        assert set(compute_node_signatures(renamed).values()) == set(
            compute_node_signatures(original).values()
        )

    def test_parent_order_does_not_matter(self):
        d1 = WorkflowDAG(
            [
                Node.create("a", ConstOperator(1, tag="a")),
                Node.create("b", ConstOperator(2, tag="b")),
                Node.create("c", SumOperator(), parents=["a", "b"]),
            ]
        )
        d2 = WorkflowDAG(
            [
                Node.create("a", ConstOperator(1, tag="a")),
                Node.create("b", ConstOperator(2, tag="b")),
                Node.create("c", SumOperator(), parents=["b", "a"]),
            ]
        )
        assert compute_node_signatures(d1)["c"] == compute_node_signatures(d2)["c"]


class TestCallableInstanceTokens:
    """Callable-instance UDFs (the process-safe closure replacement) must be
    signature-sensitive to their ``__call__`` bytecode, not just ``_version``."""

    def test_editing_call_body_changes_signature(self):
        from repro.core.operators import FunctionExtractor

        class UdfA:
            def __call__(self, record):
                return 1.0

        class UdfB:
            def __call__(self, record):
                return 2.0

        UdfB.__qualname__ = UdfA.__qualname__  # same class path, different body
        UdfB.__module__ = UdfA.__module__
        sig_a = FunctionExtractor("f", UdfA()).config_signature()
        sig_b = FunctionExtractor("f", UdfB()).config_signature()
        assert sig_a != sig_b

    def test_version_still_participates(self):
        from repro.core.operators import FunctionExtractor

        class Udf:
            def __init__(self, version):
                self._version = version

            def __call__(self, record):
                return 1.0

        assert (
            FunctionExtractor("f", Udf(1)).config_signature()
            != FunctionExtractor("f", Udf(2)).config_signature()
        )

    def test_instance_state_participates_without_version(self):
        """Two instances of one UDF class with different constructor state
        must not alias even when the class never sets _version."""
        from repro.core.operators import FunctionExtractor

        class Thresholder:
            def __init__(self, t):
                self.t = t

            def __call__(self, record):
                return float(record > self.t)

        assert (
            FunctionExtractor("f", Thresholder(1)).config_signature()
            == FunctionExtractor("f", Thresholder(1)).config_signature()
        )
        assert (
            FunctionExtractor("f", Thresholder(1)).config_signature()
            != FunctionExtractor("f", Thresholder(2)).config_signature()
        )

    def test_slotted_instance_state_participates(self):
        from repro.core.operators import FunctionExtractor

        class SlottedThresholder:
            __slots__ = ("t",)

            def __init__(self, t):
                self.t = t

            def __call__(self, record):
                return float(record > self.t)

        assert (
            FunctionExtractor("f", SlottedThresholder(1)).config_signature()
            != FunctionExtractor("f", SlottedThresholder(2)).config_signature()
        )

    def test_partial_bound_arguments_participate(self):
        import functools

        from repro.core.operators import FunctionExtractor

        def scale(record, k=1):
            return float(k)

        assert (
            FunctionExtractor("f", functools.partial(scale, k=2)).config_signature()
            != FunctionExtractor("f", functools.partial(scale, k=3)).config_signature()
        )


class TestDiff:
    def test_everything_original_on_first_iteration(self):
        signatures = compute_node_signatures(_dag())
        diff = diff_signatures(signatures, previous={})
        assert diff.original == frozenset(signatures)
        assert not diff.reusable

    def test_only_changed_subtree_is_original(self):
        previous = compute_node_signatures(_dag(offset_b=1.0))
        current = compute_node_signatures(_dag(offset_b=2.0))
        diff = diff_signatures(current, previous)
        assert diff.original == frozenset({"b", "c"})
        assert diff.reusable == frozenset({"a"})
        assert diff.num_changed == 2

    def test_added_and_removed_names(self):
        previous = {"a": "1", "gone": "2"}
        current = {"a": "1", "new": "3"}
        diff = diff_signatures(current, previous)
        assert diff.added == frozenset({"new"})
        assert diff.removed == frozenset({"gone"})

    def test_known_signatures_extend_reuse(self):
        current = {"a": "sig-a"}
        diff = diff_signatures(current, previous={}, known_signatures={"sig-a"})
        assert diff.reusable == frozenset({"a"})


class TestChangeTracker:
    def test_lifecycle(self):
        tracker = ChangeTracker()
        dag1 = _dag(offset_b=1.0)
        assert tracker.classify(dag1).original == frozenset({"a", "b", "c"})
        tracker.commit(dag1)
        assert tracker.iteration == 1

        dag2 = _dag(offset_b=2.0)
        diff = tracker.classify(dag2)
        assert diff.original == frozenset({"b", "c"})
        tracker.commit(dag2)

        # Reverting to the original offset is recognized: the signatures were
        # seen at iteration 0, so nothing is original.
        dag3 = _dag(offset_b=1.0)
        assert tracker.classify(dag3).original == frozenset()

    def test_commit_with_precomputed_signatures(self):
        tracker = ChangeTracker()
        dag = _dag()
        signatures = compute_node_signatures(dag)
        committed = tracker.commit(dag, signatures)
        assert committed == signatures
        assert tracker.has_seen(signatures["a"])

    def test_reset(self):
        tracker = ChangeTracker()
        tracker.commit(_dag())
        tracker.reset()
        assert tracker.iteration == 0
        assert tracker.previous_signatures == {}
        assert tracker.classify(_dag()).original == frozenset({"a", "b", "c"})

    def test_diamond_change_only_affects_descendants(self):
        tracker = ChangeTracker()
        tracker.commit(make_diamond_dag())
        modified = make_diamond_dag()
        # Rebuild with a changed 'b' offset only.
        nodes = [modified.node("a"), Node.create("b", SumOperator(offset=9.0, cost=2.0), parents=["a"]),
                 modified.node("c"), modified.node("d")]
        changed = WorkflowDAG(nodes)
        diff = tracker.classify(changed)
        assert diff.original == frozenset({"b", "d"})
        assert diff.reusable == frozenset({"a", "c"})
