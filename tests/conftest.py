"""Shared fixtures: tiny deterministic operators, DAGs and workflows for tests."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import pytest

from repro.core.dag import Node, WorkflowDAG
from repro.core.operators import Component, Operator, RunContext
from repro.execution.clock import SimulatedCostModel
from repro.optimizer.metrics import StatsStore
from repro.storage.store import InMemoryStore


class ConstOperator(Operator):
    """Test operator returning a constant value, with a declared cost."""

    def __init__(self, value: Any = 1, cost: float = 1.0, tag: str = "", component: Component = Component.DPR):
        self.value = value
        self.cost = cost
        self.tag = tag
        self.component = component

    def config(self) -> Dict[str, Any]:
        return {"value": self.value, "cost": self.cost, "tag": self.tag}

    def estimated_cost(self, input_sizes: Sequence[int]) -> float:
        return self.cost

    def run(self, inputs: Sequence[Any], context: RunContext) -> Any:
        return self.value


class SumOperator(Operator):
    """Test operator summing numeric inputs plus an offset."""

    def __init__(self, offset: float = 0.0, cost: float = 1.0, component: Component = Component.DPR):
        self.offset = offset
        self.cost = cost
        self.component = component

    def config(self) -> Dict[str, Any]:
        return {"offset": self.offset, "cost": self.cost}

    def estimated_cost(self, input_sizes: Sequence[int]) -> float:
        return self.cost

    def run(self, inputs: Sequence[Any], context: RunContext) -> Any:
        total = self.offset
        for value in inputs:
            total += float(value)
        return total


class FailingOperator(Operator):
    """Test operator that always raises."""

    def config(self) -> Dict[str, Any]:
        return {}

    def run(self, inputs: Sequence[Any], context: RunContext) -> Any:
        raise RuntimeError("intentional failure")


class UnpicklableOperator(Operator):
    """Carries a lambda, so pickling fails (the classic closure-UDF mistake)."""

    def __init__(self):
        self.fn = lambda x: x + 1

    def config(self) -> Dict[str, Any]:
        return {"fn": self.fn}

    def run(self, inputs: Sequence[Any], context: RunContext) -> Any:
        return self.fn(1.0)


class OptedOutOperator(Operator):
    """Picklable but declares itself unsafe for process execution."""

    supports_processes = False

    def config(self) -> Dict[str, Any]:
        return {}

    def run(self, inputs: Sequence[Any], context: RunContext) -> Any:
        return 1.0


def make_chain_dag(n: int = 4, costs: Optional[List[float]] = None, name: str = "chain") -> WorkflowDAG:
    """n0 -> n1 -> ... -> n_{n-1}, last node is the output."""
    costs = costs or [1.0] * n
    nodes = []
    for i in range(n):
        operator = SumOperator(offset=1.0, cost=costs[i]) if i else ConstOperator(1, cost=costs[i])
        parents = [f"n{i-1}"] if i else []
        nodes.append(Node.create(f"n{i}", operator, parents, is_output=(i == n - 1)))
    return WorkflowDAG(nodes, name=name)


def make_diamond_dag(name: str = "diamond") -> WorkflowDAG:
    """a -> (b, c) -> d, with d as output."""
    a = Node.create("a", ConstOperator(2, cost=4.0, tag="a"))
    b = Node.create("b", SumOperator(offset=1.0, cost=2.0), parents=["a"])
    c = Node.create("c", SumOperator(offset=2.0, cost=3.0), parents=["a"])
    d = Node.create("d", SumOperator(offset=0.0, cost=1.0), parents=["b", "c"], is_output=True)
    return WorkflowDAG([a, b, c, d], name=name)


@pytest.fixture
def chain_dag() -> WorkflowDAG:
    return make_chain_dag()


@pytest.fixture
def diamond_dag() -> WorkflowDAG:
    return make_diamond_dag()


@pytest.fixture
def memory_store() -> InMemoryStore:
    return InMemoryStore()


@pytest.fixture
def simulated_cost_model() -> SimulatedCostModel:
    return SimulatedCostModel()


@pytest.fixture
def stats_store() -> StatsStore:
    return StatsStore()


@pytest.fixture
def run_context() -> RunContext:
    return RunContext(seed=0)
