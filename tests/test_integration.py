"""Integration tests reproducing the qualitative claims of the evaluation section."""

from __future__ import annotations

import pytest

from repro.execution.clock import SimulatedCostModel
from repro.experiments.runner import run_comparison, run_lifecycle
from repro.systems.deepdive import DeepDiveSystem
from repro.systems.helix import HelixSystem
from repro.systems.keystoneml import KeystoneMLSystem
from repro.workloads import IterationType


pytestmark = pytest.mark.integration


class TestCensusClaims:
    """Section 6.5.2 (Census): Helix dominates by reusing DPR and L/I results."""

    def test_helix_beats_keystoneml_cumulatively(self):
        results = run_comparison(
            [HelixSystem.opt(seed=0), KeystoneMLSystem(seed=0)], "census", n_iterations=6, seed=7
        )
        helix = results["helix-opt"].total_time()
        keystone = results["keystoneml"].total_time()
        assert keystone > 2.0 * helix

    def test_helix_beats_deepdive_cumulatively(self):
        results = run_comparison(
            [HelixSystem.opt(seed=0), DeepDiveSystem(seed=0)], "census", n_iterations=4, seed=7
        )
        assert results["deepdive"].total_time() > results["helix-opt"].total_time()

    def test_ppr_iterations_are_near_free_for_helix(self):
        result = run_lifecycle(HelixSystem.opt(seed=0), "census", n_iterations=8, seed=7)
        first = result.iteration_times()[0]
        ppr_times = [
            stats.total_time
            for stats, spec in zip(result.iterations, result.plan)
            if spec.kind == IterationType.PPR and spec.index > 0
        ]
        assert ppr_times, "the sampled plan should contain PPR iterations"
        assert max(ppr_times) < first / 3


class TestMaterializationPolicyClaims:
    """Section 6.6: OPT beats AM and NM; AM uses far more storage."""

    def test_opt_cumulative_time_not_worse_than_am_and_nm(self):
        times = {}
        for system in (HelixSystem.opt(seed=0), HelixSystem.always_materialize(seed=0),
                       HelixSystem.never_materialize(seed=0)):
            result = run_lifecycle(system, "census", n_iterations=6, seed=7)
            times[system.name] = result.total_time()
        # On census OPT and AM make near-identical choices, so allow generous
        # wall-clock noise against AM; NM forfeits all reuse and trails by a
        # large factor, so a tight bound is safe there.
        assert times["helix-opt"] <= times["helix-am"] * 1.35
        assert times["helix-opt"] <= times["helix-nm"] * 1.15

    def test_am_uses_more_storage_than_opt(self):
        # MNIST is where the difference is stark: its DPR intermediates are
        # large and cheap, so OPT skips them while AM persists them all.
        # The simulated clock keeps OPT's streaming decisions independent of
        # machine speed: under measured wall-clock a slow/contended machine
        # inflates compute times until OPT materializes everything AM does.
        opt = run_lifecycle(
            HelixSystem.opt(cost_model=SimulatedCostModel(), seed=0),
            "mnist", n_iterations=4, seed=7,
        )
        am = run_lifecycle(
            HelixSystem.always_materialize(cost_model=SimulatedCostModel(), seed=0),
            "mnist", n_iterations=4, seed=7,
        )
        assert am.storage_series()[-1] > opt.storage_series()[-1]
        # On every workload AM can never use *less* storage than OPT.
        opt_census = run_lifecycle(HelixSystem.opt(seed=0), "census", n_iterations=4, seed=7)
        am_census = run_lifecycle(HelixSystem.always_materialize(seed=0), "census", n_iterations=4, seed=7)
        assert am_census.storage_series()[-1] >= opt_census.storage_series()[-1]

    def test_opt_reuses_as_much_as_am(self):
        """Figure 8: OPT achieves the same prune/load fractions as AM."""
        opt = run_lifecycle(HelixSystem.opt(seed=0), "census", n_iterations=5, seed=7)
        am = run_lifecycle(HelixSystem.always_materialize(seed=0), "census", n_iterations=5, seed=7)
        for opt_fractions, am_fractions in zip(opt.state_fraction_series()[1:],
                                               am.state_fraction_series()[1:]):
            assert opt_fractions["Sc"] <= am_fractions["Sc"] + 1e-9

    def test_nm_storage_is_outputs_only(self):
        nm = run_lifecycle(HelixSystem.never_materialize(seed=0), "census", n_iterations=3, seed=7)
        opt = run_lifecycle(HelixSystem.opt(seed=0), "census", n_iterations=3, seed=7)
        assert nm.storage_series()[-1] < opt.storage_series()[-1]


class TestNLPClaims:
    """Section 6.5.2 (NLP): the expensive parsing operator is reused by Helix."""

    def test_helix_prunes_parsing_after_first_iteration(self):
        result = run_lifecycle(HelixSystem.opt(seed=0), "nlp", n_iterations=4, seed=7)
        for stats in result.iterations[1:]:
            assert stats.node_states["sentences"].value in ("Sp", "Sl")

    def test_helix_beats_deepdive_on_nlp(self):
        results = run_comparison(
            [HelixSystem.opt(seed=0), DeepDiveSystem(seed=0)], "nlp", n_iterations=4, seed=7
        )
        assert results["deepdive"].total_time() > 1.5 * results["helix-opt"].total_time()


class TestMnistClaims:
    """Section 6.5.2 (MNIST): little reuse available, Helix must not add big overhead."""

    def test_helix_not_much_slower_than_keystoneml(self):
        results = run_comparison(
            [HelixSystem.opt(seed=0), KeystoneMLSystem(seed=0)], "mnist", n_iterations=5, seed=7
        )
        helix = results["helix-opt"].total_time()
        keystone = results["keystoneml"].total_time()
        assert helix < keystone * 1.5

    def test_memory_stays_bounded(self):
        result = run_lifecycle(HelixSystem.opt(seed=0), "mnist", n_iterations=4, seed=7)
        peaks = [m["peak"] for m in result.memory_series()]
        assert max(peaks) < 512 * 1024 * 1024  # well under the paper's 30 GB allocation


class TestGenomicsClaims:
    def test_helix_beats_keystoneml_on_genomics(self):
        results = run_comparison(
            [HelixSystem.opt(seed=0), KeystoneMLSystem(seed=0)], "genomics", n_iterations=6, seed=7
        )
        assert results["keystoneml"].total_time() > 1.5 * results["helix-opt"].total_time()

    def test_storage_not_monotonic_is_allowed(self):
        """Storage can decrease when changed operators' artifacts are purged."""
        result = run_lifecycle(HelixSystem.opt(seed=0), "genomics", n_iterations=6, seed=7)
        series = result.storage_series()
        assert len(series) == 6
        assert all(value >= 0 for value in series)
