"""Unit tests for DAG pruning: slicing, data-driven pruning, eviction schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dag import Node, WorkflowDAG
from repro.core.data import DataCollection, ElementKind, Example, FeatureVector
from repro.core.operators import PredictionsResult
from repro.optimizer.pruning import (
    eviction_schedule,
    out_of_scope_after,
    slice_to_outputs,
    zero_weight_extractors,
)

from conftest import ConstOperator, SumOperator, make_diamond_dag


class TestSlicing:
    def test_slice_drops_non_contributing_nodes(self):
        nodes = [
            Node.create("a", ConstOperator()),
            Node.create("out", SumOperator(), parents=["a"], is_output=True),
            Node.create("unused", SumOperator(), parents=["a"]),
        ]
        dag = WorkflowDAG(nodes)
        assert set(slice_to_outputs(dag).node_names) == {"a", "out"}

    def test_slice_with_explicit_outputs(self, diamond_dag):
        assert set(slice_to_outputs(diamond_dag, ["c"]).node_names) == {"a", "c"}


class _WeightedModel:
    def __init__(self, weights):
        self._weights = weights

    def feature_weights(self):
        return self._weights


class TestZeroWeightExtractors:
    def _result(self, weights, provenance):
        examples = [
            Example(features=FeatureVector({name: 1.0 for name in provenance}), provenance=dict(provenance))
        ]
        predictions = DataCollection("p", examples, kind=ElementKind.EXAMPLE)
        return PredictionsResult(predictions=predictions, model=_WeightedModel(weights))

    def test_extractor_with_all_zero_weights_is_prunable(self):
        result = self._result(
            weights={"f1": 0.0, "f2": 0.5},
            provenance={"f1": "extractorA", "f2": "extractorB"},
        )
        assert zero_weight_extractors(result) == frozenset({"extractorA"})

    def test_protected_extractors_are_kept(self):
        result = self._result(weights={"f1": 0.0}, provenance={"f1": "extractorA"})
        assert zero_weight_extractors(result, protected=["extractorA"]) == frozenset()

    def test_mixed_weights_keep_extractor(self):
        result = self._result(
            weights={"f1": 0.0, "f2": 0.3},
            provenance={"f1": "extractorA", "f2": "extractorA"},
        )
        assert zero_weight_extractors(result) == frozenset()

    def test_threshold(self):
        result = self._result(weights={"f1": 0.05}, provenance={"f1": "extractorA"})
        assert zero_weight_extractors(result, weight_threshold=0.1) == frozenset({"extractorA"})

    def test_no_weights_means_no_pruning(self):
        examples = [Example(features=FeatureVector({"f1": 1.0}), provenance={"f1": "e"})]
        result = PredictionsResult(
            predictions=DataCollection("p", examples, kind=ElementKind.EXAMPLE), model=object()
        )
        assert zero_weight_extractors(result) == frozenset()

    def test_weights_array_with_feature_index(self):
        class ArrayModel:
            weights_ = np.array([0.0, 0.7])

        examples = [Example(features=FeatureVector({"f1": 1.0, "f2": 1.0}),
                            provenance={"f1": "a", "f2": "b"})]
        result = PredictionsResult(
            predictions=DataCollection("p", examples, kind=ElementKind.EXAMPLE),
            model=ArrayModel(),
            feature_index={"f1": 0, "f2": 1},
        )
        assert zero_weight_extractors(result) == frozenset({"a"})


class TestEvictionSchedule:
    def test_out_of_scope_after_last_child(self, diamond_dag):
        order = ["a", "b", "c", "d"]
        schedule = out_of_scope_after(diamond_dag, order)
        assert schedule["a"] == 2   # after c (last child of a) runs
        assert schedule["b"] == 3
        assert schedule["c"] == 3
        assert schedule["d"] == 3

    def test_nodes_without_children_evicted_immediately(self):
        dag = WorkflowDAG([Node.create("solo", ConstOperator())])
        assert out_of_scope_after(dag, ["solo"]) == {"solo": 0}

    def test_partial_execution_order(self, diamond_dag):
        # b pruned: a goes out of scope after c.
        order = ["a", "c", "d"]
        schedule = out_of_scope_after(diamond_dag, order)
        assert schedule["a"] == 1
        assert "b" not in schedule

    def test_eviction_schedule_inverts_positions(self, diamond_dag):
        order = ["a", "b", "c", "d"]
        schedule = eviction_schedule(diamond_dag, order)
        assert schedule[2] == ["a"]
        assert sorted(schedule[3]) == ["b", "c", "d"]

    def test_every_executed_node_is_evicted_exactly_once(self, diamond_dag):
        order = ["a", "b", "c", "d"]
        schedule = eviction_schedule(diamond_dag, order)
        evicted = [name for names in schedule.values() for name in names]
        assert sorted(evicted) == sorted(order)
