"""Unit and property tests for the Project Selection Problem solver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer.psp import Project, ProjectSelectionProblem


class TestBasics:
    def test_positive_profits_all_selected(self):
        psp = ProjectSelectionProblem()
        psp.add_project("a", 5)
        psp.add_project("b", 3)
        solution = psp.solve()
        assert solution.selected == frozenset({"a", "b"})
        assert solution.total_profit == 8

    def test_negative_profits_none_selected(self):
        psp = ProjectSelectionProblem()
        psp.add_project("a", -5)
        psp.add_project("b", -3)
        solution = psp.solve()
        assert solution.selected == frozenset()
        assert solution.total_profit == 0

    def test_prerequisite_worth_paying_for(self):
        psp = ProjectSelectionProblem()
        psp.add_project("profit", 10, prerequisites=["cost"])
        psp.add_project("cost", -4)
        solution = psp.solve()
        assert solution.selected == frozenset({"profit", "cost"})
        assert solution.total_profit == 6

    def test_prerequisite_not_worth_paying_for(self):
        psp = ProjectSelectionProblem()
        psp.add_project("profit", 3, prerequisites=["cost"])
        psp.add_project("cost", -10)
        solution = psp.solve()
        assert solution.selected == frozenset()

    def test_chain_of_prerequisites(self):
        psp = ProjectSelectionProblem()
        psp.add_project("top", 12, prerequisites=["mid"])
        psp.add_project("mid", -3, prerequisites=["bottom"])
        psp.add_project("bottom", -4)
        solution = psp.solve()
        assert solution.selected == frozenset({"top", "mid", "bottom"})
        assert solution.total_profit == 5

    def test_shared_prerequisite_amortized(self):
        # Individually unprofitable, jointly profitable through a shared prerequisite.
        psp = ProjectSelectionProblem()
        psp.add_project("p1", 4, prerequisites=["shared"])
        psp.add_project("p2", 4, prerequisites=["shared"])
        psp.add_project("shared", -6)
        solution = psp.solve()
        assert solution.selected == frozenset({"p1", "p2", "shared"})
        assert solution.total_profit == 2

    def test_unknown_prerequisite_becomes_free_project(self):
        psp = ProjectSelectionProblem()
        psp.add_project("a", 5, prerequisites=["ghost"])
        solution = psp.solve()
        assert "a" in solution.selected
        assert "ghost" in solution.selected

    def test_add_prerequisite_after_the_fact(self):
        psp = ProjectSelectionProblem()
        psp.add_project("a", 5)
        psp.add_project("b", -10)
        psp.add_prerequisite("a", "b")
        assert psp.solve().selected == frozenset()

    def test_add_prerequisite_unknown_project(self):
        psp = ProjectSelectionProblem()
        with pytest.raises(KeyError):
            psp.add_prerequisite("ghost", "a")

    def test_contains_on_solution(self):
        psp = ProjectSelectionProblem()
        psp.add_project("a", 1)
        solution = psp.solve()
        assert "a" in solution
        assert "b" not in solution

    def test_zero_profit_membership_does_not_affect_value(self):
        psp = ProjectSelectionProblem()
        psp.add_project("a", 0)
        psp.add_project("b", 7, prerequisites=["a"])
        solution = psp.solve()
        assert solution.total_profit == 7


@st.composite
def random_psp_instances(draw):
    n = draw(st.integers(2, 7))
    profits = [draw(st.integers(-10, 10)) for _ in range(n)]
    prerequisites = []
    for i in range(n):
        deps = [j for j in range(i) if draw(st.booleans())]
        prerequisites.append(deps)
    return profits, prerequisites


class TestAgainstBruteForce:
    @given(random_psp_instances())
    @settings(max_examples=80, deadline=None)
    def test_min_cut_matches_brute_force_profit(self, instance):
        profits, prerequisites = instance
        psp = ProjectSelectionProblem()
        for i, profit in enumerate(profits):
            psp.add_project(i, profit, prerequisites=prerequisites[i])
        exact = psp.solve_brute_force()
        solved = psp.solve()
        assert solved.total_profit == pytest.approx(exact.total_profit)

    @given(random_psp_instances())
    @settings(max_examples=80, deadline=None)
    def test_solution_is_prerequisite_closed(self, instance):
        profits, prerequisites = instance
        psp = ProjectSelectionProblem()
        for i, profit in enumerate(profits):
            psp.add_project(i, profit, prerequisites=prerequisites[i])
        solution = psp.solve()
        for project in solution.selected:
            for prerequisite in prerequisites[project]:
                assert prerequisite in solution.selected

    def test_brute_force_limits_size(self):
        psp = ProjectSelectionProblem()
        for i in range(21):
            psp.add_project(i, 1)
        with pytest.raises(ValueError):
            psp.solve_brute_force()
