"""Workflow DAG pruning (Section 5.4 of the paper).

Three pruning mechanisms are implemented:

* **Output-driven pruning (program slicing)** — traverse backwards from the
  declared outputs and drop every node not visited.  This is what removes
  ``raceExt`` in the paper's census example and is exposed here as
  :func:`slice_to_outputs` (a thin wrapper over
  :meth:`WorkflowDAG.sliced_to_outputs` so that all pruning lives in one
  module).
* **Data-driven pruning** — use provenance bookkeeping (feature name ->
  producing extractor, recorded on every example) together with the learned
  model's feature weights to find extractors whose features all received
  zero weight; such operators can be pruned without changing predictions.
* **Cache-eviction planning** — compute, for each node, the point in the
  execution order after which it goes *out of scope* (all consumers done),
  which the execution engine uses for eager uncaching and for the streaming
  materialization decisions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.dag import WorkflowDAG
from ..core.operators import PredictionsResult

__all__ = [
    "slice_to_outputs",
    "zero_weight_extractors",
    "eviction_schedule",
    "out_of_scope_after",
]


def slice_to_outputs(dag: WorkflowDAG, outputs: Optional[Sequence[str]] = None) -> WorkflowDAG:
    """Program slicing: keep only nodes contributing to the outputs."""
    return dag.sliced_to_outputs(outputs)


def zero_weight_extractors(
    result: PredictionsResult,
    weight_threshold: float = 0.0,
    protected: Iterable[str] = (),
) -> FrozenSet[str]:
    """Extractor sources whose features all have |weight| <= threshold.

    Requires a linear model exposing ``feature_weights()`` (a mapping from
    feature name to coefficient) or a ``weights_`` array aligned with the
    learner's feature index.  Sources listed in ``protected`` (e.g. the label
    extractor) are never returned.  When weights are unavailable the function
    returns an empty set — pruning must never be speculative.
    """
    model = result.model
    weights: Optional[Mapping[str, float]] = None
    if hasattr(model, "feature_weights"):
        weights = model.feature_weights()
    elif hasattr(model, "weights_") and result.feature_index:
        array = np.asarray(model.weights_, dtype=float).ravel()
        weights = {
            name: float(array[pos])
            for name, pos in result.feature_index.items()
            if pos < array.size
        }
    if not weights:
        return frozenset()

    # Group features by the extractor that produced them using provenance.
    produced_by: Dict[str, Set[str]] = {}
    for example in result.predictions:
        for feature_name, source in getattr(example, "provenance", {}).items():
            produced_by.setdefault(source, set()).add(feature_name)

    protected_set = set(protected)
    prunable: Set[str] = set()
    for source, feature_names in produced_by.items():
        if source in protected_set:
            continue
        if all(abs(weights.get(name, 0.0)) <= weight_threshold for name in feature_names):
            prunable.add(source)
    return frozenset(prunable)


def out_of_scope_after(dag: WorkflowDAG, execution_order: Sequence[str]) -> Dict[str, int]:
    """For each node, the index in ``execution_order`` after which it is out of scope.

    A node is out of scope once all of its children (among the nodes actually
    being executed) have run (Definition 5).  Nodes with no executing children
    go out of scope immediately after their own execution.  Nodes that are not
    in ``execution_order`` (pruned or loaded-and-unused) are omitted.
    """
    positions = {name: index for index, name in enumerate(execution_order)}
    schedule: Dict[str, int] = {}
    for name in execution_order:
        last = positions[name]
        for child in dag.children(name):
            child_position = positions.get(child)
            if child_position is not None and child_position > last:
                last = child_position
        schedule[name] = last
    return schedule


def eviction_schedule(dag: WorkflowDAG, execution_order: Sequence[str]) -> Dict[int, List[str]]:
    """Invert :func:`out_of_scope_after`: step index -> nodes to evict after it.

    The execution engine walks the physical plan in order; after executing the
    node at position ``i`` it evicts (and offers for materialization) every
    node listed under ``i``.
    """
    schedule: Dict[int, List[str]] = {}
    for node, position in out_of_scope_after(dag, execution_order).items():
        schedule.setdefault(position, []).append(node)
    for nodes in schedule.values():
        nodes.sort()
    return schedule
