"""Operator metrics and the cross-iteration statistics store.

The DAG optimizer runs *before* execution, so it must estimate per-node
compute time ``c_i``, load time ``l_i`` and storage footprint ``s_i`` from
statistics recorded in previous iterations (Section 5.1 of the paper).  This
is sound because a node with an equivalent materialization has, by
definition, been executed with the exact same operator and inputs before, so
the recorded statistics are accurate.  Nodes never seen before fall back to
the operator's own ``estimated_cost``.

Statistics are keyed by the node's recursive *signature* (not its name) so
that renames do not lose history and changed operators do not inherit stale
numbers.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["NodeMetrics", "StatsStore", "CostEstimator", "DEFAULT_DISK_BANDWIDTH"]

#: Default modelled disk bandwidth in bytes/second (the paper's testbed HDD
#: sustains ~170 MB/s for both reads and writes).
DEFAULT_DISK_BANDWIDTH = 170e6


@dataclass
class NodeMetrics:
    """Observed metrics for one node execution.

    Attributes
    ----------
    compute_time:
        Seconds to compute the node from in-memory inputs (``c_i``).
    load_time:
        Seconds to load the node back from disk (``l_i``); populated when the
        node has actually been materialized/loaded, otherwise estimated from
        ``storage_bytes`` and the disk bandwidth.
    storage_bytes:
        Size of the serialized artifact (``s_i``).
    observations:
        Number of times the node has been observed (used for running means).
    """

    compute_time: float = 0.0
    load_time: float = 0.0
    storage_bytes: int = 0
    observations: int = 0

    def merge_observation(
        self,
        compute_time: Optional[float] = None,
        load_time: Optional[float] = None,
        storage_bytes: Optional[int] = None,
    ) -> None:
        """Fold a new observation into the running averages.

        A field that has never been observed (still zero) adopts the new value
        outright instead of being averaged with the zero placeholder.
        """
        n = self.observations
        if compute_time is not None:
            if n and self.compute_time > 0:
                self.compute_time = (self.compute_time * n + compute_time) / (n + 1)
            else:
                self.compute_time = compute_time
        if load_time is not None:
            if n and self.load_time > 0:
                self.load_time = (self.load_time * n + load_time) / (n + 1)
            else:
                self.load_time = load_time
        if storage_bytes is not None:
            self.storage_bytes = int(storage_bytes)
        self.observations += 1


class StatsStore:
    """Per-signature operator statistics persisted across iterations.

    The store is an in-memory mapping with optional JSON persistence so that
    a workflow lifecycle can span process restarts (as the real system's
    statistics do).  Recording is guarded by a lock: the parallel execution
    engine records load observations from worker threads while the scheduler
    thread records compute observations at retirement points.
    """

    def __init__(self, path: Optional[Path] = None):
        self._metrics: Dict[str, NodeMetrics] = {}
        self._lock = threading.Lock()
        self._path = Path(path) if path is not None else None
        if self._path is not None and self._path.exists():
            self._load()

    def __contains__(self, signature: str) -> bool:
        with self._lock:
            return signature in self._metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def get(self, signature: str) -> Optional[NodeMetrics]:
        with self._lock:
            return self._metrics.get(signature)

    def record(
        self,
        signature: str,
        compute_time: Optional[float] = None,
        load_time: Optional[float] = None,
        storage_bytes: Optional[int] = None,
    ) -> NodeMetrics:
        """Record an observation for a signature and return the merged metrics."""
        with self._lock:
            metrics = self._metrics.setdefault(signature, NodeMetrics())
            metrics.merge_observation(compute_time, load_time, storage_bytes)
            return metrics

    def forget(self, signature: str) -> None:
        with self._lock:
            self._metrics.pop(signature, None)

    def items(self) -> List[Tuple[str, NodeMetrics]]:
        """All ``(signature, metrics)`` pairs, sorted by signature.

        Used by the engine-equivalence harness to compare the statistics two
        engines accumulated over the same run.
        """
        with self._lock:
            return sorted(self._metrics.items())

    # ------------------------------------------------------------------ persistence
    def save(self) -> None:
        if self._path is None:
            return
        with self._lock:
            payload = {signature: asdict(metrics) for signature, metrics in self._metrics.items()}
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._path.write_text(json.dumps(payload, indent=2, sort_keys=True))

    def _load(self) -> None:
        payload = json.loads(self._path.read_text())
        for signature, fields in payload.items():
            self._metrics[signature] = NodeMetrics(**fields)


class CostEstimator:
    """Produces the ``c_i`` / ``l_i`` estimates consumed by the OEP solver.

    ``compute_time`` prefers recorded statistics (exact for unchanged nodes)
    and falls back to the operator's declared cost model.  ``load_time`` is
    only finite when an equivalent materialization exists; it prefers the
    recorded load time and otherwise derives it from the artifact size and
    the modelled disk bandwidth.
    """

    def __init__(self, stats: StatsStore, disk_bandwidth: float = DEFAULT_DISK_BANDWIDTH,
                 default_compute_time: float = 1e-3):
        if disk_bandwidth <= 0:
            raise ValueError("disk bandwidth must be positive")
        self.stats = stats
        self.disk_bandwidth = disk_bandwidth
        self.default_compute_time = default_compute_time

    def compute_time(self, signature: str, operator=None, input_sizes: Iterable[int] = ()) -> float:
        metrics = self.stats.get(signature)
        if metrics is not None and metrics.observations > 0 and metrics.compute_time > 0:
            return metrics.compute_time
        if operator is not None:
            return float(operator.estimated_cost(list(input_sizes)))
        return self.default_compute_time

    def load_time(self, signature: str, materialized: bool) -> float:
        """Load time estimate; infinite when no equivalent materialization exists."""
        if not materialized:
            return float("inf")
        metrics = self.stats.get(signature)
        if metrics is None:
            return self.default_compute_time
        if metrics.load_time > 0:
            return metrics.load_time
        return self.bytes_to_seconds(metrics.storage_bytes)

    def storage_bytes(self, signature: str) -> int:
        metrics = self.stats.get(signature)
        return metrics.storage_bytes if metrics is not None else 0

    def bytes_to_seconds(self, size_bytes: int) -> float:
        """Time to read or write ``size_bytes`` at the modelled disk bandwidth."""
        return max(float(size_bytes), 1.0) / self.disk_bandwidth
