"""Optimizers: execution-plan (OEP), materialization-plan (OMP) and pruning."""

from .maxflow import INFINITY, FlowNetwork
from .metrics import DEFAULT_DISK_BANDWIDTH, CostEstimator, NodeMetrics, StatsStore
from .oep import ExecutionPlan, NodeState, brute_force_oep, plan_run_time, solve_oep
from .omp import (
    AlwaysMaterialize,
    MaterializationDecision,
    MaterializationPolicy,
    NeverMaterialize,
    StreamingMaterializationPolicy,
    cumulative_run_time,
    optimal_materialization_plan,
)
from .pruning import eviction_schedule, out_of_scope_after, slice_to_outputs, zero_weight_extractors
from .psp import Project, ProjectSelectionProblem, ProjectSelectionSolution

__all__ = [
    "INFINITY",
    "FlowNetwork",
    "DEFAULT_DISK_BANDWIDTH",
    "CostEstimator",
    "NodeMetrics",
    "StatsStore",
    "ExecutionPlan",
    "NodeState",
    "brute_force_oep",
    "plan_run_time",
    "solve_oep",
    "AlwaysMaterialize",
    "MaterializationDecision",
    "MaterializationPolicy",
    "NeverMaterialize",
    "StreamingMaterializationPolicy",
    "cumulative_run_time",
    "optimal_materialization_plan",
    "eviction_schedule",
    "out_of_scope_after",
    "slice_to_outputs",
    "zero_weight_extractors",
    "Project",
    "ProjectSelectionProblem",
    "ProjectSelectionSolution",
]
