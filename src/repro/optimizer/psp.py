"""The Project Selection Problem (PSP), solved via minimum cut.

Problem 2 of the paper: given a set of projects, each with a real-valued
profit and a set of prerequisite projects, select a subset ``A`` such that all
prerequisites of every selected project are also selected and the total profit
is maximized.

PSP is the classical "project selection with prerequisites" / maximum-weight
closure problem and reduces to a minimum s-t cut:

* the source connects to every project with positive profit with capacity
  equal to that profit,
* every project with negative profit connects to the sink with capacity equal
  to the absolute value of its profit,
* every prerequisite relation ``p requires q`` becomes an infinite-capacity
  edge ``p -> q`` so that a cut can never separate a selected project from its
  prerequisite.

The optimal selection is the source side of the minimum cut (minus the source
itself), and the maximum profit equals the sum of positive profits minus the
cut value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Sequence, Set, Tuple

from .maxflow import INFINITY, FlowNetwork

__all__ = ["Project", "ProjectSelectionProblem", "ProjectSelectionSolution"]


@dataclass(frozen=True)
class Project:
    """One project: an identifier, a profit, and prerequisite project ids."""

    identifier: Hashable
    profit: float
    prerequisites: Tuple[Hashable, ...] = ()


@dataclass(frozen=True)
class ProjectSelectionSolution:
    """The result of solving a PSP instance."""

    selected: FrozenSet[Hashable]
    total_profit: float

    def __contains__(self, identifier: Hashable) -> bool:
        return identifier in self.selected


class ProjectSelectionProblem:
    """A Project Selection Problem instance with an exact min-cut solver."""

    _SOURCE = ("__psp_source__",)
    _SINK = ("__psp_sink__",)

    def __init__(self) -> None:
        self._projects: Dict[Hashable, Project] = {}

    # ------------------------------------------------------------------ build
    def add_project(
        self,
        identifier: Hashable,
        profit: float,
        prerequisites: Sequence[Hashable] = (),
    ) -> None:
        """Add a project; re-adding an identifier replaces it."""
        self._projects[identifier] = Project(
            identifier=identifier,
            profit=float(profit),
            prerequisites=tuple(prerequisites),
        )

    def add_prerequisite(self, project: Hashable, prerequisite: Hashable) -> None:
        """Record that ``project`` cannot be selected without ``prerequisite``."""
        existing = self._projects.get(project)
        if existing is None:
            raise KeyError(f"unknown project {project!r}")
        if prerequisite not in existing.prerequisites:
            self._projects[project] = Project(
                identifier=existing.identifier,
                profit=existing.profit,
                prerequisites=existing.prerequisites + (prerequisite,),
            )

    @property
    def projects(self) -> Mapping[Hashable, Project]:
        return dict(self._projects)

    # ------------------------------------------------------------------ solve
    def solve(self) -> ProjectSelectionSolution:
        """Solve exactly via minimum cut.

        Prerequisites referencing unknown projects are treated as projects
        with zero profit (selecting them is free), which keeps the reduction
        total without burdening callers.
        """
        for project in list(self._projects.values()):
            for prerequisite in project.prerequisites:
                if prerequisite not in self._projects:
                    self.add_project(prerequisite, 0.0)

        network = FlowNetwork()
        network.add_node(self._SOURCE)
        network.add_node(self._SINK)
        positive_total = 0.0
        for project in self._projects.values():
            network.add_node(project.identifier)
            if project.profit > 0:
                positive_total += project.profit
                network.add_edge(self._SOURCE, project.identifier, project.profit)
            elif project.profit < 0:
                network.add_edge(project.identifier, self._SINK, -project.profit)
            for prerequisite in project.prerequisites:
                network.add_edge(project.identifier, prerequisite, INFINITY)

        cut_value, source_side, _sink_side = network.min_cut(self._SOURCE, self._SINK)
        selected = frozenset(
            identifier for identifier in self._projects if identifier in source_side
        )
        total_profit = sum(self._projects[i].profit for i in selected)
        # Sanity: max-closure duality says total profit == positive_total - cut.
        # Floating point noise from repeated augmentations is tolerated.
        assert abs(total_profit - (positive_total - cut_value)) < 1e-6 * max(1.0, positive_total), (
            "min-cut duality violated; max-flow solver returned an inconsistent cut"
        )
        return ProjectSelectionSolution(selected=selected, total_profit=total_profit)

    def solve_brute_force(self) -> ProjectSelectionSolution:
        """Exhaustive reference solver (exponential; for testing small instances)."""
        identifiers: List[Hashable] = list(self._projects)
        best_profit = 0.0
        best_selection: FrozenSet[Hashable] = frozenset()
        n = len(identifiers)
        if n > 20:
            raise ValueError("brute-force PSP is limited to 20 projects")
        for mask in range(1 << n):
            selection = {identifiers[i] for i in range(n) if mask & (1 << i)}
            if not self._is_closed(selection):
                continue
            profit = sum(self._projects[i].profit for i in selection)
            if profit > best_profit + 1e-12:
                best_profit = profit
                best_selection = frozenset(selection)
        return ProjectSelectionSolution(selected=best_selection, total_profit=best_profit)

    def _is_closed(self, selection: Set[Hashable]) -> bool:
        for identifier in selection:
            project = self._projects.get(identifier)
            if project is None:
                continue
            for prerequisite in project.prerequisites:
                if prerequisite not in selection:
                    return False
        return True
