"""OPT-EXEC-PLAN: the optimal execution (reuse) plan.

Problem 1 of the paper: given the Workflow DAG, per-node compute times
``c_i``, load times ``l_i`` (infinite when no equivalent materialization
exists) and the set of *original* nodes that must be recomputed (Constraint
1), assign each node one of three states

* ``Sc`` (compute from inputs),
* ``Sl`` (load the materialized result from disk),
* ``Sp`` (prune — neither computed nor loaded),

minimizing total run time subject to the execution-state constraint
(Constraint 2: a computed node's parents may not be pruned).

The problem is solved exactly in polynomial time by the reduction of
Algorithm 1 to the Project Selection Problem:

* for every node ``n_i`` create project ``a_i`` with profit ``-l_i`` and
  project ``b_i`` with profit ``l_i - c_i``;
* ``a_i`` is a prerequisite of ``b_i`` (computing implies not pruning);
* for every DAG edge ``(n_i, n_j)``, ``a_i`` is a prerequisite of ``b_j``
  (computing a child requires every parent to be loaded or computed).

Selecting ``{a_i, b_i}`` maps to ``Sc``, selecting only ``a_i`` maps to
``Sl``, and selecting neither maps to ``Sp``.

Constraint 1 (original nodes must be recomputed) is enforced the same way the
paper's ILP formulation does: original nodes get an effectively infinite load
cost and a large negative compute cost, which makes ``Sc`` the unique optimal
choice for them.  A brute-force reference solver is provided for testing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from ..core.dag import WorkflowDAG
from ..exceptions import OptimizationError
from .psp import ProjectSelectionProblem

__all__ = ["NodeState", "ExecutionPlan", "solve_oep", "brute_force_oep", "plan_run_time"]


class NodeState(str, Enum):
    """Execution state of a node (Section 5.1)."""

    COMPUTE = "Sc"
    LOAD = "Sl"
    PRUNE = "Sp"


@dataclass(frozen=True)
class ExecutionPlan:
    """A state assignment for every node plus its estimated run time."""

    states: Mapping[str, NodeState]
    estimated_time: float
    forced: FrozenSet[str] = frozenset()

    def state(self, name: str) -> NodeState:
        return self.states[name]

    def nodes_in(self, state: NodeState) -> Tuple[str, ...]:
        return tuple(sorted(n for n, s in self.states.items() if s is state))

    def state_fractions(self) -> Dict[str, float]:
        """Fraction of nodes in each state (Figure 8 of the paper)."""
        total = max(len(self.states), 1)
        return {
            state.value: sum(1 for s in self.states.values() if s is state) / total
            for state in NodeState
        }


def plan_run_time(
    states: Mapping[str, NodeState],
    compute_time: Mapping[str, float],
    load_time: Mapping[str, float],
) -> float:
    """Total run time of a plan under the true cost estimates (Equation 1)."""
    total = 0.0
    for name, state in states.items():
        if state is NodeState.COMPUTE:
            total += compute_time[name]
        elif state is NodeState.LOAD:
            total += load_time[name]
    return total


def _validate_inputs(
    dag: WorkflowDAG,
    compute_time: Mapping[str, float],
    load_time: Mapping[str, float],
    forced_compute: Iterable[str],
    required: Iterable[str] = (),
) -> Tuple[Set[str], Set[str]]:
    forced = set(forced_compute)
    needed = set(required)
    for name in dag.node_names:
        if name not in compute_time:
            raise OptimizationError(f"missing compute time for node {name!r}")
        if name not in load_time:
            raise OptimizationError(f"missing load time for node {name!r}")
        if compute_time[name] < 0:
            raise OptimizationError(f"negative compute time for node {name!r}")
        if load_time[name] < 0:
            raise OptimizationError(f"negative load time for node {name!r}")
    unknown = (forced | needed) - set(dag.node_names)
    if unknown:
        raise OptimizationError(f"forced/required nodes not in DAG: {sorted(unknown)}")
    return forced, needed


def solve_oep(
    dag: WorkflowDAG,
    compute_time: Mapping[str, float],
    load_time: Mapping[str, float],
    forced_compute: Iterable[str] = (),
    required: Iterable[str] = (),
) -> ExecutionPlan:
    """Solve OPT-EXEC-PLAN exactly via the PSP/min-cut reduction (Algorithm 1).

    Parameters
    ----------
    dag:
        The (already sliced) Workflow DAG.
    compute_time / load_time:
        Estimated ``c_i`` and ``l_i`` per node name; ``l_i`` may be infinite
        when no equivalent materialization exists.
    forced_compute:
        Names of original nodes that must be recomputed (Constraint 1).
    required:
        Names of nodes that must be *produced* (loaded or computed, not
        pruned), regardless of cost.  Helix itself only uses Constraint 1 —
        unchanged outputs stay on disk — but the exact OPT-MAT-PLAN solver
        and what-if analyses need to model "the next iteration must produce
        its outputs".
    """
    forced, needed = _validate_inputs(dag, compute_time, load_time, forced_compute, required)

    finite_costs = [v for v in compute_time.values() if v != float("inf")]
    finite_costs += [v for v in load_time.values() if v != float("inf")]
    big = sum(finite_costs) + 1.0

    adjusted_compute: Dict[str, float] = {}
    adjusted_load: Dict[str, float] = {}
    for name in dag.node_names:
        c = compute_time[name]
        l = load_time[name]
        if name in forced:
            # Constraint 1: make Sc the unique optimal choice for this node by
            # making loading prohibitively expensive and computing "profitable"
            # enough to outweigh any cascading parent costs.
            c = -big
            l = big * 2.0
        else:
            if l == float("inf"):
                l = big * 2.0
            if c == float("inf"):
                c = big * 2.0
        adjusted_compute[name] = c
        adjusted_load[name] = l

    psp = ProjectSelectionProblem()
    for name in dag.node_names:
        # A required node gets a selection bonus on its "a" project large
        # enough that every optimal solution selects it (i.e. does not prune
        # it); the load-vs-compute trade-off via the "b" project is unchanged.
        bonus = big * 4.0 if name in needed and name not in forced else 0.0
        psp.add_project(("a", name), bonus - adjusted_load[name])
        psp.add_project(("b", name), adjusted_load[name] - adjusted_compute[name],
                        prerequisites=[("a", name)])
    for parent, child in dag.edges:
        psp.add_prerequisite(("b", child), ("a", parent))

    solution = psp.solve()

    states: Dict[str, NodeState] = {}
    for name in dag.node_names:
        picked_a = ("a", name) in solution.selected
        picked_b = ("b", name) in solution.selected
        if picked_a and picked_b:
            states[name] = NodeState.COMPUTE
        elif picked_a:
            states[name] = NodeState.LOAD
        else:
            states[name] = NodeState.PRUNE

    _repair_plan(dag, states, compute_time, load_time, forced, needed)
    estimated = plan_run_time(states, compute_time, load_time)
    return ExecutionPlan(states=states, estimated_time=estimated, forced=frozenset(forced))


def _repair_plan(
    dag: WorkflowDAG,
    states: Dict[str, NodeState],
    compute_time: Mapping[str, float],
    load_time: Mapping[str, float],
    forced: Set[str],
    required: Set[str] = frozenset(),
) -> None:
    """Defensively enforce feasibility on the mapped PSP solution.

    With exact arithmetic the mapped solution always satisfies Constraints 1
    and 2 (see Theorem 2); tiny floating-point slack in the max-flow solver
    can in principle flip a zero-profit project, so we repair rather than
    fail: forced nodes are set to compute, required nodes are promoted out of
    the pruned state, and pruned parents of computed nodes are promoted to
    the cheaper of load/compute (in reverse topological order so promotions
    cascade correctly).
    """
    for name in forced:
        states[name] = NodeState.COMPUTE
    for name in required:
        if states[name] is NodeState.PRUNE:
            if load_time[name] <= compute_time[name]:
                states[name] = NodeState.LOAD
            else:
                states[name] = NodeState.COMPUTE
    for name in reversed(dag.topological_order()):
        if states[name] is not NodeState.COMPUTE:
            continue
        for parent in dag.parents(name):
            if states[parent] is NodeState.PRUNE:
                if load_time[parent] <= compute_time[parent]:
                    states[parent] = NodeState.LOAD
                else:
                    states[parent] = NodeState.COMPUTE


def brute_force_oep(
    dag: WorkflowDAG,
    compute_time: Mapping[str, float],
    load_time: Mapping[str, float],
    forced_compute: Iterable[str] = (),
    required: Iterable[str] = (),
    max_nodes: int = 12,
) -> ExecutionPlan:
    """Exhaustive reference solver for testing (exponential in the node count)."""
    forced, needed = _validate_inputs(dag, compute_time, load_time, forced_compute, required)
    names = list(dag.node_names)
    if len(names) > max_nodes:
        raise OptimizationError(
            f"brute-force OEP limited to {max_nodes} nodes, got {len(names)}"
        )
    best_states: Optional[Dict[str, NodeState]] = None
    best_time = float("inf")
    for assignment in itertools.product(list(NodeState), repeat=len(names)):
        states = dict(zip(names, assignment))
        if not _is_feasible(dag, states, load_time, forced, needed):
            continue
        total = plan_run_time(states, compute_time, load_time)
        if total < best_time - 1e-15:
            best_time = total
            best_states = states
    if best_states is None:
        raise OptimizationError("no feasible execution plan exists")
    return ExecutionPlan(states=best_states, estimated_time=best_time, forced=frozenset(forced))


def _is_feasible(
    dag: WorkflowDAG,
    states: Mapping[str, NodeState],
    load_time: Mapping[str, float],
    forced: Set[str],
    required: Set[str] = frozenset(),
) -> bool:
    for name in forced:
        if states[name] is not NodeState.COMPUTE:
            return False
    for name in required:
        if states[name] is NodeState.PRUNE:
            return False
    for name, state in states.items():
        if state is NodeState.LOAD and load_time[name] == float("inf"):
            return False
        if state is NodeState.COMPUTE:
            for parent in dag.parents(name):
                if states[parent] is NodeState.PRUNE:
                    return False
    return True
