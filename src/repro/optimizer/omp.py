"""OPT-MAT-PLAN: deciding which intermediates to materialize.

Problem 3 of the paper: while executing iteration ``t``, choose a subset of
nodes to persist to disk so that the materialization cost plus the optimal
run time of the *next* iteration is minimized, subject to a storage budget.
The problem is NP-hard (reduction from Knapsack, Theorem 3), and because the
run-time statistics for all operators are only fully known at the end of the
workflow, Helix additionally imposes a streaming constraint: once a node goes
*out of scope* (all of its children have been computed or loaded), it must be
either materialized immediately or dropped from the cache.

This module implements the paper's policies:

* :class:`StreamingMaterializationPolicy` — Algorithm 2: materialize an
  out-of-scope node iff twice its load cost is below its cumulative run time
  and the storage budget allows it (HELIX OPT).
* :class:`AlwaysMaterialize` — persist everything (HELIX AM).
* :class:`NeverMaterialize` — persist nothing beyond mandatory outputs
  (HELIX NM).
* :func:`optimal_materialization_plan` — an exact exponential solver for small
  DAGs under the paper's simplifying assumption that ``W_{t+1} = W_t``; used
  by tests and the ablation benchmark to quantify the heuristic's optimality
  gap.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Set, Tuple

from ..core.dag import WorkflowDAG
from ..exceptions import OptimizationError
from .oep import NodeState, solve_oep

__all__ = [
    "MaterializationDecision",
    "MaterializationPolicy",
    "StreamingMaterializationPolicy",
    "AlwaysMaterialize",
    "NeverMaterialize",
    "cumulative_run_time",
    "optimal_materialization_plan",
]


@dataclass(frozen=True)
class MaterializationDecision:
    """The outcome of a single out-of-scope materialization decision."""

    node: str
    materialize: bool
    reason: str
    cumulative_time: float = 0.0
    load_estimate: float = 0.0


def cumulative_run_time(
    node: str,
    dag: WorkflowDAG,
    node_times: Mapping[str, float],
) -> float:
    """Definition 6: run time of a node plus all of its ancestors this iteration.

    ``node_times`` maps node name to ``t(n_i)``: the compute time if the node
    was computed, the load time if it was loaded, and zero if it was pruned.
    Nodes missing from the mapping contribute zero (they were pruned).
    """
    total = node_times.get(node, 0.0)
    for ancestor in dag.ancestors(node):
        total += node_times.get(ancestor, 0.0)
    return total


class MaterializationPolicy(ABC):
    """Interface for out-of-scope materialization decisions.

    The execution engine calls :meth:`decide` exactly once per node, at the
    moment the node goes out of scope (streaming constraint, Constraint 3).
    ``budget_remaining`` may be ``None`` for an unlimited budget.
    """

    name = "policy"

    @abstractmethod
    def decide(
        self,
        node: str,
        dag: WorkflowDAG,
        node_times: Mapping[str, float],
        load_estimate: float,
        size_bytes: int,
        budget_remaining: Optional[int],
    ) -> MaterializationDecision:
        """Decide whether to materialize ``node`` now."""

    @staticmethod
    def _within_budget(size_bytes: int, budget_remaining: Optional[int]) -> bool:
        return budget_remaining is None or size_bytes <= budget_remaining


class StreamingMaterializationPolicy(MaterializationPolicy):
    """Algorithm 2: materialize iff ``C(n_i) > factor * l_i`` and budget allows.

    The intuition (Section 5.3): if loading the node next iteration lets all
    of its ancestors be pruned, then paying the materialization now plus the
    load later must be cheaper than recomputing the pruned ancestors; with
    equal read/write costs this is exactly ``2 * l_i < C(n_i)``.
    """

    name = "streaming"

    def __init__(self, factor: float = 2.0):
        if factor <= 0:
            raise OptimizationError("materialization factor must be positive")
        self.factor = factor

    def decide(
        self,
        node: str,
        dag: WorkflowDAG,
        node_times: Mapping[str, float],
        load_estimate: float,
        size_bytes: int,
        budget_remaining: Optional[int],
    ) -> MaterializationDecision:
        cumulative = cumulative_run_time(node, dag, node_times)
        if not self._within_budget(size_bytes, budget_remaining):
            return MaterializationDecision(
                node, False, "storage budget exhausted", cumulative, load_estimate
            )
        worthwhile = cumulative > self.factor * load_estimate
        reason = (
            f"C={cumulative:.6f} > {self.factor:g}*l={self.factor * load_estimate:.6f}"
            if worthwhile
            else f"C={cumulative:.6f} <= {self.factor:g}*l={self.factor * load_estimate:.6f}"
        )
        return MaterializationDecision(node, worthwhile, reason, cumulative, load_estimate)


class AlwaysMaterialize(MaterializationPolicy):
    """HELIX AM: materialize every out-of-scope node the budget allows."""

    name = "always"

    def decide(
        self,
        node: str,
        dag: WorkflowDAG,
        node_times: Mapping[str, float],
        load_estimate: float,
        size_bytes: int,
        budget_remaining: Optional[int],
    ) -> MaterializationDecision:
        cumulative = cumulative_run_time(node, dag, node_times)
        if not self._within_budget(size_bytes, budget_remaining):
            return MaterializationDecision(node, False, "storage budget exhausted",
                                            cumulative, load_estimate)
        return MaterializationDecision(node, True, "always materialize", cumulative, load_estimate)


class NeverMaterialize(MaterializationPolicy):
    """HELIX NM: never materialize (mandatory outputs are still persisted)."""

    name = "never"

    def decide(
        self,
        node: str,
        dag: WorkflowDAG,
        node_times: Mapping[str, float],
        load_estimate: float,
        size_bytes: int,
        budget_remaining: Optional[int],
    ) -> MaterializationDecision:
        cumulative = cumulative_run_time(node, dag, node_times)
        return MaterializationDecision(node, False, "never materialize", cumulative, load_estimate)


def optimal_materialization_plan(
    dag: WorkflowDAG,
    compute_time: Mapping[str, float],
    load_time_if_materialized: Mapping[str, float],
    storage_bytes: Mapping[str, int],
    budget_bytes: Optional[int] = None,
    max_nodes: int = 14,
) -> Tuple[FrozenSet[str], float]:
    """Exact OPT-MAT-PLAN under the assumption ``W_{t+1} = W_t`` (Equation 3).

    Enumerates all subsets ``M`` of nodes (exponential — only for small DAGs),
    scoring each by the materialization time ``sum_{i in M} l_i`` plus the
    optimal next-iteration run time ``T*(W_{t+1})`` computed by the exact OEP
    solver with ``M`` materialized and no nodes forced to recompute.  The next
    iteration is modelled as having to *produce* the DAG's outputs (or its
    sinks when no outputs are declared), matching the setting of the paper's
    NP-hardness construction where every node must be either loaded or
    computed.

    Returns the best subset and its objective value.
    """
    produced = list(dag.outputs) or list(dag.sinks())
    names = list(dag.node_names)
    if len(names) > max_nodes:
        raise OptimizationError(
            f"exact OPT-MAT-PLAN limited to {max_nodes} nodes, got {len(names)}"
        )
    best_subset: FrozenSet[str] = frozenset()
    best_objective = float("inf")
    for r in range(len(names) + 1):
        for subset in itertools.combinations(names, r):
            chosen = frozenset(subset)
            total_storage = sum(storage_bytes.get(n, 0) for n in chosen)
            if budget_bytes is not None and total_storage > budget_bytes:
                continue
            materialization_time = sum(load_time_if_materialized[n] for n in chosen)
            next_load = {
                n: (load_time_if_materialized[n] if n in chosen else float("inf"))
                for n in names
            }
            plan = solve_oep(dag, compute_time, next_load, forced_compute=(), required=produced)
            objective = materialization_time + plan.estimated_time
            if objective < best_objective - 1e-15:
                best_objective = objective
                best_subset = chosen
    return best_subset, best_objective
