"""Maximum-flow / minimum-cut solver (Edmonds–Karp), built from scratch.

The OPT-EXEC-PLAN problem is solved via a reduction to the Project Selection
Problem, which itself reduces to a minimum s-t cut (Section 5.2 of the paper).
The paper uses the Edmonds–Karp algorithm, i.e. Ford–Fulkerson with BFS
augmenting paths, which runs in ``O(V * E^2)``.  Workflow DAGs have at most a
few hundred nodes, so this pure-Python implementation is more than fast
enough while remaining easy to verify.

The module exposes :class:`FlowNetwork` with :meth:`max_flow` and
:meth:`min_cut`, and is intentionally independent of the rest of the library
so it can be reused and property-tested in isolation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

__all__ = ["FlowNetwork", "INFINITY"]

#: Capacity value treated as unbounded.  Using a float sentinel (rather than
#: ``math.inf``) keeps arithmetic exact when capacities are summed.
INFINITY = float("inf")


class FlowNetwork:
    """A directed flow network over arbitrary hashable node identifiers.

    Parallel edges are merged by summing capacities.  Residual capacities are
    maintained in a nested dictionary; reverse edges are created lazily with
    zero capacity.
    """

    def __init__(self) -> None:
        self._capacity: Dict[Hashable, Dict[Hashable, float]] = {}

    # ------------------------------------------------------------------ build
    def add_node(self, node: Hashable) -> None:
        self._capacity.setdefault(node, {})

    def add_edge(self, source: Hashable, target: Hashable, capacity: float) -> None:
        """Add a directed edge; repeated edges accumulate capacity."""
        if capacity < 0:
            raise ValueError(f"edge capacity must be non-negative, got {capacity}")
        if source == target:
            return
        self.add_node(source)
        self.add_node(target)
        current = self._capacity[source].get(target, 0.0)
        if current == INFINITY or capacity == INFINITY:
            self._capacity[source][target] = INFINITY
        else:
            self._capacity[source][target] = current + capacity
        self._capacity[target].setdefault(source, 0.0)

    @property
    def nodes(self) -> FrozenSet[Hashable]:
        return frozenset(self._capacity)

    def capacity(self, source: Hashable, target: Hashable) -> float:
        return self._capacity.get(source, {}).get(target, 0.0)

    def edges(self) -> Iterable[Tuple[Hashable, Hashable, float]]:
        for source, targets in self._capacity.items():
            for target, capacity in targets.items():
                if capacity > 0:
                    yield source, target, capacity

    # ------------------------------------------------------------------ solve
    def max_flow(self, source: Hashable, sink: Hashable) -> Tuple[float, Dict[Hashable, Dict[Hashable, float]]]:
        """Compute the maximum flow value and the residual capacities.

        Returns ``(flow_value, residual)`` where ``residual[u][v]`` is the
        remaining capacity on edge ``(u, v)`` after routing the maximum flow.
        """
        if source not in self._capacity or sink not in self._capacity:
            raise ValueError("source and sink must be nodes of the network")
        if source == sink:
            raise ValueError("source and sink must differ")
        residual: Dict[Hashable, Dict[Hashable, float]] = {
            u: dict(targets) for u, targets in self._capacity.items()
        }
        flow_value = 0.0
        while True:
            path = self._bfs_augmenting_path(residual, source, sink)
            if path is None:
                break
            bottleneck = min(residual[u][v] for u, v in path)
            if bottleneck == INFINITY:
                raise ValueError(
                    "network has an unbounded source-to-sink path; "
                    "max flow is infinite"
                )
            for u, v in path:
                residual[u][v] -= bottleneck
                residual[v][u] = residual[v].get(u, 0.0) + bottleneck
            flow_value += bottleneck
        return flow_value, residual

    @staticmethod
    def _bfs_augmenting_path(
        residual: Dict[Hashable, Dict[Hashable, float]],
        source: Hashable,
        sink: Hashable,
    ) -> Optional[List[Tuple[Hashable, Hashable]]]:
        """Find a shortest augmenting path in the residual graph, if any."""
        parents: Dict[Hashable, Hashable] = {source: source}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            if current == sink:
                break
            for neighbour, capacity in residual[current].items():
                if capacity > 1e-12 and neighbour not in parents:
                    parents[neighbour] = current
                    queue.append(neighbour)
        if sink not in parents:
            return None
        path: List[Tuple[Hashable, Hashable]] = []
        node = sink
        while node != source:
            parent = parents[node]
            path.append((parent, node))
            node = parent
        path.reverse()
        return path

    def min_cut(self, source: Hashable, sink: Hashable) -> Tuple[float, FrozenSet[Hashable], FrozenSet[Hashable]]:
        """Compute a minimum s-t cut.

        Returns ``(cut_value, source_side, sink_side)``: the cut value equals
        the maximum flow, and the two frozensets partition the nodes by which
        side of the cut they fall on (reachability in the residual graph).
        """
        flow_value, residual = self.max_flow(source, sink)
        reachable: Set[Hashable] = set()
        queue = deque([source])
        reachable.add(source)
        while queue:
            current = queue.popleft()
            for neighbour, capacity in residual[current].items():
                if capacity > 1e-12 and neighbour not in reachable:
                    reachable.add(neighbour)
                    queue.append(neighbour)
        source_side = frozenset(reachable)
        sink_side = frozenset(self._capacity) - source_side
        return flow_value, source_side, sink_side
