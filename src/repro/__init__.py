"""repro — a Python reproduction of Helix (VLDB 2018).

Helix is a declarative machine-learning workflow system that optimizes
execution *across iterations* of workflow development: it tracks which
operators changed, decides per node whether to load a previously materialized
result, recompute it, or prune it (an exact max-flow-based algorithm), and
decides during execution which intermediates to materialize for future reuse
(an NP-hard problem approximated with a streaming heuristic).

Public API overview
-------------------

* :mod:`repro.core` — data model, operators, the HML-style workflow DSL,
  the Workflow DAG and cross-iteration change tracking.
* :mod:`repro.optimizer` — OPT-EXEC-PLAN (max-flow), OPT-MAT-PLAN policies,
  pruning, cost estimation.
* :mod:`repro.execution` — the execution engine, caches, cost models and run
  statistics.
* :mod:`repro.storage` — the materialization store (disk or in-memory).
* :mod:`repro.ml` — the from-scratch ML substrate (linear models, k-means,
  naive Bayes, embeddings, preprocessing, metrics, text utilities).
* :mod:`repro.workloads` — the four evaluation workloads with synthetic data.
* :mod:`repro.systems` — Helix OPT/AM/NM plus KeystoneML- and DeepDive-style
  comparators.
* :mod:`repro.experiments` — the experiment harness reproducing every table
  and figure in the paper's evaluation.
* :mod:`repro.service` — Helix-as-a-service: the ``repro serve`` daemon
  sharing one worker fleet across concurrent workflow runs, and the
  ``repro submit`` client API.

Quickstart
----------

>>> from repro.systems import HelixSystem
>>> from repro.workloads import get_workload
>>> from repro.experiments import run_lifecycle
>>> result = run_lifecycle(HelixSystem.opt(), get_workload("census"), n_iterations=3)
>>> len(result.iterations)
3
"""

from . import (
    core,
    execution,
    experiments,
    ml,
    optimizer,
    service,
    storage,
    systems,
    workloads,
)
from .core import Workflow
from .exceptions import HelixError
from .experiments import run_comparison, run_lifecycle
from .systems import DeepDiveSystem, HelixSystem, KeystoneMLSystem
from .workloads import get_workload

__version__ = "0.1.0"

__all__ = [
    "core",
    "execution",
    "experiments",
    "ml",
    "optimizer",
    "service",
    "storage",
    "systems",
    "workloads",
    "Workflow",
    "HelixError",
    "run_comparison",
    "run_lifecycle",
    "DeepDiveSystem",
    "HelixSystem",
    "KeystoneMLSystem",
    "get_workload",
    "__version__",
]
