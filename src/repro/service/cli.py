"""Command line entry points for the Helix service: ``serve`` and ``submit``.

Wired through ``python -m repro`` (see :mod:`repro.__main__`) and the
``repro`` console script::

    # Start a daemon owning two locally-spawned workers:
    python -m repro serve --port 7070 --max-workers 2

    # Or one fronting pre-started remote workers:
    python -m repro serve --port 7070 --workers host1:7071,host2:7072

    # Submit a run and stream its progress:
    python -m repro submit --address 127.0.0.1:7070 \\
        --workload census --iterations 2 --scale 0.25 --verify-inline
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from typing import Any, List, Optional

from .client import (
    ServiceClient,
    assert_payloads_equivalent,
    inline_reference,
)
from .daemon import (
    COST_MODELS,
    DEFAULT_TENANT,
    POLICIES,
    PRIORITY_RANGE,
    ServeDaemon,
)
from .scheduler import SCHEDULERS

__all__ = ["main", "serve_main", "submit_main"]


def serve_main(argv: Optional[List[str]] = None) -> int:
    """``repro serve``: run the Helix service daemon until interrupted."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Long-lived Helix service: a shared worker fleet "
        "accepting workflow-run submissions (see docs/executors.md).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="listen address (default: %(default)s)")
    parser.add_argument(
        "--port", type=int, default=7070, help="listen port, 0 = ephemeral (default: %(default)s)"
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--max-workers", type=int, default=None, metavar="N",
        help="spawn N local worker processes (default: library default)",
    )
    group.add_argument(
        "--workers", default=None, metavar="HOST:PORT,...",
        help="connect to pre-started remote workers instead of spawning",
    )
    parser.add_argument(
        "--max-concurrent-runs", type=int, default=2, metavar="N",
        help="workflow runs executing at once; further submissions queue "
        "under the scheduler policy (default: %(default)s)",
    )
    parser.add_argument(
        "--scheduler", default="fifo", choices=list(SCHEDULERS),
        help="admission policy: fifo = arrival order; fair = per-tenant "
        "weighted fair share with priority classes (default: %(default)s)",
    )
    parser.add_argument(
        "--tenant-weight", action="append", default=[], metavar="TENANT=W",
        help="fair-share weight for a tenant (repeatable; fair scheduler "
        "only; unnamed tenants weigh 1)",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=0.5, metavar="SECONDS",
        help="worker heartbeat cadence (default: %(default)s)",
    )
    parser.add_argument(
        "--fetch-timeout", type=float, default=60.0, metavar="SECONDS",
        help="worker-side artifact fetch timeout (default: %(default)s)",
    )
    parser.add_argument(
        "--no-peer-fetch", action="store_true",
        help="disable worker-to-worker artifact transfer: every artifact "
        "byte routes through the coordinator (see docs/artifacts.md)",
    )
    parser.add_argument(
        "--worker-cache-bytes", type=int, default=None, metavar="BYTES",
        help="per-worker artifact cache tier budget for spawned workers "
        "(default: 256 MiB; remote workers use their own --cache-bytes)",
    )
    args = parser.parse_args(argv)
    if args.worker_cache_bytes is not None and args.worker_cache_bytes < 1:
        parser.error("--worker-cache-bytes must be at least 1")

    tenant_weights = {}
    for entry in args.tenant_weight:
        tenant, sep, weight = entry.partition("=")
        try:
            if not sep or not tenant:
                raise ValueError(entry)
            tenant_weights[tenant] = float(weight)
        except ValueError:
            parser.error(f"--tenant-weight expects TENANT=WEIGHT, got {entry!r}")

    workers = args.workers.split(",") if args.workers else None
    daemon = ServeDaemon(
        host=args.host,
        port=args.port,
        max_workers=args.max_workers,
        workers=workers,
        max_concurrent_runs=args.max_concurrent_runs,
        scheduler=args.scheduler,
        tenant_weights=tenant_weights or None,
        heartbeat_interval=args.heartbeat_interval,
        fetch_timeout=args.fetch_timeout,
        peer_fetch=not args.no_peer_fetch,
        worker_cache_bytes=args.worker_cache_bytes,
    )
    host, port = daemon.start()
    # Parseable readiness line: scripts (and the CI smoke) wait for it.
    print(f"repro service listening on {host}:{port}", flush=True)
    stop = threading.Event()

    def _request_stop(signum, frame):  # noqa: ARG001 - signal handler shape
        stop.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    try:
        while not stop.is_set():
            stop.wait(0.5)
    finally:
        daemon.stop()
        stats = daemon.stats()
        print(
            f"repro service stopped "
            f"({len(stats['completed'])} completed, {len(stats['failed'])} failed)",
            flush=True,
        )
        for tenant in sorted(stats["tenants"]):
            row = stats["tenants"][tenant]
            print(
                f"  tenant {tenant}: {row['completed']} completed, "
                f"{row['failed']} failed, {row['cancelled']} cancelled",
                flush=True,
            )
        # Greppable artifact-plane summary (the CI serve-smoke asserts on
        # it): how much artifact reuse the fleet's content-addressed tier
        # and peer transfers achieved across the served runs.
        plane = stats.get("artifact_plane", {})
        reuse = plane.get("peer_fetches", 0) + plane.get("cross_session_hits", 0)
        print(
            f"  artifact plane: peer+cache reuse {reuse} "
            f"(peer_fetches {plane.get('peer_fetches', 0)}, "
            f"cross_session_hits {plane.get('cross_session_hits', 0)}, "
            f"cache_hits {plane.get('cache_hits', 0)}), "
            f"coordinator served {plane.get('fetches_served', 0)} fetches / "
            f"{plane.get('fetch_bytes_served', 0)} bytes",
            flush=True,
        )
    return 0


def submit_main(argv: Optional[List[str]] = None) -> int:
    """``repro submit``: ship one run spec to a daemon and await its stats."""
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit a workflow run to a running `repro serve` daemon, "
        "stream its progress, and print the run stats.",
    )
    parser.add_argument(
        "--address", default="127.0.0.1:7070", metavar="HOST:PORT",
        help="daemon address (default: %(default)s)",
    )
    parser.add_argument("--workload", required=True, help="workload name (e.g. census)")
    parser.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="lifecycle iterations, 0 = workload default (default: %(default)s)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="dataset scale factor (default: %(default)s)"
    )
    parser.add_argument("--seed", type=int, default=7, help="plan seed (default: %(default)s)")
    parser.add_argument(
        "--policy", default="opt", choices=sorted(POLICIES),
        help="Helix materialization policy (default: %(default)s)",
    )
    parser.add_argument(
        "--cost-model", default="simulated", choices=list(COST_MODELS),
        help="per-node time charging (default: %(default)s; `simulated` "
        "makes served and inline runs bit-comparable)",
    )
    parser.add_argument(
        "--tenant", default=DEFAULT_TENANT, metavar="NAME",
        help="fair-share tenant the run is accounted under "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--priority", type=int, default=PRIORITY_RANGE[0], metavar="N",
        help=f"run priority {PRIORITY_RANGE[0]}..{PRIORITY_RANGE[1]}, larger "
        "= more urgent; only the daemon's fair scheduler acts on it "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--verify-inline", action="store_true",
        help="also run the spec in-process on the inline executor and "
        "assert the served stats are equivalent (modulo timing/memory)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the result payload as JSON (- for stdout)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-iteration progress lines"
    )
    args = parser.parse_args(argv)

    spec = {
        "workload": args.workload,
        "iterations": args.iterations,
        "scale": args.scale,
        "seed": args.seed,
        "policy": args.policy,
        "cost_model": args.cost_model,
        "tenant": args.tenant,
        "priority": args.priority,
    }

    def _print_progress(kind: str, info: Any) -> None:
        if kind == "progress" and not args.quiet:
            print(
                f"  iteration {info['iteration']} ({info['kind']}): "
                f"{info['executed_nodes']} nodes executed, "
                f"{info['total_time']:.3f}s",
                flush=True,
            )

    client = ServiceClient(args.address)
    handle = client.submit(spec)
    if not args.quiet:
        print(
            f"submitted {handle.run_id} "
            f"(tenant {handle.tenant}, priority {handle.priority}, "
            f"{handle.queue_position} run(s) ahead)",
            flush=True,
        )
    payload = handle.result(on_event=_print_progress)
    summary = payload["summary"]
    print(
        f"{handle.run_id} done: {summary['system']} on {summary['workload']}, "
        f"{summary['iterations']} iterations, "
        f"cumulative time {summary['cumulative_time']:.3f}s",
        flush=True,
    )
    if args.verify_inline:
        reference = inline_reference(spec)
        assert_payloads_equivalent(payload, reference)
        print("served run is equivalent to the inline reference", flush=True)
    if args.json:
        text = json.dumps(payload, indent=2, sort_keys=True, default=float)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Dispatch ``repro <command>`` (see :mod:`repro.__main__`)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Helix reproduction command line: serve a worker fleet "
        "or submit workflow runs to one.",
    )
    parser.add_argument("command", choices=["serve", "submit"], help="subcommand")
    ns, rest = parser.parse_known_args(argv)
    if ns.command == "serve":
        return serve_main(rest)
    return submit_main(rest)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
