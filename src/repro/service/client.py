"""Client API for the ``repro serve`` daemon: submit runs, stream progress.

The client side of the service wire protocol (see
:mod:`repro.service.daemon`): open a TCP connection to the daemon, ship a
``("submit", spec)`` frame, then read ``accepted`` / ``progress`` /
``done``-or-``failed`` frames back.  Each submission uses its own
connection, so a caller can hold several :class:`RunHandle` objects open at
once — submit first, collect later — which is exactly how concurrent runs
are exercised against a shared fleet.

``inline_reference`` runs the same spec in-process on the inline executor
and returns the same payload shape, so a served run can be checked for
equivalence ("identical modulo timing/memory") with
:func:`assert_payloads_equivalent`.
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, Optional, Tuple, Union

from ..exceptions import ExecutionError, ProtocolError
from ..execution.executors import _recv_message, _send_message
from .daemon import parse_service_address, run_spec, validate_spec

__all__ = [
    "RunHandle",
    "ServiceClient",
    "submit_run",
    "inline_reference",
    "assert_payloads_equivalent",
]

#: Frame types a submission connection may receive, in protocol order.
_EVENT_TYPES = ("accepted", "progress", "done", "failed")


class RunHandle:
    """One submitted run: its id, admission info, event stream and result.

    Obtained from :meth:`ServiceClient.submit`.  The handle owns the
    submission's connection; iterate :meth:`events` (or just call
    :meth:`result`, which drains them for you) to follow the run to its
    terminal frame.  Usable as a context manager — leaving the ``with``
    block closes the connection even if the event stream was abandoned
    mid-run.
    """

    def __init__(self, sock: socket.socket, run_id: str, admission: Dict[str, Any]):
        self._sock: Optional[socket.socket] = sock
        self.run_id = run_id
        #: The daemon's admission report, verbatim (tenant, priority,
        #: scheduler, queued/active split, policy position).
        self.admission = admission
        #: Tenant and effective priority the daemon admitted the run under.
        self.tenant: str = admission.get("tenant", "default")
        self.priority: int = int(admission.get("priority", 0))
        #: The daemon's scheduler policy name (``"fifo"`` / ``"fair"``).
        self.scheduler: str = admission.get("scheduler", "fifo")
        #: Submissions sitting in the admission queue at admission time.
        self.queued_ahead: int = int(admission.get("queued", 0))
        #: Runs already executing at admission time.
        self.active_at_admission: int = int(admission.get("active", 0))
        #: Queued runs the scheduler guarantees to start before this one
        #: (an estimate under the fair policy; equals ``queued_ahead``
        #: under fifo modulo a concurrent dequeue).
        self.position: int = int(admission.get("position", self.queued_ahead))
        self._payload: Optional[Dict[str, Any]] = None
        self._error: Optional[str] = None
        self._done = False

    @property
    def queue_position(self) -> int:
        """Admitted-but-unfinished runs ahead at admission time.

        Both the runs still queued *and* those already executing — the
        run starts after (at most) this many admitted runs finish.  See
        :attr:`queued_ahead` / :attr:`active_at_admission` for the split
        and :attr:`position` for the scheduler-policy view.
        """
        return self.queued_ahead + self.active_at_admission

    def events(self):
        """Yield ``("progress", info)`` events until the terminal frame.

        The terminal frame itself is not yielded; it is captured so
        :meth:`result` can return the payload (or raise).  The connection
        is closed once the stream ends — including when the caller breaks
        out (or the generator is otherwise closed) mid-stream, in which
        case the run keeps executing on the daemon but this handle's
        socket is released immediately rather than at GC time.
        """
        try:
            while not self._done:
                if self._sock is None:
                    self._finish(error="event stream abandoned before the run finished")
                    return
                try:
                    message = _recv_message(self._sock)
                except (OSError, ProtocolError) as exc:
                    self._finish(error=f"connection to the service lost: {exc}")
                    return
                if message is None:
                    self._finish(error="service closed the connection before the run finished")
                    return
                kind = message[0]
                if kind == "progress":
                    yield ("progress", message[2])
                elif kind == "done":
                    self._finish(payload=message[2])
                elif kind == "failed":
                    self._finish(error=str(message[2]))
                else:  # pragma: no cover - daemon never sends anything else
                    self._finish(error=f"unexpected frame from the service: {message[0]!r}")
        finally:
            if not self._done:
                self.close()  # abandoned mid-stream: release the socket now

    def result(self, on_event: Optional[Callable[[str, Any], None]] = None) -> Dict[str, Any]:
        """Block until the run finishes and return its payload.

        ``on_event`` receives each ``(kind, info)`` progress event while
        waiting.  Raises :class:`ExecutionError` if the daemon reported the
        run as failed (the message carries the daemon-side error).
        """
        for kind, info in self.events():
            if on_event is not None:
                on_event(kind, info)
        if self._error is not None:
            raise ExecutionError(
                f"served run {self.run_id or '(rejected)'} failed: {self._error}"
            )
        assert self._payload is not None
        return self._payload

    def _finish(self, payload: Optional[Dict[str, Any]] = None, error: Optional[str] = None) -> None:
        self._done = True
        self._payload = payload
        self._error = error
        self.close()

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "RunHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ServiceClient:
    """Submit workflow runs to a ``repro serve`` daemon.

    Parameters
    ----------
    address:
        The daemon's listening address, as ``"host:port"`` or a
        ``(host, port)`` tuple.
    connect_timeout:
        Seconds to wait for the TCP connect and the admission reply.
    """

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        connect_timeout: float = 10.0,
    ) -> None:
        self.address = parse_service_address(address)
        self.connect_timeout = connect_timeout

    def submit(self, spec: Dict[str, Any]) -> RunHandle:
        """Submit one run spec; returns once the daemon admits (or rejects) it.

        The spec is validated locally first so obvious mistakes fail with
        the same typed error the daemon would give, without a round trip.
        Raises :class:`ExecutionError` if the daemon rejects the submission.
        """
        spec = validate_spec(spec)
        sock = socket.create_connection(self.address, timeout=self.connect_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            _send_message(sock, ("submit", spec))
            reply = _recv_message(sock)
        except BaseException:
            sock.close()
            raise
        try:
            run_id, admission = self._parse_admission(reply)
        except ExecutionError:
            sock.close()
            raise
        sock.settimeout(None)  # the run itself may take arbitrarily long
        return RunHandle(sock, run_id=run_id, admission=admission)

    @staticmethod
    def _parse_admission(reply: Any) -> Tuple[str, Dict[str, Any]]:
        """Validate the admission frame's shape before indexing into it.

        A malformed or truncated tuple raises the same typed
        :class:`ExecutionError` every other protocol failure gets, never a
        bare ``IndexError``/``TypeError``.
        """
        if reply is None:
            raise ExecutionError("service closed the connection during admission")
        if not isinstance(reply, tuple) or not reply:
            raise ExecutionError(
                f"malformed admission reply from the service: {reply!r}"
            )
        if reply[0] == "failed":
            if len(reply) != 3:
                raise ExecutionError(
                    f"malformed admission reply from the service: {reply!r}"
                )
            raise ExecutionError(f"service rejected the submission: {reply[2]}")
        if reply[0] != "accepted" or len(reply) != 3 or not isinstance(reply[1], str):
            raise ExecutionError(f"unexpected admission reply: {reply!r}")
        admission = reply[2]
        try:
            if isinstance(admission, dict):
                for key in ("queued", "active", "position", "priority"):
                    if key in admission:
                        admission[key] = int(admission[key])
                return reply[1], admission
            # Pre-scheduler daemons reported a single queued+active count.
            return reply[1], {"queued": int(admission), "active": 0}
        except (TypeError, ValueError):
            raise ExecutionError(
                f"malformed admission reply from the service: {reply!r}"
            ) from None


def submit_run(
    address: Union[str, Tuple[str, int]],
    spec: Dict[str, Any],
    on_event: Optional[Callable[[str, Any], None]] = None,
) -> Dict[str, Any]:
    """One-shot convenience: submit ``spec`` and block for its payload."""
    return ServiceClient(address).submit(spec).result(on_event=on_event)


def inline_reference(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Run ``spec`` in-process on the inline executor; same payload shape.

    This is the ground truth a served run is compared against: same
    workload, plan, seed and policy, no workers involved.
    """
    return run_spec(validate_spec(spec), executor="inline")


def assert_payloads_equivalent(
    served: Dict[str, Any], reference: Dict[str, Any]
) -> None:
    """Assert a served payload matches a reference payload for the same spec.

    Compares the canonical per-iteration views (stripped of times — the
    run-dependent part — but *including* exact storage byte counts, which
    canonical serialization keeps deterministic across the service's
    worker processes) plus the iteration-type sequence.  Raises
    :class:`AssertionError` naming the first divergent iteration and key,
    in the spirit of the equivalence harness.
    """
    assert served["iteration_types"] == reference["iteration_types"], (
        f"iteration plans diverge: {served['iteration_types']} != "
        f"{reference['iteration_types']}"
    )
    left, right = served["iterations"], reference["iterations"]
    assert len(left) == len(right), (
        f"iteration counts diverge: served {len(left)} != reference {len(right)}"
    )
    for index, (lhs, rhs) in enumerate(zip(left, right)):
        keys = set(lhs) | set(rhs)
        for key in sorted(keys):
            assert lhs.get(key) == rhs.get(key), (
                f"iteration {index} diverges on {key!r}:\n"
                f"  served:    {lhs.get(key)!r}\n"
                f"  reference: {rhs.get(key)!r}"
            )
