"""Admission schedulers for the ``repro serve`` daemon.

The daemon's runner threads do not drain a plain FIFO queue any more —
they drain a :class:`SchedulerPolicy`, which decides *which* admitted
run a freed runner picks up next:

:class:`FifoScheduler` (``"fifo"``, the default)
    Arrival order, exactly the pre-scheduler behavior.  ``tenant`` and
    ``priority`` are carried but ignored.
:class:`FairScheduler` (``"fair"``)
    Per-tenant weighted fair sharing with strict priority classes.
    Runs queue per ``(tenant, priority)``; a freed runner serves the
    highest priority class with queued work (so a higher-priority
    submission jumps the whole line), and within that class tenants are
    interleaved by deficit/weighted round-robin — a tenant of weight
    *w* gets *w* consecutive turns per rotation, so a burst from one
    tenant cannot starve the others behind it.

Both policies support cancellation of *queued* (never running) work —
the daemon removes a record whose submitter closed its connection — and
a ``close()`` that wakes every blocked runner for shutdown.  All methods
are thread-safe; the daemon calls them from the admission, runner and
watcher threads concurrently.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..exceptions import ExecutionError

__all__ = [
    "SchedulerPolicy",
    "FifoScheduler",
    "FairScheduler",
    "SCHEDULERS",
    "make_scheduler",
]


class SchedulerPolicy:
    """Thread-safe admission queue with a pluggable dequeue order.

    Records need two attributes the policy may consult: ``tenant`` (a
    string) and ``priority`` (an int, larger = more urgent).  Subclasses
    implement the unlocked hooks ``_put`` / ``_pop`` / ``_remove`` /
    ``_size`` / ``_guaranteed_ahead``; this base class provides the
    locking, blocking :meth:`get`, and shutdown wake-up.
    """

    #: Policy name as selected by ``--scheduler``; subclasses override.
    name = "abstract"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._closed = False

    # ------------------------------------------------------------------ queue API
    def put(self, record: Any) -> None:
        """Enqueue an admitted record and wake one blocked runner."""
        with self._cond:
            if self._closed:
                raise ExecutionError(f"{self.name} scheduler is closed")
            self._put(record)
            self._cond.notify()

    def get(self) -> Optional[Any]:
        """Block for the next record by policy order; ``None`` once closed.

        A close wakes every blocked getter immediately, *without* handing
        out still-queued records — the daemon's stop path drains those
        explicitly so it can fail them to their submitters.
        """
        with self._cond:
            while not self._closed:
                record = self._pop()
                if record is not None:
                    return record
                self._cond.wait()
            return None

    def cancel(self, record: Any) -> bool:
        """Remove a still-queued record; False if it already left the queue."""
        with self._lock:
            return self._remove(record)

    def drain(self) -> List[Any]:
        """Remove and return every queued record, in policy order."""
        records: List[Any] = []
        with self._lock:
            while True:
                record = self._pop()
                if record is None:
                    return records
                records.append(record)

    def queued_ahead(self, record: Any) -> int:
        """Queued records the policy guarantees to serve before ``record``.

        An admission-time estimate (a concurrent dequeue can make it off
        by one): every strictly-higher-priority record plus those the
        policy orders ahead within ``record``'s own class.  Equal-priority
        work from *other* tenants interleaves rather than strictly
        preceding, so it is not counted.
        """
        with self._lock:
            return self._guaranteed_ahead(record)

    def qsize(self) -> int:
        with self._lock:
            return self._size()

    # ------------------------------------------------------------------ lifecycle
    def open(self) -> None:
        """(Re-)enable admissions; the daemon calls this from ``start()``."""
        with self._lock:
            self._closed = False

    def close(self) -> None:
        """Refuse further puts and wake every blocked :meth:`get`."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # ------------------------------------------------------------------ hooks
    def _put(self, record: Any) -> None:
        raise NotImplementedError

    def _pop(self) -> Optional[Any]:
        raise NotImplementedError

    def _remove(self, record: Any) -> bool:
        raise NotImplementedError

    def _size(self) -> int:
        raise NotImplementedError

    def _guaranteed_ahead(self, record: Any) -> int:
        raise NotImplementedError


class FifoScheduler(SchedulerPolicy):
    """Arrival-order admission — the pre-scheduler daemon behavior.

    ``tenant`` and ``priority`` are accepted (specs carry them either
    way) but do not influence dequeue order.
    """

    name = "fifo"

    def __init__(self) -> None:
        super().__init__()
        self._queue: Deque[Any] = deque()

    def _put(self, record: Any) -> None:
        self._queue.append(record)

    def _pop(self) -> Optional[Any]:
        return self._queue.popleft() if self._queue else None

    def _remove(self, record: Any) -> bool:
        try:
            self._queue.remove(record)
        except ValueError:
            return False
        return True

    def _size(self) -> int:
        return len(self._queue)

    def _guaranteed_ahead(self, record: Any) -> int:
        return len(self._queue)


class FairScheduler(SchedulerPolicy):
    """Priority classes + per-tenant deficit/weighted round-robin.

    Dequeue rule, in order:

    1. **Priority jump** — only the highest priority class with queued
       work is eligible; a priority-9 submission is served before every
       queued priority-0 run regardless of tenant or arrival order.
    2. **Weighted fair share** — within that class, tenants take turns
       in a stable ring.  Each tenant holds a *deficit counter*: when
       the rotation pointer reaches it, the counter is topped up by the
       tenant's weight (default 1) and one run costs one credit, so a
       weight-2 tenant gets two consecutive turns per rotation and a
       weight-1 tenant one.  A tenant that goes idle forfeits its
       accrued credit — fairness is over *backlogged* tenants, exactly
       like deficit round-robin packet scheduling.
    3. Within one ``(tenant, priority)`` class, arrival order (FIFO).

    ``weights`` maps tenant name to a positive weight; unnamed tenants
    get ``default_weight``.
    """

    name = "fair"

    def __init__(
        self,
        weights: Optional[Dict[str, float]] = None,
        default_weight: float = 1.0,
    ) -> None:
        super().__init__()
        if default_weight <= 0:
            raise ExecutionError("scheduler default_weight must be positive")
        self.default_weight = float(default_weight)
        self.weights: Dict[str, float] = {}
        for tenant, weight in (weights or {}).items():
            try:
                weight = float(weight)
            except (TypeError, ValueError):
                raise ExecutionError(
                    f"tenant weight for {tenant!r} must be a number, got {weight!r}"
                ) from None
            if weight <= 0:
                raise ExecutionError(
                    f"tenant weight for {tenant!r} must be positive, got {weight}"
                )
            self.weights[str(tenant)] = weight
        #: tenant -> priority -> FIFO of records at that (tenant, priority).
        self._queues: Dict[str, Dict[int, Deque[Any]]] = {}
        #: Stable service ring: tenants in first-seen order.
        self._ring: List[str] = []
        self._pointer = 0
        self._deficit: Dict[str, float] = {}

    def _weight(self, tenant: str) -> float:
        return self.weights.get(tenant, self.default_weight)

    def _tenant_backlog(self, tenant: str) -> int:
        return sum(len(q) for q in self._queues.get(tenant, {}).values())

    def _put(self, record: Any) -> None:
        tenant = record.tenant
        if tenant not in self._queues:
            self._queues[tenant] = {}
            self._ring.append(tenant)
            self._deficit[tenant] = 0.0
        self._queues[tenant].setdefault(record.priority, deque()).append(record)

    def _top_priority(self) -> Optional[int]:
        top: Optional[int] = None
        for by_priority in self._queues.values():
            for priority, queue in by_priority.items():
                if queue and (top is None or priority > top):
                    top = priority
        return top

    def _pop(self) -> Optional[Any]:
        top = self._top_priority()
        if top is None:
            return None
        # Bounded scan: each full rotation tops every backlogged tenant's
        # deficit up by its weight (>= min weight), so a few rotations
        # always produce a serveable tenant.  The fallback after the
        # bound can only trigger on pathological fractional weights and
        # degrades to plain rotation order rather than failing.
        min_weight = min(
            [self.default_weight] + [self._weight(t) for t in self._ring]
        )
        rotations = int(1.0 / min_weight) + 2
        for _ in range(rotations * max(len(self._ring), 1)):
            tenant = self._ring[self._pointer % len(self._ring)]
            queue = self._queues[tenant].get(top)
            if not queue:
                if self._tenant_backlog(tenant) == 0:
                    # Idle tenants forfeit accrued credit (DRR rule);
                    # backlogged-but-outranked tenants keep theirs.
                    self._deficit[tenant] = 0.0
                self._advance()
                continue
            if self._deficit[tenant] < 1.0:
                self._deficit[tenant] += self._weight(tenant)
            if self._deficit[tenant] < 1.0:
                self._advance()  # fractional weight still accruing credit
                continue
            self._deficit[tenant] -= 1.0
            record = queue.popleft()
            if self._tenant_backlog(tenant) == 0:
                self._deficit[tenant] = 0.0
                self._advance()
            elif self._deficit[tenant] < 1.0:
                self._advance()  # turn spent; the ring moves on
            return record
        for by_priority in self._queues.values():  # pragma: no cover - fallback
            queue = by_priority.get(top)
            if queue:
                return queue.popleft()
        return None  # pragma: no cover - top_priority said there was work

    def _advance(self) -> None:
        self._pointer = (self._pointer + 1) % max(len(self._ring), 1)

    def _remove(self, record: Any) -> bool:
        queue = self._queues.get(record.tenant, {}).get(record.priority)
        if queue is None:
            return False
        try:
            queue.remove(record)
        except ValueError:
            return False
        return True

    def _size(self) -> int:
        return sum(self._tenant_backlog(tenant) for tenant in self._queues)

    def _guaranteed_ahead(self, record: Any) -> int:
        ahead = 0
        for by_priority in self._queues.values():
            for priority, queue in by_priority.items():
                if priority > record.priority:
                    ahead += len(queue)
        own = self._queues.get(record.tenant, {}).get(record.priority)
        if own is not None:
            ahead += len(own)
        return ahead


#: Scheduler names accepted by ``ServeDaemon(scheduler=...)`` / ``--scheduler``.
SCHEDULERS = ("fifo", "fair")


def make_scheduler(
    spec: Any,
    tenant_weights: Optional[Dict[str, float]] = None,
) -> SchedulerPolicy:
    """Build a scheduler from a name or pass a ready policy through.

    ``tenant_weights`` only makes sense for the fair policy; naming it
    with ``"fifo"`` (or alongside a ready instance, which carries its own
    weights) is refused rather than silently ignored.
    """
    if isinstance(spec, SchedulerPolicy):
        if tenant_weights:
            raise ExecutionError(
                "tenant_weights cannot be combined with a ready scheduler "
                "instance; configure the instance directly"
            )
        return spec
    if spec == "fifo":
        if tenant_weights:
            raise ExecutionError(
                "tenant_weights requires the fair scheduler, not fifo"
            )
        return FifoScheduler()
    if spec == "fair":
        return FairScheduler(weights=tenant_weights)
    raise ExecutionError(
        f"unknown scheduler {spec!r}; expected one of {list(SCHEDULERS)} "
        "or a SchedulerPolicy instance"
    )
