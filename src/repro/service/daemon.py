"""The ``repro serve`` daemon: a shared worker fleet behind a submit API.

One long-lived :class:`ServeDaemon` owns a
:class:`~repro.execution.executors.DistributedExecutor` worker fleet and
accepts workflow-run submissions over the same framed wire protocol the
executor transport uses (:mod:`repro.storage.serialization`).  Each accepted
run executes a full :func:`~repro.experiments.runner.run_lifecycle` on its
own :class:`~repro.execution.executors.DistributedSession`, so several runs
share the warm worker processes concurrently — the session multiplexing of
protocol version 3 — instead of each run paying worker startup or queuing
behind a per-run coordinator.

Scheduling is deliberately simple and fair: submissions are admitted FIFO
into a single queue drained by ``max_concurrent_runs`` runner threads.
Admission order decides *start* order; once started, runs share workers
fairly through the fleet's round-robin session dispatch.

Service wire protocol (client side in :mod:`repro.service.client`)::

    client:  ("submit", spec)
    daemon:  ("accepted", run_id, queue_position)
             ("progress", run_id, info_dict)      # one per iteration
             ("done", run_id, payload)            # terminal, or:
             ("failed", run_id, message)          # terminal

``spec`` is a plain dict (see :func:`validate_spec`) naming the workload,
iteration count, scale, seed, Helix materialization policy and cost model.
``payload`` is JSON-serializable: the lifecycle summary plus the
equivalence harness's canonical per-iteration views
(:func:`~repro.execution.equivalence.canonical_lifecycle`), which is what
makes a served run directly comparable to an inline run of the same spec.
"""

from __future__ import annotations

import itertools
import queue
import socket
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..exceptions import ExecutionError
from ..execution.clock import SimulatedCostModel
from ..execution.equivalence import canonical_lifecycle
from ..execution.executors import (
    DistributedExecutor,
    _recv_message,
    _send_message,
    parse_worker_address,
)
from ..experiments.runner import LifecycleResult, run_lifecycle
from ..systems.helix import HelixSystem
from ..workloads.base import get_workload

__all__ = [
    "ServeDaemon",
    "validate_spec",
    "build_system",
    "run_spec",
    "lifecycle_payload",
    "POLICIES",
    "COST_MODELS",
]

#: Helix materialization policies a spec may name, mapped to the
#: :class:`HelixSystem` variant factories.
POLICIES = {
    "opt": HelixSystem.opt,
    "am": HelixSystem.always_materialize,
    "nm": HelixSystem.never_materialize,
}

#: Cost models a spec may name.  ``"simulated"`` charges deterministic
#: declared times, so a served run is bit-comparable to an inline run;
#: ``"measured"`` charges wall clock (timings then legitimately differ).
COST_MODELS = ("simulated", "measured")


def validate_spec(spec: Any) -> Dict[str, Any]:
    """Normalize and validate a submitted workload spec.

    Returns a dict with exactly the keys ``workload``, ``iterations``,
    ``scale``, ``seed``, ``policy``, ``cost_model``.  Raises
    :class:`ExecutionError` on anything malformed, so the daemon can refuse
    a bad submission at admission time instead of failing mid-run.
    """
    if not isinstance(spec, dict):
        raise ExecutionError(f"run spec must be a dict, got {type(spec).__name__}")
    known = {"workload", "iterations", "scale", "seed", "policy", "cost_model"}
    unknown = sorted(set(spec) - known)
    if unknown:
        raise ExecutionError(f"run spec has unknown field(s): {unknown}")
    workload = spec.get("workload")
    if not isinstance(workload, str):
        raise ExecutionError("run spec needs a workload name (string)")
    try:
        get_workload(workload)
    except KeyError as exc:
        raise ExecutionError(str(exc)) from None
    try:
        iterations = int(spec.get("iterations", 0))
        scale = float(spec.get("scale", 1.0))
        seed = int(spec.get("seed", 7))
    except (TypeError, ValueError) as exc:
        raise ExecutionError(f"run spec has a non-numeric field: {exc}") from None
    if iterations < 0:
        raise ExecutionError("iterations must be >= 0 (0 = workload default)")
    if scale <= 0:
        raise ExecutionError("scale must be positive")
    policy = spec.get("policy", "opt")
    if policy not in POLICIES:
        raise ExecutionError(
            f"unknown policy {policy!r}; expected one of {sorted(POLICIES)}"
        )
    cost_model = spec.get("cost_model", "simulated")
    if cost_model not in COST_MODELS:
        raise ExecutionError(
            f"unknown cost_model {cost_model!r}; expected one of {list(COST_MODELS)}"
        )
    return {
        "workload": workload,
        "iterations": iterations,
        "scale": scale,
        "seed": seed,
        "policy": policy,
        "cost_model": cost_model,
    }


def build_system(spec: Dict[str, Any]) -> HelixSystem:
    """Build the Helix variant a validated spec names (executor unconfigured)."""
    factory = POLICIES[spec["policy"]]
    if spec["cost_model"] == "simulated":
        return factory(cost_model=SimulatedCostModel(), seed=spec["seed"])
    return factory(seed=spec["seed"])


def lifecycle_payload(result: LifecycleResult) -> Dict[str, Any]:
    """The JSON-serializable result payload of one served (or inline) run.

    Times and storage bytes are excluded from the canonical iteration views
    — they are the legitimately run-dependent part — so two payloads for
    the same spec are equal exactly when the runs were equivalent "modulo
    timing/memory".
    """
    return {
        "summary": result.summary(),
        "iteration_types": result.iteration_types(),
        "iterations": canonical_lifecycle(
            result.iterations, include_times=False, include_storage=False
        ),
    }


def run_spec(
    spec: Dict[str, Any],
    executor: Any = "inline",
    on_iteration: Any = None,
) -> Dict[str, Any]:
    """Run a validated spec to completion and return its result payload.

    ``executor`` is anything :meth:`System.configure_executor` accepts — the
    daemon passes a :class:`DistributedSession`, the inline-verification
    path passes ``"inline"``.
    """
    system = build_system(spec)
    system.configure_executor(executor)
    try:
        result = run_lifecycle(
            system,
            spec["workload"],
            n_iterations=spec["iterations"],
            seed=spec["seed"],
            scale=spec["scale"],
            on_iteration=on_iteration,
        )
    finally:
        system.close_executor()
    return lifecycle_payload(result)


class _RunRecord:
    """One admitted submission travelling through the daemon."""

    __slots__ = ("run_id", "spec", "sock", "send_lock", "client_gone")

    def __init__(self, run_id: str, spec: Dict[str, Any], sock: socket.socket):
        self.run_id = run_id
        self.spec = spec
        self.sock = sock
        self.send_lock = threading.Lock()
        self.client_gone = False

    def send(self, message: Tuple[Any, ...]) -> None:
        """Best-effort frame to the submitter; a vanished client is not fatal."""
        if self.client_gone:
            return
        try:
            _send_message(self.sock, message, self.send_lock)
        except Exception:  # noqa: BLE001 - client gone; the run itself continues
            self.client_gone = True

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class ServeDaemon:
    """Long-lived Helix service: one worker fleet, many concurrent runs.

    Parameters
    ----------
    host, port:
        Listening address for submissions (``port=0`` binds an ephemeral
        port; read :attr:`address` after :meth:`start`).
    max_workers:
        Locally-spawned worker count for the owned fleet (mutually
        exclusive with ``workers``, exactly like
        :class:`DistributedExecutor`).
    workers:
        Pre-started remote worker addresses (``"host:port"``) the fleet
        connects to instead of spawning.
    max_concurrent_runs:
        Runner threads draining the admission queue — the maximum number
        of workflow runs executing on the fleet at once.  Further
        submissions queue FIFO and report their queue position at
        admission.
    heartbeat_interval, fetch_timeout:
        Forwarded to the owned fleet.

    Lifecycle: :meth:`start` warms the fleet and opens the listener;
    :meth:`stop` drains, fails still-queued submissions, and shuts the
    fleet down.  Usable as a context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: Optional[int] = None,
        workers: Optional[Sequence[Union[str, Tuple[str, int]]]] = None,
        max_concurrent_runs: int = 2,
        heartbeat_interval: float = 0.5,
        fetch_timeout: float = 60.0,
    ) -> None:
        if max_concurrent_runs < 1:
            raise ExecutionError("max_concurrent_runs must be at least 1")
        self.host = host
        self.port = port
        self.max_concurrent_runs = int(max_concurrent_runs)
        self._fleet = DistributedExecutor(
            max_workers=max_workers,
            workers=workers,
            heartbeat_interval=heartbeat_interval,
            fetch_timeout=fetch_timeout,
            fetch_inputs=True,
        )
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._queue: "queue.Queue[Optional[_RunRecord]]" = queue.Queue()
        self._run_seq = itertools.count(1)
        self._stopping = threading.Event()
        #: Serializes admission against stop(): an admission holds it from
        #: the stop check through the queue put, and stop() holds it for
        #: the final queue drain, so a submission racing with shutdown is
        #: either refused or drained — never stranded unanswered.
        self._admit_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._queued = 0
        self._active = 0
        self._peak_active = 0
        self._completed: List[str] = []
        self._failed: List[str] = []
        self._started = False

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> Tuple[str, int]:
        """Warm the worker fleet, open the listener; returns the bound address."""
        if self._started:
            return self.address
        self._fleet.start()  # strict first start: a bad fleet config fails here
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        # A timeout lets the accept loop poll the stop flag: closing a
        # socket does not reliably wake a thread blocked in accept().
        listener.settimeout(0.25)
        self._listener = listener
        self._stopping.clear()
        self._threads = [
            threading.Thread(
                target=self._accept_loop, daemon=True, name="repro-serve-accept"
            )
        ]
        for index in range(self.max_concurrent_runs):
            self._threads.append(
                threading.Thread(
                    target=self._runner_loop,
                    daemon=True,
                    name=f"repro-serve-run-{index}",
                )
            )
        for thread in self._threads:
            thread.start()
        self._started = True
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` submissions connect to."""
        if self._listener is None:
            raise ExecutionError("daemon not started")
        return self._listener.getsockname()[:2]

    def stop(self) -> None:
        """Refuse new submissions, fail queued ones, drain and stop the fleet.

        Active runs are allowed to finish; anything still *queued* when the
        stop flag goes up is failed without running — the runner loops fail
        (rather than execute) every record they dequeue after the flag, so
        stop never waits behind a backlog, only behind the runs already
        executing.  The final drain below catches records no runner ever
        dequeued (all runners may exit on their sentinels first) and, held
        under the admission lock, any submission that raced with the flag.
        """
        if not self._started:
            return
        self._stopping.set()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for _ in range(self.max_concurrent_runs):
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=30.0)
        self._threads = []
        # Anything still queued never got a runner: tell its submitter.
        # Admissions serialize against this drain via the lock, so a record
        # queued concurrently with stop() is either refused at admission or
        # sitting in the queue here — never stranded unanswered.
        with self._admit_lock:
            while True:
                try:
                    record = self._queue.get_nowait()
                except queue.Empty:
                    break
                if record is not None:
                    self._fail_unrun(record)
        self._fleet.shutdown()
        self._started = False

    def _fail_unrun(self, record: _RunRecord) -> None:
        """Fail a queued-but-never-started record, keeping stats consistent."""
        with self._stats_lock:
            self._queued -= 1
            self._failed.append(record.run_id)
        record.send(("failed", record.run_id, "daemon stopped before the run started"))
        record.close()

    def __enter__(self) -> "ServeDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ introspection
    def stats(self) -> Dict[str, Any]:
        """Scheduler counters (tests and operators): active/peak/completed."""
        with self._stats_lock:
            return {
                "queued": self._queued,
                "active": self._active,
                "peak_active": self._peak_active,
                "completed": list(self._completed),
                "failed": list(self._failed),
            }

    def worker_pids(self) -> Dict[str, int]:
        """Live worker PIDs of the owned fleet (see ``DistributedExecutor``)."""
        return self._fleet.worker_pids()

    # ------------------------------------------------------------------ loops
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed by stop()
            threading.Thread(
                target=self._handle_submission,
                args=(conn,),
                daemon=True,
                name="repro-serve-admit",
            ).start()

    def _handle_submission(self, conn: socket.socket) -> None:
        """Admit one connection: validate its spec, queue it FIFO, hand off."""
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn.settimeout(10.0)
        try:
            message = _recv_message(conn)
            conn.settimeout(None)
        except Exception:  # noqa: BLE001 - reject peers that talk garbage
            conn.close()
            return
        if not (isinstance(message, tuple) and len(message) == 2 and message[0] == "submit"):
            try:
                _send_message(conn, ("failed", "", "expected a (submit, spec) frame"))
            except Exception:  # noqa: BLE001 - best-effort refusal
                pass
            conn.close()
            return
        try:
            spec = validate_spec(message[1])
        except ExecutionError as exc:
            try:
                _send_message(conn, ("failed", "", str(exc)))
            except Exception:  # noqa: BLE001 - best-effort refusal
                pass
            conn.close()
            return
        record = _RunRecord(f"run-{next(self._run_seq)}", spec, conn)
        # Check-and-queue under the admission lock: once stop() has drained
        # the queue (holding this lock), no record can slip in behind the
        # drain and leave its client blocked on a terminal frame that never
        # comes.  The "accepted" frame is tiny and the socket fresh, so
        # sending it under the lock cannot stall stop() behind a slow peer.
        with self._admit_lock:
            if self._stopping.is_set():
                refused = True
            else:
                refused = False
                with self._stats_lock:
                    # Admitted-but-unfinished runs ahead of this one: both the
                    # queued ones and those a runner already picked up.
                    position = self._queued + self._active
                    self._queued += 1
                record.send(("accepted", record.run_id, position))
                self._queue.put(record)
        if refused:
            record.send(("failed", "", "daemon is stopping"))
            record.close()

    def _runner_loop(self) -> None:
        while True:
            record = self._queue.get()
            if record is None:
                return
            if self._stopping.is_set():
                # stop() was called while this record sat in the queue: fail
                # it without running (admission order puts the sentinels
                # behind it, so executing here would make stop() wait out —
                # and then cancel mid-run — an entire queued backlog).
                self._fail_unrun(record)
                continue
            with self._stats_lock:
                self._queued -= 1
                self._active += 1
                self._peak_active = max(self._peak_active, self._active)
            # Counters update before the terminal frame goes out, so a
            # submitter that just saw "done" observes consistent stats().
            try:
                payload = self._execute(record)
            except Exception as exc:  # noqa: BLE001 - reported to the submitter
                with self._stats_lock:
                    self._failed.append(record.run_id)
                record.send(
                    ("failed", record.run_id, f"{type(exc).__name__}: {exc}")
                )
            else:
                with self._stats_lock:
                    self._completed.append(record.run_id)
                record.send(("done", record.run_id, payload))
            finally:
                record.close()
                with self._stats_lock:
                    self._active -= 1

    def _execute(self, record: _RunRecord) -> Dict[str, Any]:
        """Run one admitted spec on its own session of the shared fleet."""
        session = self._fleet.session()

        def _progress(spec_it, stats) -> None:
            record.send(
                (
                    "progress",
                    record.run_id,
                    {
                        "iteration": spec_it.index,
                        "kind": spec_it.kind,
                        "executed_nodes": len(stats.node_times),
                        "total_time": float(stats.total_time),
                    },
                )
            )

        try:
            return run_spec(record.spec, executor=session, on_iteration=_progress)
        finally:
            # cancel=True: on failure nothing may stay queued on the fleet.
            session.shutdown(cancel=True)


def parse_service_address(spec: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """Canonicalize a ``host:port`` service address (same rules as workers)."""
    return parse_worker_address(spec)
