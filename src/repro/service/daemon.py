"""The ``repro serve`` daemon: a shared worker fleet behind a submit API.

One long-lived :class:`ServeDaemon` owns a
:class:`~repro.execution.executors.DistributedExecutor` worker fleet and
accepts workflow-run submissions over the same framed wire protocol the
executor transport uses (:mod:`repro.storage.serialization`).  Each accepted
run executes a full :func:`~repro.experiments.runner.run_lifecycle` on its
own :class:`~repro.execution.executors.DistributedSession`, so several runs
share the warm worker processes concurrently — the session multiplexing of
protocol version 3 — instead of each run paying worker startup or queuing
behind a per-run coordinator.

Admission scheduling is pluggable (:mod:`repro.service.scheduler`): the
default ``"fifo"`` policy serves submissions in arrival order, while
``"fair"`` gives per-tenant weighted fair sharing with priority classes
— a higher-priority submission jumps the queued line, and one tenant's
burst cannot starve another tenant's next iteration.  Scheduling only
decides *start* order among queued runs; once started, runs share
workers fairly through the fleet's round-robin session dispatch, and
running work is never preempted.  A *queued* run whose submitter closes
its connection is cancelled without ever occupying a runner.

Service wire protocol (client side in :mod:`repro.service.client`)::

    client:  ("submit", spec)
    daemon:  ("accepted", run_id, admission_dict)
             ("progress", run_id, info_dict)      # one per iteration
             ("done", run_id, payload)            # terminal, or:
             ("failed", run_id, message)          # terminal

``admission_dict`` reports the run's effective ``tenant`` and
``priority``, the daemon's ``scheduler`` name, the deterministic
``queued``/``active`` counter split at admission, and ``position`` — the
policy-aware count of queued runs guaranteed to start first.

``spec`` is a plain dict (see :func:`validate_spec`) naming the workload,
iteration count, scale, seed, Helix materialization policy, cost model,
and optionally the submitting ``tenant`` and a ``priority``.
``payload`` is JSON-serializable: the lifecycle summary plus the
equivalence harness's canonical per-iteration views
(:func:`~repro.execution.equivalence.canonical_lifecycle`), which is what
makes a served run directly comparable to an inline run of the same spec.
"""

from __future__ import annotations

import itertools
import re
import select
import socket
import threading
import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..exceptions import ExecutionError
from ..execution.clock import SimulatedCostModel
from ..execution.equivalence import canonical_lifecycle
from ..execution.executors import (
    DistributedExecutor,
    _send_message,
    parse_worker_address,
)
from ..storage.serialization import PROTOCOL_VERSION, recv_message
from ..experiments.runner import LifecycleResult, run_lifecycle
from ..systems.helix import HelixSystem
from ..workloads.base import get_workload
from .scheduler import SCHEDULERS, SchedulerPolicy, make_scheduler

__all__ = [
    "ServeDaemon",
    "validate_spec",
    "build_system",
    "run_spec",
    "lifecycle_payload",
    "POLICIES",
    "COST_MODELS",
    "DEFAULT_TENANT",
    "PRIORITY_RANGE",
]

#: Helix materialization policies a spec may name, mapped to the
#: :class:`HelixSystem` variant factories.
POLICIES = {
    "opt": HelixSystem.opt,
    "am": HelixSystem.always_materialize,
    "nm": HelixSystem.never_materialize,
}

#: Cost models a spec may name.  ``"simulated"`` charges deterministic
#: declared times, so a served run is bit-comparable to an inline run;
#: ``"measured"`` charges wall clock (timings then legitimately differ).
COST_MODELS = ("simulated", "measured")

#: Tenant a spec that names none is accounted under.
DEFAULT_TENANT = "default"

#: Inclusive priority bounds a spec may request (larger = more urgent).
PRIORITY_RANGE = (0, 9)

_TENANT_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def validate_spec(spec: Any) -> Dict[str, Any]:
    """Normalize and validate a submitted workload spec.

    Returns a dict with exactly the keys ``workload``, ``iterations``,
    ``scale``, ``seed``, ``policy``, ``cost_model``, ``tenant`` and
    ``priority``.  Raises :class:`ExecutionError` on anything malformed,
    so the daemon can refuse a bad submission at admission time instead
    of failing mid-run.

    ``tenant`` (default ``"default"``) names the fair-share queue the run
    is accounted under; ``priority`` (default 0, within
    :data:`PRIORITY_RANGE`) orders it against other queued runs.  Both
    are carried — and validated — under every scheduler, but only the
    fair policy acts on them.
    """
    if not isinstance(spec, dict):
        raise ExecutionError(f"run spec must be a dict, got {type(spec).__name__}")
    known = {
        "workload", "iterations", "scale", "seed", "policy", "cost_model",
        "tenant", "priority",
    }
    unknown = sorted(set(spec) - known)
    if unknown:
        raise ExecutionError(f"run spec has unknown field(s): {unknown}")
    workload = spec.get("workload")
    if not isinstance(workload, str):
        raise ExecutionError("run spec needs a workload name (string)")
    try:
        get_workload(workload)
    except KeyError as exc:
        raise ExecutionError(str(exc)) from None
    try:
        iterations = int(spec.get("iterations", 0))
        scale = float(spec.get("scale", 1.0))
        seed = int(spec.get("seed", 7))
    except (TypeError, ValueError) as exc:
        raise ExecutionError(f"run spec has a non-numeric field: {exc}") from None
    if iterations < 0:
        raise ExecutionError("iterations must be >= 0 (0 = workload default)")
    if scale <= 0:
        raise ExecutionError("scale must be positive")
    policy = spec.get("policy", "opt")
    if policy not in POLICIES:
        raise ExecutionError(
            f"unknown policy {policy!r}; expected one of {sorted(POLICIES)}"
        )
    cost_model = spec.get("cost_model", "simulated")
    if cost_model not in COST_MODELS:
        raise ExecutionError(
            f"unknown cost_model {cost_model!r}; expected one of {list(COST_MODELS)}"
        )
    tenant = spec.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not _TENANT_PATTERN.match(tenant):
        raise ExecutionError(
            f"tenant must be 1-64 characters of [A-Za-z0-9._-] starting "
            f"alphanumeric, got {tenant!r}"
        )
    try:
        priority = int(spec.get("priority", PRIORITY_RANGE[0]))
    except (TypeError, ValueError) as exc:
        raise ExecutionError(f"run spec has a non-numeric priority: {exc}") from None
    if not PRIORITY_RANGE[0] <= priority <= PRIORITY_RANGE[1]:
        raise ExecutionError(
            f"priority must be within {PRIORITY_RANGE[0]}..{PRIORITY_RANGE[1]}, "
            f"got {priority}"
        )
    return {
        "workload": workload,
        "iterations": iterations,
        "scale": scale,
        "seed": seed,
        "policy": policy,
        "cost_model": cost_model,
        "tenant": tenant,
        "priority": priority,
    }


def build_system(spec: Dict[str, Any]) -> HelixSystem:
    """Build the Helix variant a validated spec names (executor unconfigured)."""
    factory = POLICIES[spec["policy"]]
    if spec["cost_model"] == "simulated":
        return factory(cost_model=SimulatedCostModel(), seed=spec["seed"])
    return factory(seed=spec["seed"])


def lifecycle_payload(result: LifecycleResult) -> Dict[str, Any]:
    """The JSON-serializable result payload of one served (or inline) run.

    Times are excluded from the canonical iteration views — they are the
    legitimately run-dependent part — while exact storage byte counts
    participate: the canonical serializer makes artifact sizes
    deterministic across process boundaries, so two payloads for the same
    spec are equal exactly when the runs were equivalent "modulo
    timing/memory", stored bytes included.
    """
    return {
        "summary": result.summary(),
        "iteration_types": result.iteration_types(),
        "iterations": canonical_lifecycle(result.iterations, include_times=False),
    }


def run_spec(
    spec: Dict[str, Any],
    executor: Any = "inline",
    on_iteration: Any = None,
) -> Dict[str, Any]:
    """Run a validated spec to completion and return its result payload.

    ``executor`` is anything :meth:`System.configure_executor` accepts — the
    daemon passes a :class:`DistributedSession`, the inline-verification
    path passes ``"inline"``.
    """
    system = build_system(spec)
    system.configure_executor(executor)
    try:
        result = run_lifecycle(
            system,
            spec["workload"],
            n_iterations=spec["iterations"],
            seed=spec["seed"],
            scale=spec["scale"],
            on_iteration=on_iteration,
        )
    finally:
        system.close_executor()
    return lifecycle_payload(result)


class _RunRecord:
    """One admitted submission travelling through the daemon.

    ``state`` moves ``queued -> active -> finished`` (or ``queued ->
    cancelled``/``failed`` for runs that never start); the disconnect
    watcher reads it to know when the record stopped being its business.
    Schedulers consult ``tenant`` and ``priority``.
    """

    __slots__ = (
        "run_id", "spec", "sock", "send_lock", "client_gone", "tenant",
        "priority", "state", "protocol",
    )

    def __init__(
        self,
        run_id: str,
        spec: Dict[str, Any],
        sock: socket.socket,
        protocol: int = PROTOCOL_VERSION,
    ):
        self.run_id = run_id
        self.spec = spec
        self.sock = sock
        self.send_lock = threading.Lock()
        self.client_gone = False
        self.tenant = spec.get("tenant", DEFAULT_TENANT)
        self.priority = int(spec.get("priority", PRIORITY_RANGE[0]))
        self.state = "queued"
        #: Protocol version the client stamped on its submit frame; every
        #: progress/terminal frame back to it is sent at this version (a
        #: v3 client gets plain-pickle frames — same negotiated fallback
        #: as the worker wire).
        self.protocol = protocol

    def send(self, message: Tuple[Any, ...]) -> None:
        """Best-effort frame to the submitter; a vanished client is not fatal."""
        if self.client_gone:
            return
        try:
            _send_message(self.sock, message, self.send_lock, version=self.protocol)
        except Exception:  # noqa: BLE001 - client gone; the run itself continues
            self.client_gone = True

    def client_alive(self) -> bool:
        """Zero-byte peek for EOF: is the submitter still connected?

        Clients send nothing after the submit frame, so a readable socket
        means either EOF (client gone) or a protocol violation; only a
        clean zero-byte read or a socket error marks the client gone.
        """
        if self.client_gone:
            return False
        try:
            previous = self.sock.gettimeout()
            self.sock.settimeout(0)
            try:
                data = self.sock.recv(1, socket.MSG_PEEK)
            finally:
                self.sock.settimeout(previous)
        except (BlockingIOError, InterruptedError):
            return True  # nothing to read: the connection is open and quiet
        except OSError:
            self.client_gone = True
            return False
        if data == b"":
            self.client_gone = True
            return False
        return True  # stray inbound bytes; still connected

    def close(self) -> None:
        try:
            # shutdown() first: close() alone does not reliably wake a
            # thread blocked reading this socket (the disconnect watcher).
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class ServeDaemon:
    """Long-lived Helix service: one worker fleet, many concurrent runs.

    Parameters
    ----------
    host, port:
        Listening address for submissions (``port=0`` binds an ephemeral
        port; read :attr:`address` after :meth:`start`).
    max_workers:
        Locally-spawned worker count for the owned fleet (mutually
        exclusive with ``workers``, exactly like
        :class:`DistributedExecutor`).
    workers:
        Pre-started remote worker addresses (``"host:port"``) the fleet
        connects to instead of spawning.
    max_concurrent_runs:
        Runner threads draining the admission scheduler — the maximum
        number of workflow runs executing on the fleet at once.  Further
        submissions queue under the scheduler policy and report their
        position at admission.
    scheduler:
        Admission policy: ``"fifo"`` (default, arrival order), ``"fair"``
        (per-tenant weighted fair share with priority classes), or a
        ready :class:`~repro.service.scheduler.SchedulerPolicy` instance.
    tenant_weights:
        Fair-share weights by tenant name (fair scheduler only); unnamed
        tenants weigh 1.
    heartbeat_interval, fetch_timeout:
        Forwarded to the owned fleet.
    peer_fetch, worker_cache_bytes:
        Artifact-plane knobs forwarded to the owned fleet: whether workers
        transfer artifacts worker-to-worker, and each worker's cache-tier
        byte budget (see ``docs/artifacts.md``).  :meth:`stats` reports the
        plane's reuse counters under ``"artifact_plane"`` — kept readable
        after :meth:`stop` (snapshotted before the fleet shuts down).

    Lifecycle: :meth:`start` warms the fleet and opens the listener;
    :meth:`stop` drains, fails still-queued submissions, and shuts the
    fleet down.  Usable as a context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: Optional[int] = None,
        workers: Optional[Sequence[Union[str, Tuple[str, int]]]] = None,
        max_concurrent_runs: int = 2,
        scheduler: Union[str, SchedulerPolicy] = "fifo",
        tenant_weights: Optional[Dict[str, float]] = None,
        heartbeat_interval: float = 0.5,
        fetch_timeout: float = 60.0,
        peer_fetch: bool = True,
        worker_cache_bytes: Optional[int] = None,
    ) -> None:
        if max_concurrent_runs < 1:
            raise ExecutionError("max_concurrent_runs must be at least 1")
        self.host = host
        self.port = port
        self.max_concurrent_runs = int(max_concurrent_runs)
        self._fleet = DistributedExecutor(
            max_workers=max_workers,
            workers=workers,
            heartbeat_interval=heartbeat_interval,
            fetch_timeout=fetch_timeout,
            fetch_inputs=True,
            peer_fetch=peer_fetch,
            worker_cache_bytes=worker_cache_bytes,
        )
        #: Artifact-plane stats frozen at stop() time, so operators can read
        #: reuse counters after the fleet (and its workers) are gone.
        self._plane_snapshot: Optional[Dict[str, Any]] = None
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._scheduler = make_scheduler(scheduler, tenant_weights)
        self._run_seq = itertools.count(1)
        self._stopping = threading.Event()
        #: Serializes admission against stop(): an admission holds it from
        #: the stop check through the scheduler put, and stop() holds it
        #: both to raise the stop flag and for the final drain, so a
        #: submission racing with shutdown is either refused or drained —
        #: never stranded unanswered.
        self._admit_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._queued = 0
        self._active = 0
        self._peak_active = 0
        self._completed: List[str] = []
        self._failed: List[str] = []
        self._cancelled: List[str] = []
        self._tenants: Dict[str, Dict[str, int]] = {}
        self._started = False

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> Tuple[str, int]:
        """Warm the worker fleet, open the listener; returns the bound address."""
        if self._started:
            return self.address
        self._scheduler.open()
        self._plane_snapshot = None  # a restart reports live counters again
        self._fleet.start()  # strict first start: a bad fleet config fails here
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        # A timeout lets the accept loop poll the stop flag: closing a
        # socket does not reliably wake a thread blocked in accept().
        listener.settimeout(0.25)
        self._listener = listener
        self._stopping.clear()
        self._threads = [
            threading.Thread(
                target=self._accept_loop, daemon=True, name="repro-serve-accept"
            )
        ]
        for index in range(self.max_concurrent_runs):
            self._threads.append(
                threading.Thread(
                    target=self._runner_loop,
                    daemon=True,
                    name=f"repro-serve-run-{index}",
                )
            )
        for thread in self._threads:
            thread.start()
        self._started = True
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` submissions connect to."""
        if self._listener is None:
            raise ExecutionError("daemon not started")
        return self._listener.getsockname()[:2]

    def stop(self, join_timeout: float = 30.0) -> None:
        """Refuse new submissions, fail queued ones, drain and stop the fleet.

        Active runs are allowed to finish; anything still *queued* when the
        stop flag goes up is failed without running — closing the scheduler
        wakes every idle runner, and a runner that dequeued a record just
        before the flag fails it rather than executing it, so stop never
        waits behind a backlog, only behind the runs already executing.
        The final drain below catches records no runner ever dequeued and,
        held under the admission lock, any submission that raced with the
        flag.

        A runner still mid-run after ``join_timeout`` seconds is reported
        with a :class:`RuntimeWarning` and re-joined after the fleet drain
        (fleet shutdown cancels its outstanding tasks, which normally
        unblocks it); a runner alive even then is reported again rather
        than silently leaked.
        """
        if not self._started:
            return
        with self._admit_lock:
            # Flag + close under the admission lock: an admission that
            # already passed the stop check finishes its put first, so the
            # scheduler never refuses a record whose client was told
            # "accepted".
            self._stopping.set()
            self._scheduler.close()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for thread in self._threads:
            thread.join(timeout=join_timeout)
        stragglers = [t for t in self._threads if t.is_alive()]
        self._threads = []
        if stragglers:
            names = ", ".join(t.name for t in stragglers)
            warnings.warn(
                f"ServeDaemon.stop: runner thread(s) still mid-run after "
                f"{join_timeout:.1f}s: {names}; shutting the fleet down and "
                f"re-joining",
                RuntimeWarning,
                stacklevel=2,
            )
        # Anything still queued never got a runner: tell its submitter.
        # Admissions serialize against this drain via the lock, so a record
        # queued concurrently with stop() is either refused at admission or
        # sitting in the scheduler here — never stranded unanswered.
        with self._admit_lock:
            for record in self._scheduler.drain():
                self._fail_unrun(record)
        # Freeze plane counters before the fleet goes away: worker stats
        # arrived on heartbeats and survive in the coordinator, but the
        # aggregate must stay readable from stats() after shutdown.
        self._plane_snapshot = self._fleet.artifact_plane_stats()
        self._fleet.shutdown()
        for thread in stragglers:
            thread.join(timeout=join_timeout)
        leaked = [t.name for t in stragglers if t.is_alive()]
        if leaked:
            warnings.warn(
                f"ServeDaemon.stop: runner thread(s) survived the fleet "
                f"shutdown and a second {join_timeout:.1f}s join: "
                f"{', '.join(leaked)}",
                RuntimeWarning,
                stacklevel=2,
            )
        self._started = False

    def _fail_unrun(self, record: _RunRecord) -> None:
        """Fail a queued-but-never-started record, keeping stats consistent."""
        with self._stats_lock:
            self._queued -= 1
            self._failed.append(record.run_id)
            counters = self._tenant_counters(record.tenant)
            counters["queued"] -= 1
            counters["failed"] += 1
            record.state = "failed"
        record.send(("failed", record.run_id, "daemon stopped before the run started"))
        record.close()

    def __enter__(self) -> "ServeDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ introspection
    def _tenant_counters(self, tenant: str) -> Dict[str, int]:
        """Per-tenant counter row; the stats lock must be held."""
        return self._tenants.setdefault(
            tenant,
            {"queued": 0, "active": 0, "completed": 0, "failed": 0, "cancelled": 0},
        )

    def stats(self) -> Dict[str, Any]:
        """Scheduler counters (tests and operators): active/peak/completed.

        ``tenants`` breaks queued/active/completed/failed/cancelled down
        by tenant; ``cancelled`` lists queued runs dropped because their
        submitter disconnected before they started.  ``artifact_plane``
        aggregates the fleet's content-addressed artifact tier counters —
        coordinator fetch/locate serving plus every worker's cache and
        peer-transfer stats (``docs/artifacts.md``); after :meth:`stop` it
        is the snapshot taken just before the fleet shut down.
        """
        plane = (
            self._plane_snapshot
            if self._plane_snapshot is not None
            else self._fleet.artifact_plane_stats()
        )
        with self._stats_lock:
            return {
                "scheduler": self._scheduler.name,
                "queued": self._queued,
                "active": self._active,
                "peak_active": self._peak_active,
                "completed": list(self._completed),
                "failed": list(self._failed),
                "cancelled": list(self._cancelled),
                "tenants": {name: dict(row) for name, row in self._tenants.items()},
                "artifact_plane": plane,
            }

    def worker_pids(self) -> Dict[str, int]:
        """Live worker PIDs of the owned fleet (see ``DistributedExecutor``)."""
        return self._fleet.worker_pids()

    # ------------------------------------------------------------------ loops
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed by stop()
            threading.Thread(
                target=self._handle_submission,
                args=(conn,),
                daemon=True,
                name="repro-serve-admit",
            ).start()

    def _handle_submission(self, conn: socket.socket) -> None:
        """Admit one connection: validate its spec, queue it FIFO, hand off."""
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn.settimeout(10.0)
        try:
            received = recv_message(conn)
            conn.settimeout(None)
        except Exception:  # noqa: BLE001 - reject peers that talk garbage
            conn.close()
            return
        message, peer_version = (
            received if received is not None else (None, PROTOCOL_VERSION)
        )
        if not (isinstance(message, tuple) and len(message) == 2 and message[0] == "submit"):
            try:
                _send_message(
                    conn,
                    ("failed", "", "expected a (submit, spec) frame"),
                    version=peer_version,
                )
            except Exception:  # noqa: BLE001 - best-effort refusal
                pass
            conn.close()
            return
        try:
            spec = validate_spec(message[1])
        except ExecutionError as exc:
            try:
                _send_message(conn, ("failed", "", str(exc)), version=peer_version)
            except Exception:  # noqa: BLE001 - best-effort refusal
                pass
            conn.close()
            return
        record = _RunRecord(
            f"run-{next(self._run_seq)}", spec, conn, protocol=peer_version
        )
        # Check-and-queue under the admission lock: once stop() has drained
        # the scheduler (holding this lock), no record can slip in behind
        # the drain and leave its client blocked on a terminal frame that
        # never comes.  The "accepted" frame is tiny and the socket fresh,
        # so sending it under the lock cannot stall stop() behind a slow
        # peer — and it must go out before the record becomes visible to
        # runners, or a fast run's progress frames could outrace it.
        with self._admit_lock:
            if self._stopping.is_set():
                refused = True
            else:
                refused = False
                with self._stats_lock:
                    # The queued/active split at admission.  Their sum is
                    # exact (runners move a run between the counters under
                    # this lock); the split itself can lag a dequeue by an
                    # instant.
                    admission = {
                        "tenant": record.tenant,
                        "priority": record.priority,
                        "scheduler": self._scheduler.name,
                        "queued": self._queued,
                        "active": self._active,
                        "position": self._scheduler.queued_ahead(record),
                    }
                    self._queued += 1
                    self._tenant_counters(record.tenant)["queued"] += 1
                record.send(("accepted", record.run_id, admission))
                self._scheduler.put(record)
        if refused:
            record.send(("failed", "", "daemon is stopping"))
            record.close()
            return
        # The admission thread lives on as the disconnect watcher while
        # the record waits its turn: a queued run whose submitter hangs up
        # is cancelled instead of occupying a runner later.
        self._watch_queued_client(record)

    def _watch_queued_client(self, record: _RunRecord) -> None:
        """Cancel ``record`` if its submitter disconnects while queued.

        Watches the submission socket with ``select`` (which leaves the
        socket's blocking state alone — a runner may start streaming
        progress on it at any moment) until the record leaves the queued
        state or the peer goes away.  Clients send nothing after the
        submit frame, so any inbound readability is either EOF or a
        protocol violation; only EOF/socket errors cancel.
        """
        while record.state == "queued" and not self._stopping.is_set():
            try:
                readable, _, _ = select.select([record.sock], [], [], 0.5)
            except (OSError, ValueError):
                break  # socket closed under us: the record left the queue
            if not readable:
                continue
            try:
                data = record.sock.recv(1)
            except OSError:
                data = b""
            if data != b"":
                continue  # stray bytes from a sloppy client; ignore
            # EOF while queued: pull the record back out of the scheduler.
            # A False return means a runner (or the stop drain) claimed it
            # first — then the dequeue-time liveness check is in charge.
            if self._scheduler.cancel(record):
                with self._stats_lock:
                    self._queued -= 1
                    self._cancelled.append(record.run_id)
                    counters = self._tenant_counters(record.tenant)
                    counters["queued"] -= 1
                    counters["cancelled"] += 1
                    record.state = "cancelled"
                record.client_gone = True
                record.close()
            return

    def _runner_loop(self) -> None:
        while True:
            record = self._scheduler.get()
            if record is None:
                return  # scheduler closed: stop() drains what remains
            if self._stopping.is_set():
                # stop() was called while this record sat in the queue: fail
                # it without running (executing here would make stop() wait
                # out — and then cancel mid-run — an entire queued backlog).
                self._fail_unrun(record)
                continue
            # A run whose submitter vanished while it queued must not
            # occupy a runner slot and the fleet: nobody can ever read the
            # result.  The watcher usually cancels such records before
            # they get here; this dequeue-time check catches a client that
            # hung up in the handoff window.
            if not record.client_alive():
                with self._stats_lock:
                    self._queued -= 1
                    self._failed.append(record.run_id)
                    counters = self._tenant_counters(record.tenant)
                    counters["queued"] -= 1
                    counters["failed"] += 1
                    record.state = "failed"
                record.close()
                continue
            with self._stats_lock:
                self._queued -= 1
                self._active += 1
                self._peak_active = max(self._peak_active, self._active)
                counters = self._tenant_counters(record.tenant)
                counters["queued"] -= 1
                counters["active"] += 1
                record.state = "active"
            # Counters update before the terminal frame goes out, so a
            # submitter that just saw "done" observes consistent stats().
            try:
                payload = self._execute(record)
            except Exception as exc:  # noqa: BLE001 - reported to the submitter
                with self._stats_lock:
                    self._failed.append(record.run_id)
                    self._tenant_counters(record.tenant)["failed"] += 1
                record.send(
                    ("failed", record.run_id, f"{type(exc).__name__}: {exc}")
                )
            else:
                with self._stats_lock:
                    self._completed.append(record.run_id)
                    self._tenant_counters(record.tenant)["completed"] += 1
                record.send(("done", record.run_id, payload))
            finally:
                record.state = "finished"
                record.close()
                with self._stats_lock:
                    self._active -= 1
                    self._tenant_counters(record.tenant)["active"] -= 1

    def _execute(self, record: _RunRecord) -> Dict[str, Any]:
        """Run one admitted spec on its own session of the shared fleet."""
        session = self._fleet.session()

        def _progress(spec_it, stats) -> None:
            record.send(
                (
                    "progress",
                    record.run_id,
                    {
                        "iteration": spec_it.index,
                        "kind": spec_it.kind,
                        "executed_nodes": len(stats.node_times),
                        "total_time": float(stats.total_time),
                    },
                )
            )

        try:
            return run_spec(record.spec, executor=session, on_iteration=_progress)
        finally:
            # cancel=True: on failure nothing may stay queued on the fleet.
            session.shutdown(cancel=True)


def parse_service_address(spec: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """Canonicalize a ``host:port`` service address (same rules as workers)."""
    return parse_worker_address(spec)
