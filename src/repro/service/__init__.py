"""Helix-as-a-service: a long-lived daemon serving workflow runs.

:mod:`repro.service.daemon`
    :class:`ServeDaemon` — owns a :class:`DistributedExecutor` worker
    fleet, accepts run submissions over the framed wire protocol, and
    schedules them across ``max_concurrent_runs`` runner threads, one
    :class:`DistributedSession` per run.
:mod:`repro.service.scheduler`
    Pluggable admission policies: :class:`FifoScheduler` (arrival
    order, the default) and :class:`FairScheduler` (per-tenant weighted
    fair share with priority classes).
:mod:`repro.service.client`
    :class:`ServiceClient` / :class:`RunHandle` — submit specs, stream
    progress, collect canonical run stats; ``inline_reference`` +
    ``assert_payloads_equivalent`` tie served runs back to the
    equivalence harness.
:mod:`repro.service.cli`
    The ``repro serve`` and ``repro submit`` command line entry points.
"""

from .client import (
    RunHandle,
    ServiceClient,
    assert_payloads_equivalent,
    inline_reference,
    submit_run,
)
from .daemon import ServeDaemon, build_system, lifecycle_payload, run_spec, validate_spec
from .scheduler import (
    SCHEDULERS,
    FairScheduler,
    FifoScheduler,
    SchedulerPolicy,
    make_scheduler,
)

__all__ = [
    "ServeDaemon",
    "ServiceClient",
    "RunHandle",
    "submit_run",
    "inline_reference",
    "assert_payloads_equivalent",
    "validate_spec",
    "build_system",
    "run_spec",
    "lifecycle_payload",
    "SchedulerPolicy",
    "FifoScheduler",
    "FairScheduler",
    "SCHEDULERS",
    "make_scheduler",
]
