"""The Helix system: cross-iteration optimization with pluggable materialization.

This is the full pipeline from the paper's Figure 1/2 lifecycle:

1. **DAG compilation** — the workflow is compiled and sliced to its outputs
   (program slicing / output-driven pruning).
2. **Change tracking** — node signatures are compared against everything seen
   in previous iterations; changed (original) nodes must be recomputed and
   their stale materializations are purged.
3. **DAG optimization (OPT-EXEC-PLAN)** — per-node compute/load estimates are
   assembled from the statistics store and the max-flow-based solver assigns
   every node a state in {compute, load, prune}.
4. **Execution + materialization (OPT-MAT-PLAN)** — the execution engine runs
   the plan; at every out-of-scope point the configured materialization
   policy (streaming heuristic for HELIX OPT, always for HELIX AM, never for
   HELIX NM) decides whether to persist the node.

The three paper variants are exposed through :meth:`HelixSystem.opt`,
:meth:`HelixSystem.always_materialize` and :meth:`HelixSystem.never_materialize`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence

from ..core.operators import RunContext
from ..core.signatures import ChangeTracker, compute_node_signatures, diff_signatures
from ..core.workflow import Workflow
from ..execution.clock import CostModel, MeasuredCostModel
from ..execution.tracker import RunStats
from ..optimizer.metrics import CostEstimator, StatsStore
from ..optimizer.oep import solve_oep
from ..optimizer.omp import (
    AlwaysMaterialize,
    MaterializationPolicy,
    NeverMaterialize,
    StreamingMaterializationPolicy,
)
from ..storage.store import DiskStore, InMemoryStore, MaterializationStore
from .base import System, _resolve_executor_arg

__all__ = ["HelixSystem"]

#: Default storage budget used in the paper's experiments (10 GB).
DEFAULT_STORAGE_BUDGET = 10 * 1024 ** 3


class HelixSystem(System):
    """Helix with a configurable materialization policy.

    Parameters
    ----------
    policy:
        Materialization policy instance; defaults to the streaming heuristic
        (HELIX OPT).
    store:
        Materialization store; defaults to an in-memory store with the
        paper's 10 GB budget.  Pass a :class:`~repro.storage.DiskStore` for
        real I/O.
    cost_model:
        How per-node times are charged; defaults to measured wall-clock time.
    seed:
        Seed propagated to operators through the :class:`RunContext`.
    executor:
        Executor strategy for iterations: ``"inline"`` (default),
        ``"thread"`` (DAG-level parallelism over a thread pool) or
        ``"process"`` (CPU-bound parallelism over a process pool).
    engine:
        Deprecated alias for ``executor`` using the PR 2 engine names
        (``"serial"`` -> ``"inline"``, ``"parallel"`` -> ``"thread"``).
    max_workers:
        Worker count for pool-backed executors (None = library default).
    workers:
        Remote worker addresses (``"host:port"``) for the distributed
        executor's address-configured mode (requires
        ``executor="distributed"``).
    """

    def __init__(
        self,
        policy: Optional[MaterializationPolicy] = None,
        store: Optional[MaterializationStore] = None,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
        storage_budget: Optional[int] = DEFAULT_STORAGE_BUDGET,
        name: Optional[str] = None,
        executor: Optional[str] = None,
        engine: Optional[str] = None,
        max_workers: Optional[int] = None,
        workers: Optional[Sequence[str]] = None,
    ):
        self.policy = policy if policy is not None else StreamingMaterializationPolicy()
        self.store = store if store is not None else InMemoryStore(budget_bytes=storage_budget)
        self.cost_model = cost_model if cost_model is not None else MeasuredCostModel()
        self.seed = seed
        self.stats = StatsStore()
        self.tracker = ChangeTracker()
        self.estimator = CostEstimator(self.stats)
        self.name = name or f"helix-{self.policy.name}"
        self.configure_executor(
            _resolve_executor_arg(executor, engine), max_workers, workers=workers
        )

    # ------------------------------------------------------------------ variants
    @classmethod
    def opt(cls, **kwargs) -> "HelixSystem":
        """HELIX OPT: streaming materialization heuristic (Algorithm 2)."""
        return cls(policy=StreamingMaterializationPolicy(), name="helix-opt", **kwargs)

    @classmethod
    def always_materialize(cls, **kwargs) -> "HelixSystem":
        """HELIX AM: materialize every intermediate result."""
        return cls(policy=AlwaysMaterialize(), name="helix-am", **kwargs)

    @classmethod
    def never_materialize(cls, **kwargs) -> "HelixSystem":
        """HELIX NM: never materialize intermediate results."""
        return cls(policy=NeverMaterialize(), name="helix-nm", **kwargs)

    # ------------------------------------------------------------------ lifecycle
    def reset(self) -> None:
        self.store.clear()
        self.stats = StatsStore()
        self.estimator = CostEstimator(self.stats)
        self.tracker.reset()

    def storage_bytes(self) -> int:
        return self.store.total_bytes()

    def run_iteration(
        self,
        workflow: Workflow,
        iteration: int,
        iteration_type: str = "",
    ) -> RunStats:
        # 1. DAG compilation + output-driven pruning.
        dag = workflow.compile().sliced_to_outputs()

        # 2. Change tracking: classify nodes as original vs. potentially reusable.
        signatures = compute_node_signatures(dag)
        stored_signatures = {record.signature for record in self.store.artifacts()}
        diff = diff_signatures(signatures, self.tracker.previous_signatures, stored_signatures)
        original = set(diff.original)

        # Purge stale materializations of changed operators before execution.
        for name in dag.node_names:
            if name in original:
                self.store.purge_node(name, keep_signature=signatures[name])

        # 3. OPT-EXEC-PLAN: assemble cost estimates and solve for node states.
        compute_time: Dict[str, float] = {}
        load_time: Dict[str, float] = {}
        for name in dag.node_names:
            signature = signatures[name]
            node = dag.node(name)
            compute_time[name] = self.estimator.compute_time(signature, node.operator)
            load_time[name] = self.estimator.load_time(signature, self.store.has(signature))
        plan = solve_oep(dag, compute_time, load_time, forced_compute=original)

        # 4. Execution with streaming materialization decisions.
        engine = self._create_engine(
            store=self.store,
            policy=self.policy,
            cost_model=self.cost_model,
            stats=self.stats,
            context=RunContext(seed=self.seed),
        )
        run_stats = engine.execute(dag, plan, signatures, iteration=iteration)
        run_stats.iteration_type = iteration_type

        # Commit signatures so the next iteration can detect changes.
        self.tracker.commit(dag, signatures)
        return run_stats
