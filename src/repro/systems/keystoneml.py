"""KeystoneML comparator: one-shot optimization, no cross-iteration reuse.

KeystoneML (Sparks et al., ICDE 2017) optimizes the single-shot execution of a
pipeline — common sub-expression elimination and in-memory caching within one
run — but materializes nothing across runs, so every iteration recomputes the
entire workflow (Section 6.1 of the paper).  This comparator reproduces that
policy on the shared substrate:

* the DAG is sliced to its outputs (KeystoneML also avoids computing unused
  branches),
* every remaining node is computed; nothing is loaded and nothing is
  materialized,
* an optional L/I overhead factor models the caching misses the paper
  observed ("its caching optimizer failing to cache the training data"),
  disabled by default.

KeystoneML specializes in classification over structured inputs, so the
structured-prediction IE workflow is unsupported (Table 2).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.operators import Component, RunContext
from ..core.signatures import compute_node_signatures
from ..core.workflow import Workflow
from ..execution.clock import CostModel, MeasuredCostModel
from ..execution.tracker import RunStats
from ..optimizer.metrics import StatsStore
from ..optimizer.oep import solve_oep
from ..optimizer.omp import NeverMaterialize
from ..storage.store import InMemoryStore
from .base import System, _resolve_executor_arg

__all__ = ["KeystoneMLSystem"]

_UNSUPPORTED_WORKLOADS = frozenset({"nlp"})


class _ComponentOverheadCostModel(CostModel):
    """Wrap a cost model, multiplying the charge of selected components."""

    def __init__(self, base: CostModel, factors: Dict[str, float]):
        super().__init__(base.cluster)
        self.base = base
        self.factors = dict(factors)

    def compute_cost(self, operator, component, input_sizes, measured_seconds):
        charged = self.base.compute_cost(operator, component, input_sizes, measured_seconds)
        return charged * self.factors.get(component.value, 1.0)

    def io_cost(self, size_bytes, measured_seconds):
        return self.base.io_cost(size_bytes, measured_seconds)

    def estimate_io_cost(self, size_bytes):
        return self.base.estimate_io_cost(size_bytes)


class KeystoneMLSystem(System):
    """No cross-iteration materialization; recompute everything each iteration."""

    name = "keystoneml"

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
        li_overhead_factor: float = 1.0,
        executor: Optional[str] = None,
        engine: Optional[str] = None,
        max_workers: Optional[int] = None,
    ):
        base = cost_model if cost_model is not None else MeasuredCostModel()
        if li_overhead_factor != 1.0:
            base = _ComponentOverheadCostModel(base, {Component.LI.value: li_overhead_factor})
        self.cost_model = base
        self.seed = seed
        self.configure_executor(_resolve_executor_arg(executor, engine), max_workers)

    def supports(self, workload_name: str) -> bool:
        return workload_name not in _UNSUPPORTED_WORKLOADS

    def reset(self) -> None:
        return

    def run_iteration(
        self,
        workflow: Workflow,
        iteration: int,
        iteration_type: str = "",
    ) -> RunStats:
        dag = workflow.compile().sliced_to_outputs()
        signatures = compute_node_signatures(dag)
        compute_time = {name: 1.0 for name in dag.node_names}
        load_time = {name: float("inf") for name in dag.node_names}
        # Force every node to be computed: no prior results exist by policy.
        plan = solve_oep(dag, compute_time, load_time, forced_compute=dag.node_names)
        engine = self._create_engine(
            store=InMemoryStore(),
            policy=NeverMaterialize(),
            cost_model=self.cost_model,
            stats=StatsStore(),
            context=RunContext(seed=self.seed),
            materialize_outputs=False,
        )
        run_stats = engine.execute(dag, plan, signatures, iteration=iteration)
        run_stats.iteration_type = iteration_type
        return run_stats
