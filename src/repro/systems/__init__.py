"""Systems under comparison: Helix (OPT/AM/NM), KeystoneML and DeepDive."""

from .base import System
from .deepdive import DeepDiveSystem
from .helix import HelixSystem
from .keystoneml import KeystoneMLSystem

__all__ = ["System", "DeepDiveSystem", "HelixSystem", "KeystoneMLSystem"]
