"""DeepDive comparator: materialize everything, no automatic reuse decisions.

DeepDive (Zhang et al.) is specialized for information extraction: all
feature-extraction intermediates are written to its database backend, data
preprocessing runs through Python/shell scripts rather than a parallel
dataflow engine, and the learning/evaluation components are not configurable.
For the evaluation this translates to the following policy, reproduced here
on the shared substrate (Sections 6.1 and 6.5):

* every iteration recomputes the entire workflow (no automatic reuse of the
  materialized results across iterations),
* every intermediate is materialized, paying the write cost every iteration
  (artifacts are keyed per-iteration, so the cost recurs like DeepDive's
  TSV/database dumps do),
* DPR work is charged a slowdown factor (default 2x) modelling the script-based
  preprocessing versus Spark (the paper measures ~2x on census DPR iterations),
* only the Census and IE workflows are supported, and in the paper only their
  DPR iterations are shown.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.operators import Component, RunContext
from ..core.signatures import compute_node_signatures
from ..core.workflow import Workflow
from ..execution.clock import CostModel, MeasuredCostModel
from ..execution.tracker import RunStats
from ..optimizer.metrics import StatsStore
from ..optimizer.oep import solve_oep
from ..optimizer.omp import AlwaysMaterialize
from ..storage.store import InMemoryStore
from .base import System, _resolve_executor_arg

__all__ = ["DeepDiveSystem"]

_SUPPORTED_WORKLOADS = frozenset({"census", "nlp"})


class _DPRSlowdownCostModel(CostModel):
    """Multiply DPR compute charges by a slowdown factor (script-based preprocessing)."""

    def __init__(self, base: CostModel, dpr_factor: float):
        super().__init__(base.cluster)
        self.base = base
        self.dpr_factor = dpr_factor

    def compute_cost(self, operator, component, input_sizes, measured_seconds):
        charged = self.base.compute_cost(operator, component, input_sizes, measured_seconds)
        if component is Component.DPR:
            charged *= self.dpr_factor
        return charged

    def io_cost(self, size_bytes, measured_seconds):
        return self.base.io_cost(size_bytes, measured_seconds)

    def estimate_io_cost(self, size_bytes):
        return self.base.estimate_io_cost(size_bytes)


class DeepDiveSystem(System):
    """Materialize-everything, reuse-nothing comparator."""

    name = "deepdive"

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
        dpr_slowdown: float = 2.0,
        executor: Optional[str] = None,
        engine: Optional[str] = None,
        max_workers: Optional[int] = None,
    ):
        base = cost_model if cost_model is not None else MeasuredCostModel()
        self.cost_model = _DPRSlowdownCostModel(base, dpr_slowdown) if dpr_slowdown != 1.0 else base
        self.seed = seed
        self._iteration_storage: Dict[int, int] = {}
        self.configure_executor(_resolve_executor_arg(executor, engine), max_workers)

    def supports(self, workload_name: str) -> bool:
        return workload_name in _SUPPORTED_WORKLOADS

    def reset(self) -> None:
        self._iteration_storage.clear()

    def storage_bytes(self) -> int:
        return sum(self._iteration_storage.values())

    def run_iteration(
        self,
        workflow: Workflow,
        iteration: int,
        iteration_type: str = "",
    ) -> RunStats:
        dag = workflow.compile().sliced_to_outputs()
        signatures = compute_node_signatures(dag)
        compute_time = {name: 1.0 for name in dag.node_names}
        load_time = {name: float("inf") for name in dag.node_names}
        plan = solve_oep(dag, compute_time, load_time, forced_compute=dag.node_names)
        # A fresh store per iteration: DeepDive rewrites its extraction tables on
        # every run, so the write cost recurs and nothing is reused.
        store = InMemoryStore()
        engine = self._create_engine(
            store=store,
            policy=AlwaysMaterialize(),
            cost_model=self.cost_model,
            stats=StatsStore(),
            context=RunContext(seed=self.seed),
        )
        run_stats = engine.execute(dag, plan, signatures, iteration=iteration)
        run_stats.iteration_type = iteration_type
        self._iteration_storage[iteration] = store.total_bytes()
        run_stats.storage_bytes = self.storage_bytes()
        return run_stats
