"""System interface: how the compared systems execute workflow iterations.

The evaluation compares Helix (with three materialization policies) against
re-implementations of KeystoneML's and DeepDive's reuse behaviour on the same
execution substrate, so that measured differences reflect the reuse policies
rather than unrelated engineering differences.  Every system implements
:meth:`System.run_iteration`, which takes the workflow for the current
iteration and returns the :class:`~repro.execution.tracker.RunStats` observed
while executing it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional

from ..core.workflow import Workflow
from ..exceptions import ExecutionError
from ..execution.engine import ExecutionEngine
from ..execution.parallel import ENGINE_NAMES, create_engine
from ..execution.tracker import RunStats

__all__ = ["System"]


class System(ABC):
    """A workflow-execution system participating in the comparison."""

    #: Display name used in benchmark output.
    name: str = "system"

    #: Which execution engine iterations run on ("serial" or "parallel").
    engine: str = "serial"

    #: Worker count for the parallel engine (None = library default).
    max_workers: Optional[int] = None

    # ------------------------------------------------------------------ engine selection
    def configure_engine(
        self, engine: str = "serial", max_workers: Optional[int] = None
    ) -> "System":
        """Select the execution engine used by :meth:`run_iteration`.

        All systems share the same execution substrate, so engine selection
        is a system-level toggle: the reuse policies stay untouched and only
        the scheduler underneath them changes.
        """
        if engine not in ENGINE_NAMES:
            raise ExecutionError(
                f"unknown execution engine {engine!r}; expected one of {list(ENGINE_NAMES)}"
            )
        self.engine = engine
        self.max_workers = max_workers
        return self

    def _create_engine(self, **kwargs) -> ExecutionEngine:
        """Build the configured engine with system-provided components."""
        return create_engine(self.engine, max_workers=self.max_workers, **kwargs)

    @abstractmethod
    def run_iteration(
        self,
        workflow: Workflow,
        iteration: int,
        iteration_type: str = "",
    ) -> RunStats:
        """Execute one iteration of the workflow and return its statistics."""

    @abstractmethod
    def reset(self) -> None:
        """Discard all cross-iteration state (stores, statistics, signatures)."""

    def supports(self, workload_name: str) -> bool:
        """Whether the system supports a workload (Table 2 support matrix)."""
        del workload_name
        return True

    def storage_bytes(self) -> int:
        """Bytes of intermediate results currently persisted by the system."""
        return 0
