"""System interface: how the compared systems execute workflow iterations.

The evaluation compares Helix (with three materialization policies) against
re-implementations of KeystoneML's and DeepDive's reuse behaviour on the same
execution substrate, so that measured differences reflect the reuse policies
rather than unrelated engineering differences.  Every system implements
:meth:`System.run_iteration`, which takes the workflow for the current
iteration and returns the :class:`~repro.execution.tracker.RunStats` observed
while executing it.

All systems share the same execution substrate, so executor selection is a
system-level toggle (:meth:`System.configure_executor`): the reuse policies
stay untouched and only the task-dispatch strategy underneath them changes —
``"inline"`` (reference), ``"thread"`` (latency-bound parallelism),
``"process"`` (CPU-bound parallelism) or ``"distributed"`` (multi-worker
dispatch over sockets).  The deprecated engine API from the old
serial/parallel split (:meth:`System.configure_engine`, the ``engine``
attribute, the ``"serial"``/``"parallel"`` names) remains as a shim that
maps onto the executor strategies.

Worker-pool ownership (also documented in ``docs/executors.md``): executors
whose startup is expensive (``"process"``, ``"distributed"``) are
**auto-pooled** when configured by name — the system builds one executor
instance on first use, reuses it across every lifecycle iteration (engines
drain it between runs instead of destroying it), and owns its final
``shutdown`` (:meth:`System.close_executor`, also invoked when the executor
is reconfigured, and usable via ``with system: ...``).  A ready
:class:`Executor` *instance* passed to :meth:`System.configure_executor` is
caller-owned: the system never shuts it down.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from typing import Optional, Sequence

from ..core.workflow import Workflow
from ..exceptions import ExecutionError
from ..execution.engine import ExecutionEngine, create_engine
from ..execution.executors import (
    Executor,
    LEGACY_NAME_BY_EXECUTOR,
    create_executor,
    resolve_executor_name,
)
from ..execution.tracker import RunStats

__all__ = ["System", "AUTO_POOLED_EXECUTORS"]

#: Name-configured executor strategies whose worker pools are expensive
#: enough to start that the System keeps one owned instance alive across
#: lifecycle iterations instead of paying one pool fork per iteration.
AUTO_POOLED_EXECUTORS = ("process", "distributed")


def _resolve_executor_arg(
    executor: Optional[str], engine: Optional[str], default: str = "inline"
) -> str:
    """Pick the executor spec from the (new, legacy) constructor keywords.

    An explicitly passed legacy ``engine`` keyword warns, so every deprecated
    entry point is observable before the aliases are eventually removed.
    """
    if executor is not None:
        return executor
    if engine is not None:
        warnings.warn(
            "the engine= keyword is deprecated; use executor= "
            '("serial" -> "inline", "parallel" -> "thread")',
            DeprecationWarning,
            stacklevel=3,
        )
        return engine
    return default


class System(ABC):
    """A workflow-execution system participating in the comparison."""

    #: Display name used in benchmark output.
    name: str = "system"

    #: Which executor strategy iterations run on — a canonical name
    #: ("inline"|"thread"|"process") or a ready :class:`Executor` instance
    #: shared across iterations.
    executor_name: str | Executor = "inline"

    #: Worker count for pool-backed executors (None = library default).
    max_workers: Optional[int] = None

    #: Remote worker addresses ("host:port") for the distributed executor's
    #: address-configured mode (None = spawn workers locally).
    workers: Optional[Sequence[str]] = None

    #: System-owned executor instance backing a name-configured auto-pooled
    #: strategy (see :data:`AUTO_POOLED_EXECUTORS`); built lazily on first
    #: engine construction and closed by :meth:`close_executor`.
    _owned_executor: Optional[Executor] = None

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        # PR 2 subclasses could declare ``engine = "parallel"`` at class
        # level.  A plain string there would shadow the ``engine`` property
        # and be silently ignored by ``_create_engine`` (which reads
        # ``executor_name``), so translate it instead of letting it lie.
        legacy = cls.__dict__.get("engine")
        if isinstance(legacy, str):
            delattr(cls, "engine")
            cls.executor_name = resolve_executor_name(legacy)

    # ------------------------------------------------------------------ executor selection
    def configure_executor(
        self,
        executor: str | Executor = "inline",
        max_workers: Optional[int] = None,
        workers: Optional[Sequence[str]] = None,
    ) -> "System":
        """Select the executor strategy used by :meth:`run_iteration`.

        Parameters
        ----------
        executor:
            A canonical executor name (``"inline"``, ``"thread"``,
            ``"process"``, ``"distributed"``), one of the deprecated engine
            aliases (``"serial"`` -> ``"inline"``, ``"parallel"`` ->
            ``"thread"``), or a ready :class:`Executor` instance.
        max_workers:
            Worker count for pool-backed strategies; ``None`` uses the
            library default.  Rejected when ``executor`` is an instance
            (the instance already carries its own worker count).
        workers:
            Remote worker addresses (``"host:port"``) for the distributed
            executor's address-configured mode (pre-started ``python -m
            repro.execution.worker`` processes).  Only valid with
            ``executor="distributed"``; rejected for other names and for
            instances.

        Returns
        -------
        ``self``, for chaining.

        Raises
        ------
        ExecutionError
            On an unknown executor name or worker address, when
            ``max_workers``/``workers`` is combined with an executor
            instance, or when ``workers`` is combined with a
            non-distributed name.

        Pool ownership: the auto-pooled names (:data:`AUTO_POOLED_EXECUTORS`)
        give this system an owned instance that is reused across lifecycle
        iterations and closed by :meth:`close_executor`.  Passing a ready
        instance instead keeps its worker pools alive across iterations (the
        per-iteration engines only drain it) but leaves ownership with the
        caller, who runs the final ``executor.shutdown()``.  Reconfiguring
        always closes a previously-owned pool first.
        """
        if isinstance(executor, Executor):
            if max_workers is not None:
                raise ExecutionError(
                    "max_workers cannot be combined with an executor instance; "
                    "configure the instance's own max_workers instead"
                )
            if workers is not None:
                raise ExecutionError(
                    "workers cannot be combined with an executor instance; "
                    "configure the instance's own workers instead"
                )
            self.close_executor()
            self.executor_name = executor
        else:
            name = resolve_executor_name(executor)
            if workers is not None and name != "distributed":
                raise ExecutionError(
                    f'workers=["host:port", ...] is only valid with '
                    f'executor="distributed", not {name!r}'
                )
            if (
                name == self.executor_name
                and max_workers == self.max_workers
                and self._same_workers(workers)
            ):
                return self  # no-op: keep an owned pool warm across calls
            self.close_executor()
            self.executor_name = name
        self.max_workers = max_workers
        self.workers = list(workers) if workers is not None else None
        return self

    def _same_workers(self, workers: Optional[Sequence[str]]) -> bool:
        left = list(self.workers) if self.workers is not None else None
        right = list(workers) if workers is not None else None
        return left == right

    def configure_engine(
        self, engine: str = "serial", max_workers: Optional[int] = None
    ) -> "System":
        """Deprecated alias for :meth:`configure_executor`.

        .. deprecated::
            Retained from the PR 2 serial/parallel engine split; the engine
            names map onto executor strategies (``"serial"`` -> ``"inline"``,
            ``"parallel"`` -> ``"thread"``).
        """
        warnings.warn(
            "System.configure_engine is deprecated; use "
            "System.configure_executor(executor=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.configure_executor(engine, max_workers)

    @property
    def engine(self) -> str:
        """Deprecated: the configured executor under its legacy engine name."""
        name = (
            self.executor_name.name
            if isinstance(self.executor_name, Executor)
            else self.executor_name
        )
        return LEGACY_NAME_BY_EXECUTOR.get(name, name)

    @engine.setter
    def engine(self, value: str) -> None:
        name = resolve_executor_name(value)
        self.close_executor()
        self.executor_name = name
        self.workers = None  # legacy engine names never address remote workers

    @property
    def owned_executor(self) -> Optional[Executor]:
        """The system-owned pool behind an auto-pooled name, if one is live.

        ``None`` until the first iteration builds it (and again after
        :meth:`close_executor`), and always ``None`` for non-pooled names or
        caller-supplied instances.  Useful for introspection — e.g. a
        distributed pool's ``worker_pids()``/``address`` — without touching
        the pool's lifetime, which stays with the system.
        """
        return self._owned_executor

    def close_executor(self) -> "System":
        """Shut down the system-owned executor pool, if one exists.

        Only touches pools the system itself built for a name-configured
        auto-pooled strategy; a caller-supplied :class:`Executor` instance is
        never closed here.  Safe to call repeatedly; returns ``self``.
        """
        owned = self._owned_executor
        if owned is not None:
            self._owned_executor = None
            owned.shutdown()
        return self

    def __enter__(self) -> "System":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close_executor()

    def _create_engine(self, **kwargs) -> ExecutionEngine:
        """Build the configured engine with system-provided components.

        Name-configured auto-pooled strategies (:data:`AUTO_POOLED_EXECUTORS`)
        resolve to a lazily-built, system-owned executor instance here, so
        every iteration's engine drains the same warm pool instead of forking
        a fresh one (engines treat any executor *instance* as externally
        owned and call ``finish_run`` rather than ``shutdown``).
        """
        spec = self.executor_name
        if isinstance(spec, str) and spec in AUTO_POOLED_EXECUTORS:
            if self._owned_executor is None:
                self._owned_executor = create_executor(
                    spec, max_workers=self.max_workers, workers=self.workers
                )
            return create_engine(self._owned_executor, **kwargs)
        return create_engine(
            spec, max_workers=self.max_workers, workers=self.workers, **kwargs
        )

    @abstractmethod
    def run_iteration(
        self,
        workflow: Workflow,
        iteration: int,
        iteration_type: str = "",
    ) -> RunStats:
        """Execute one iteration of the workflow and return its statistics."""

    @abstractmethod
    def reset(self) -> None:
        """Discard all cross-iteration state (stores, statistics, signatures)."""

    def supports(self, workload_name: str) -> bool:
        """Whether the system supports a workload (Table 2 support matrix)."""
        del workload_name
        return True

    def storage_bytes(self) -> int:
        """Bytes of intermediate results currently persisted by the system."""
        return 0
