"""System interface: how the compared systems execute workflow iterations.

The evaluation compares Helix (with three materialization policies) against
re-implementations of KeystoneML's and DeepDive's reuse behaviour on the same
execution substrate, so that measured differences reflect the reuse policies
rather than unrelated engineering differences.  Every system implements
:meth:`System.run_iteration`, which takes the workflow for the current
iteration and returns the :class:`~repro.execution.tracker.RunStats` observed
while executing it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional

from ..core.workflow import Workflow
from ..execution.tracker import RunStats

__all__ = ["System"]


class System(ABC):
    """A workflow-execution system participating in the comparison."""

    #: Display name used in benchmark output.
    name: str = "system"

    @abstractmethod
    def run_iteration(
        self,
        workflow: Workflow,
        iteration: int,
        iteration_type: str = "",
    ) -> RunStats:
        """Execute one iteration of the workflow and return its statistics."""

    @abstractmethod
    def reset(self) -> None:
        """Discard all cross-iteration state (stores, statistics, signatures)."""

    def supports(self, workload_name: str) -> bool:
        """Whether the system supports a workload (Table 2 support matrix)."""
        del workload_name
        return True

    def storage_bytes(self) -> int:
        """Bytes of intermediate results currently persisted by the system."""
        return 0
