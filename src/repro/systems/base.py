"""System interface: how the compared systems execute workflow iterations.

The evaluation compares Helix (with three materialization policies) against
re-implementations of KeystoneML's and DeepDive's reuse behaviour on the same
execution substrate, so that measured differences reflect the reuse policies
rather than unrelated engineering differences.  Every system implements
:meth:`System.run_iteration`, which takes the workflow for the current
iteration and returns the :class:`~repro.execution.tracker.RunStats` observed
while executing it.

All systems share the same execution substrate, so executor selection is a
system-level toggle (:meth:`System.configure_executor`): the reuse policies
stay untouched and only the task-dispatch strategy underneath them changes —
``"inline"`` (reference), ``"thread"`` (latency-bound parallelism) or
``"process"`` (CPU-bound parallelism).  The PR 2 engine API
(:meth:`System.configure_engine`, the ``engine`` attribute, the
``"serial"``/``"parallel"`` names) remains as a deprecated shim.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from typing import Optional

from ..core.workflow import Workflow
from ..exceptions import ExecutionError
from ..execution.engine import ExecutionEngine, create_engine
from ..execution.executors import (
    Executor,
    LEGACY_NAME_BY_EXECUTOR,
    resolve_executor_name,
)
from ..execution.tracker import RunStats

__all__ = ["System"]


def _resolve_executor_arg(
    executor: Optional[str], engine: Optional[str], default: str = "inline"
) -> str:
    """Pick the executor spec from the (new, legacy) constructor keywords.

    An explicitly passed legacy ``engine`` keyword warns, so every deprecated
    entry point is observable before the aliases are eventually removed.
    """
    if executor is not None:
        return executor
    if engine is not None:
        warnings.warn(
            "the engine= keyword is deprecated; use executor= "
            '("serial" -> "inline", "parallel" -> "thread")',
            DeprecationWarning,
            stacklevel=3,
        )
        return engine
    return default


class System(ABC):
    """A workflow-execution system participating in the comparison."""

    #: Display name used in benchmark output.
    name: str = "system"

    #: Which executor strategy iterations run on — a canonical name
    #: ("inline"|"thread"|"process") or a ready :class:`Executor` instance
    #: shared across iterations.
    executor_name: str | Executor = "inline"

    #: Worker count for pool-backed executors (None = library default).
    max_workers: Optional[int] = None

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        # PR 2 subclasses could declare ``engine = "parallel"`` at class
        # level.  A plain string there would shadow the ``engine`` property
        # and be silently ignored by ``_create_engine`` (which reads
        # ``executor_name``), so translate it instead of letting it lie.
        legacy = cls.__dict__.get("engine")
        if isinstance(legacy, str):
            delattr(cls, "engine")
            cls.executor_name = resolve_executor_name(legacy)

    # ------------------------------------------------------------------ executor selection
    def configure_executor(
        self, executor: str | Executor = "inline", max_workers: Optional[int] = None
    ) -> "System":
        """Select the executor strategy used by :meth:`run_iteration`.

        Accepts the canonical executor names as well as the deprecated
        engine aliases (``"serial"`` -> ``"inline"``, ``"parallel"`` ->
        ``"thread"``).  Passing a ready :class:`Executor` *instance* keeps
        its worker pools alive across iterations (the per-iteration engines
        only drain it), amortizing pool startup over a whole lifecycle —
        the caller then owns the final ``executor.shutdown()``.
        """
        if isinstance(executor, Executor):
            if max_workers is not None:
                raise ExecutionError(
                    "max_workers cannot be combined with an executor instance; "
                    "configure the instance's own max_workers instead"
                )
            self.executor_name = executor
        else:
            self.executor_name = resolve_executor_name(executor)
        self.max_workers = max_workers
        return self

    def configure_engine(
        self, engine: str = "serial", max_workers: Optional[int] = None
    ) -> "System":
        """Deprecated alias for :meth:`configure_executor`.

        .. deprecated::
            Retained from the PR 2 serial/parallel engine split; the engine
            names map onto executor strategies (``"serial"`` -> ``"inline"``,
            ``"parallel"`` -> ``"thread"``).
        """
        warnings.warn(
            "System.configure_engine is deprecated; use "
            "System.configure_executor(executor=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.configure_executor(engine, max_workers)

    @property
    def engine(self) -> str:
        """Deprecated: the configured executor under its legacy engine name."""
        name = (
            self.executor_name.name
            if isinstance(self.executor_name, Executor)
            else self.executor_name
        )
        return LEGACY_NAME_BY_EXECUTOR.get(name, name)

    @engine.setter
    def engine(self, value: str) -> None:
        self.executor_name = resolve_executor_name(value)

    def _create_engine(self, **kwargs) -> ExecutionEngine:
        """Build the configured engine with system-provided components."""
        return create_engine(self.executor_name, max_workers=self.max_workers, **kwargs)

    @abstractmethod
    def run_iteration(
        self,
        workflow: Workflow,
        iteration: int,
        iteration_type: str = "",
    ) -> RunStats:
        """Execute one iteration of the workflow and return its statistics."""

    @abstractmethod
    def reset(self) -> None:
        """Discard all cross-iteration state (stores, statistics, signatures)."""

    def supports(self, workload_name: str) -> bool:
        """Whether the system supports a workload (Table 2 support matrix)."""
        del workload_name
        return True

    def storage_bytes(self) -> int:
        """Bytes of intermediate results currently persisted by the system."""
        return 0
