"""Linear models: logistic and linear regression trained with gradient descent.

These are the learners used by the Census, IE and MNIST workloads (the paper
uses MLlib's logistic regression; here the equivalent is implemented from
scratch on NumPy).  Both models follow the minimal estimator protocol the
:class:`~repro.core.operators.Learner` operator expects:

* ``fit(X, y)`` — train on a dense matrix and label vector,
* ``predict(X)`` — return predictions,
* ``predict_proba(X)`` (classifier only) — class probabilities,
* ``feature_weights()`` — mapping from feature position to coefficient, used
  by data-driven pruning,
* ``set_seed(seed)`` — reseed any internal randomness.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["LogisticRegression", "LinearRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=float)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegression:
    """Binary logistic regression with L2 regularization, trained by full-batch GD.

    Parameters
    ----------
    reg_param:
        L2 regularization strength (the paper's census example uses 0.1).
    learning_rate:
        Gradient-descent step size.
    max_iter:
        Maximum number of gradient steps.
    tol:
        Stop early when the gradient norm falls below this threshold.
    fit_intercept:
        Whether to fit an unregularized intercept term.
    """

    def __init__(
        self,
        reg_param: float = 0.1,
        learning_rate: float = 0.5,
        max_iter: int = 200,
        tol: float = 1e-6,
        fit_intercept: bool = True,
    ):
        if reg_param < 0:
            raise ValueError("reg_param must be non-negative")
        self.reg_param = reg_param
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept
        self.weights_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0
        self.classes_: Optional[np.ndarray] = None
        self._seed = 0

    def set_seed(self, seed: int) -> None:
        self._seed = int(seed)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be a 2-D matrix")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have mismatched lengths")
        self.classes_ = np.unique(y) if y.size else np.array([0.0, 1.0])
        # Map labels onto {0, 1}: anything above the midpoint of observed labels is positive.
        if self.classes_.size > 1:
            threshold = (self.classes_.min() + self.classes_.max()) / 2.0
            y01 = (y > threshold).astype(float)
        else:
            y01 = np.zeros_like(y)
        n, d = X.shape
        weights = np.zeros(d)
        intercept = 0.0
        self.n_iter_ = 0
        if n == 0:
            self.weights_, self.intercept_ = weights, intercept
            return self
        # Cap the step size by the loss's Lipschitz constant (0.25 * mean squared
        # row norm for the logistic term plus the regularization strength) so
        # full-batch gradient descent cannot diverge for large reg_param.
        lipschitz = 0.25 * float(np.mean(np.sum(X * X, axis=1))) + self.reg_param
        step = min(self.learning_rate, 1.0 / max(lipschitz, 1e-12))
        for _ in range(self.max_iter):
            z = X @ weights + intercept
            p = _sigmoid(z)
            error = p - y01
            grad_w = X.T @ error / n + self.reg_param * weights
            grad_b = float(error.mean()) if self.fit_intercept else 0.0
            weights -= step * grad_w
            intercept -= step * grad_b
            self.n_iter_ += 1
            if np.linalg.norm(grad_w) < self.tol and abs(grad_b) < self.tol:
                break
        self.weights_ = weights
        self.intercept_ = intercept
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise ValueError("model is not fitted")
        X = np.asarray(X, dtype=float)
        return X @ self.weights_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p, p])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(float)

    def feature_weights(self) -> Dict[int, float]:
        """Coefficient per feature position (empty if unfitted)."""
        if self.weights_ is None:
            return {}
        return {i: float(w) for i, w in enumerate(self.weights_)}

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy."""
        y = np.asarray(y, dtype=float).ravel()
        if y.size == 0:
            return 0.0
        threshold = (y.min() + y.max()) / 2.0 if np.unique(y).size > 1 else 0.5
        return float(np.mean(self.predict(X) == (y > threshold).astype(float)))


class LinearRegression:
    """Ordinary least squares with optional L2 (ridge) regularization.

    Solved in closed form via the normal equations, which is exact and fast
    for the feature dimensionalities the workloads produce.
    """

    def __init__(self, reg_param: float = 0.0, fit_intercept: bool = True):
        if reg_param < 0:
            raise ValueError("reg_param must be non-negative")
        self.reg_param = reg_param
        self.fit_intercept = fit_intercept
        self.weights_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def set_seed(self, seed: int) -> None:  # noqa: ARG002 - deterministic model
        return

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have mismatched lengths")
        if X.shape[0] == 0:
            self.weights_ = np.zeros(X.shape[1])
            self.intercept_ = 0.0
            return self
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            Xc, yc = X, y
        d = X.shape[1]
        gram = Xc.T @ Xc + self.reg_param * np.eye(d)
        self.weights_ = np.linalg.solve(gram, Xc.T @ yc) if d else np.zeros(0)
        self.intercept_ = y_mean - float(x_mean @ self.weights_) if self.fit_intercept else 0.0
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise ValueError("model is not fitted")
        X = np.asarray(X, dtype=float)
        return X @ self.weights_ + self.intercept_

    def feature_weights(self) -> Dict[int, float]:
        if self.weights_ is None:
            return {}
        return {i: float(w) for i, w in enumerate(self.weights_)}

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination (R^2)."""
        y = np.asarray(y, dtype=float).ravel()
        predictions = self.predict(X)
        total = float(np.sum((y - y.mean()) ** 2)) if y.size else 0.0
        if total == 0.0:
            return 0.0
        residual = float(np.sum((y - predictions) ** 2))
        return 1.0 - residual / total
