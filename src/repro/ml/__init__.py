"""ML substrate: models, preprocessing, metrics, embeddings and text utilities."""

from .embeddings import CooccurrenceEmbedding, RandomProjectionEmbedding, build_cooccurrence
from .kmeans import KMeans
from .linear import LinearRegression, LogisticRegression
from .metrics import (
    accuracy,
    cluster_sizes,
    confusion_matrix,
    f1_score,
    log_loss,
    mean_squared_error,
    precision,
    recall,
    silhouette_score,
)
from .model_selection import GridSearch, GridSearchResult, KFold, cross_val_score, train_test_split
from .naive_bayes import MultinomialNaiveBayes
from .preprocessing import (
    HashingVectorizer,
    MinMaxScaler,
    OneHotIndexer,
    QuantileDiscretizer,
    RandomFourierFeatures,
    StandardScaler,
)
from .text import STOP_WORDS, ngrams, pos_tag, remove_stop_words, split_sentences, tokenize

__all__ = [
    "CooccurrenceEmbedding",
    "RandomProjectionEmbedding",
    "build_cooccurrence",
    "KMeans",
    "LinearRegression",
    "LogisticRegression",
    "accuracy",
    "cluster_sizes",
    "confusion_matrix",
    "f1_score",
    "log_loss",
    "mean_squared_error",
    "precision",
    "recall",
    "silhouette_score",
    "GridSearch",
    "GridSearchResult",
    "KFold",
    "cross_val_score",
    "train_test_split",
    "MultinomialNaiveBayes",
    "HashingVectorizer",
    "MinMaxScaler",
    "OneHotIndexer",
    "QuantileDiscretizer",
    "RandomFourierFeatures",
    "StandardScaler",
    "STOP_WORDS",
    "ngrams",
    "pos_tag",
    "remove_stop_words",
    "split_sentences",
    "tokenize",
]
