"""Model selection: train/test splitting, cross-validation and grid search.

These implement the PPR "reduce over a hyperparameter set" pattern described
in Section 3.1 (model selection is a reduce that internally performs learning
and inference) and are exposed so that workloads and examples can perform the
same hyperparameter-sweep iterations the paper's survey reports as common.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["train_test_split", "KFold", "cross_val_score", "GridSearch", "GridSearchResult"]


def train_test_split(
    X: np.ndarray,
    y: Optional[np.ndarray] = None,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
    """Shuffle and split ``(X, y)`` into train/test portions.

    Returns ``(X_train, X_test, y_train, y_test)``; the label outputs are
    ``None`` when ``y`` is ``None``.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be strictly between 0 and 1")
    X = np.asarray(X)
    n = X.shape[0]
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction))) if n else 0
    test_index = order[:n_test]
    train_index = order[n_test:]
    if y is None:
        return X[train_index], X[test_index], None, None
    y = np.asarray(y)
    return X[train_index], X[test_index], y[train_index], y[test_index]


class KFold:
    """Deterministic k-fold splitter."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: int = 0):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, n_samples: int) -> Iterable[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs."""
        if n_samples < self.n_splits:
            raise ValueError("cannot split fewer samples than folds")
        indices = np.arange(n_samples)
        if self.shuffle:
            indices = np.random.default_rng(self.seed).permutation(n_samples)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test_index = folds[i]
            train_index = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train_index, test_index


def cross_val_score(
    model_factory: Callable[..., Any],
    X: np.ndarray,
    y: np.ndarray,
    params: Optional[Mapping[str, Any]] = None,
    n_splits: int = 5,
    seed: int = 0,
) -> List[float]:
    """Fit/score a model on each fold, returning the per-fold scores.

    The model must implement ``fit`` and ``score``.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    scores: List[float] = []
    for train_index, test_index in KFold(n_splits=n_splits, seed=seed).split(X.shape[0]):
        model = model_factory(**dict(params or {}))
        model.fit(X[train_index], y[train_index])
        scores.append(float(model.score(X[test_index], y[test_index])))
    return scores


@dataclass
class GridSearchResult:
    """Outcome of a grid search: best parameters, best score and the full table."""

    best_params: Dict[str, Any]
    best_score: float
    results: List[Tuple[Dict[str, Any], float]] = field(default_factory=list)


class GridSearch:
    """Exhaustive hyperparameter search with cross-validation.

    Mirrors Scikit-learn's model-selection "reduce": internally performs
    learning, inference and scoring for every parameter combination and
    returns the best.
    """

    def __init__(
        self,
        model_factory: Callable[..., Any],
        param_grid: Mapping[str, Sequence[Any]],
        n_splits: int = 3,
        seed: int = 0,
    ):
        if not param_grid:
            raise ValueError("param_grid must not be empty")
        self.model_factory = model_factory
        self.param_grid = {key: list(values) for key, values in param_grid.items()}
        self.n_splits = n_splits
        self.seed = seed

    def _combinations(self) -> Iterable[Dict[str, Any]]:
        keys = sorted(self.param_grid)
        for values in itertools.product(*(self.param_grid[key] for key in keys)):
            yield dict(zip(keys, values))

    def fit(self, X: np.ndarray, y: np.ndarray) -> GridSearchResult:
        results: List[Tuple[Dict[str, Any], float]] = []
        best_score = -np.inf
        best_params: Dict[str, Any] = {}
        for params in self._combinations():
            scores = cross_val_score(
                self.model_factory, X, y, params=params, n_splits=self.n_splits, seed=self.seed
            )
            mean_score = float(np.mean(scores))
            results.append((params, mean_score))
            if mean_score > best_score:
                best_score = mean_score
                best_params = params
        return GridSearchResult(best_params=best_params, best_score=best_score, results=results)
