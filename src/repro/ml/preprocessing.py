"""Feature preprocessing: scalers, discretizers, encoders and random features.

These are the data-dependent feature transformations discussed in Section
3.1.1 of the paper (scaling, discretization, vocabulary indexing, kernel
transformations).  They follow the fit/transform protocol so they can be used
either directly on matrices or wrapped inside Helix extractor operators.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "StandardScaler",
    "MinMaxScaler",
    "QuantileDiscretizer",
    "OneHotIndexer",
    "HashingVectorizer",
    "RandomFourierFeatures",
]


class StandardScaler:
    """Standardize features to zero mean and unit variance."""

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> "StandardScaler":  # noqa: ARG002
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0) if X.size else np.zeros(X.shape[1] if X.ndim == 2 else 0)
        std = X.std(axis=0) if X.size else np.ones_like(self.mean_)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise ValueError("scaler is not fitted")
        X = np.asarray(X, dtype=float)
        result = X.copy()
        if self.with_mean:
            result = result - self.mean_
        if self.with_std:
            result = result / self.scale_
        return result

    def fit_transform(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        return self.fit(X, y).transform(X)


class MinMaxScaler:
    """Scale features to the ``[0, 1]`` range."""

    def __init__(self):
        self.min_: Optional[np.ndarray] = None
        self.range_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> "MinMaxScaler":  # noqa: ARG002
        X = np.asarray(X, dtype=float)
        self.min_ = X.min(axis=0) if X.size else np.zeros(X.shape[1] if X.ndim == 2 else 0)
        maximum = X.max(axis=0) if X.size else np.ones_like(self.min_)
        span = maximum - self.min_
        self.range_ = np.where(span > 0, span, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise ValueError("scaler is not fitted")
        return (np.asarray(X, dtype=float) - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        return self.fit(X, y).transform(X)


class QuantileDiscretizer:
    """Discretize a 1-D numeric array into equal-frequency buckets.

    This is the matrix-level counterpart of the DSL-level
    :class:`~repro.core.operators.Bucketizer` operator.
    """

    def __init__(self, bins: int = 10):
        if bins < 1:
            raise ValueError("bins must be at least 1")
        self.bins = bins
        self.boundaries_: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray, y: Optional[np.ndarray] = None) -> "QuantileDiscretizer":  # noqa: ARG002
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            self.boundaries_ = np.zeros(0)
            return self
        quantiles = np.linspace(0.0, 1.0, self.bins + 1)[1:-1]
        self.boundaries_ = np.unique(np.quantile(values, quantiles))
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.boundaries_ is None:
            raise ValueError("discretizer is not fitted")
        return np.searchsorted(self.boundaries_, np.asarray(values, dtype=float).ravel())

    def fit_transform(self, values: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        return self.fit(values, y).transform(values)


class OneHotIndexer:
    """Learn a category -> column index and expand categories into indicator vectors."""

    def __init__(self, handle_unknown: str = "ignore"):
        if handle_unknown not in ("ignore", "error"):
            raise ValueError("handle_unknown must be 'ignore' or 'error'")
        self.handle_unknown = handle_unknown
        self.index_: Dict[str, int] = {}

    def fit(self, categories: Iterable[str], y: Optional[np.ndarray] = None) -> "OneHotIndexer":  # noqa: ARG002
        unique = sorted({str(c) for c in categories})
        self.index_ = {category: position for position, category in enumerate(unique)}
        return self

    @property
    def dimension(self) -> int:
        return len(self.index_)

    def transform(self, categories: Iterable[str]) -> np.ndarray:
        if not self.index_ and self.handle_unknown == "error":
            raise ValueError("indexer is not fitted")
        rows = []
        for category in categories:
            row = np.zeros(len(self.index_))
            position = self.index_.get(str(category))
            if position is None and self.handle_unknown == "error":
                raise ValueError(f"unknown category: {category!r}")
            if position is not None:
                row[position] = 1.0
            rows.append(row)
        return np.vstack(rows) if rows else np.zeros((0, len(self.index_)))

    def fit_transform(self, categories: Sequence[str], y: Optional[np.ndarray] = None) -> np.ndarray:
        return self.fit(categories, y).transform(categories)


class HashingVectorizer:
    """Hash token counts into a fixed-width vector (vocabulary-free bag of words)."""

    def __init__(self, n_features: int = 256, seed: int = 0):
        if n_features < 1:
            raise ValueError("n_features must be at least 1")
        self.n_features = n_features
        self.seed = seed

    def _bucket(self, token: str) -> int:
        return (hash((self.seed, token)) & 0x7FFFFFFF) % self.n_features

    def transform(self, documents: Iterable[Sequence[str]]) -> np.ndarray:
        rows = []
        for document in documents:
            row = np.zeros(self.n_features)
            for token in document:
                row[self._bucket(token)] += 1.0
            rows.append(row)
        return np.vstack(rows) if rows else np.zeros((0, self.n_features))

    def transform_one(self, document: Sequence[str]) -> np.ndarray:
        return self.transform([document])[0]


class RandomFourierFeatures:
    """Random Fourier feature map approximating an RBF kernel.

    The MNIST workflow in the KeystoneML evaluation uses a random FFT
    featurization of the images; this transformation plays the same role: a
    *non-deterministic* (freshly seeded per fit unless a seed is supplied)
    coarse-grained DPR step whose output cannot be safely reused across
    iterations, which is exactly the property the MNIST experiment stresses.
    """

    def __init__(self, n_components: int = 128, gamma: float = 1.0, seed: Optional[int] = None):
        if n_components < 1:
            raise ValueError("n_components must be at least 1")
        self.n_components = n_components
        self.gamma = gamma
        self.seed = seed
        self.weights_: Optional[np.ndarray] = None
        self.offsets_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> "RandomFourierFeatures":  # noqa: ARG002
        X = np.asarray(X, dtype=float)
        rng = np.random.default_rng(self.seed)
        d = X.shape[1] if X.ndim == 2 else 1
        self.weights_ = rng.normal(scale=np.sqrt(2.0 * self.gamma), size=(d, self.n_components))
        self.offsets_ = rng.uniform(0.0, 2.0 * np.pi, size=self.n_components)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.weights_ is None or self.offsets_ is None:
            raise ValueError("transformer is not fitted")
        X = np.asarray(X, dtype=float)
        projection = X @ self.weights_ + self.offsets_
        return np.sqrt(2.0 / self.n_components) * np.cos(projection)

    def fit_transform(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        return self.fit(X, y).transform(X)
