"""K-means clustering (Lloyd's algorithm with k-means++ initialization).

Used by the genomics workload to cluster gene embedding vectors (the paper's
second learning step in Example 1).  Implements the unsupervised estimator
protocol expected by :class:`~repro.core.operators.Learner` — ``fit(X, None)``
and ``predict(X)`` returning cluster assignments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["KMeans"]


class KMeans:
    """Lloyd's algorithm with k-means++ seeding.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    max_iter:
        Maximum number of assignment/update rounds.
    tol:
        Converged when the total centroid movement falls below this value.
    seed:
        Seed for the k-means++ initialization.
    """

    def __init__(self, n_clusters: int = 8, max_iter: int = 100, tol: float = 1e-6, seed: int = 0):
        if n_clusters < 1:
            raise ValueError("n_clusters must be at least 1")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self._seed = seed
        self.cluster_centers_: Optional[np.ndarray] = None
        self.inertia_: float = float("inf")
        self.n_iter_: int = 0

    def set_seed(self, seed: int) -> None:
        self._seed = int(seed)

    # ------------------------------------------------------------------ fitting
    def _init_centers(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ initialization."""
        n = X.shape[0]
        centers = np.empty((self.n_clusters, X.shape[1]))
        first = rng.integers(n)
        centers[0] = X[first]
        closest_sq = np.sum((X - centers[0]) ** 2, axis=1)
        for i in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 0:
                centers[i] = X[rng.integers(n)]
            else:
                probabilities = closest_sq / total
                choice = rng.choice(n, p=probabilities)
                centers[i] = X[choice]
            distances = np.sum((X - centers[i]) ** 2, axis=1)
            closest_sq = np.minimum(closest_sq, distances)
        return centers

    def fit(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> "KMeans":  # noqa: ARG002
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be a 2-D matrix")
        n = X.shape[0]
        if n == 0:
            self.cluster_centers_ = np.zeros((self.n_clusters, X.shape[1]))
            self.inertia_ = 0.0
            return self
        k = min(self.n_clusters, n)
        rng = np.random.default_rng(self._seed)
        if k < self.n_clusters:
            # Fewer points than clusters: every point is its own centroid and the
            # remaining centroids are duplicates of the last point.
            centers = np.vstack([X, np.repeat(X[-1:], self.n_clusters - k, axis=0)])
        else:
            centers = self._init_centers(X, rng)
        self.n_iter_ = 0
        for _ in range(self.max_iter):
            assignments = self._assign(X, centers)
            new_centers = centers.copy()
            for cluster in range(self.n_clusters):
                members = X[assignments == cluster]
                if len(members):
                    new_centers[cluster] = members.mean(axis=0)
            movement = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            self.n_iter_ += 1
            if movement < self.tol:
                break
        self.cluster_centers_ = centers
        assignments = self._assign(X, centers)
        self.inertia_ = float(np.sum((X - centers[assignments]) ** 2))
        return self

    @staticmethod
    def _assign(X: np.ndarray, centers: np.ndarray) -> np.ndarray:
        distances = np.linalg.norm(X[:, None, :] - centers[None, :, :], axis=2)
        return np.argmin(distances, axis=1)

    # ------------------------------------------------------------------ inference
    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise ValueError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.shape[0] == 0:
            return np.zeros(0, dtype=int)
        return self._assign(X, self.cluster_centers_)

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Distances from each point to each cluster center."""
        if self.cluster_centers_ is None:
            raise ValueError("model is not fitted")
        X = np.asarray(X, dtype=float)
        return np.linalg.norm(X[:, None, :] - self.cluster_centers_[None, :, :], axis=2)

    def score(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> float:  # noqa: ARG002
        """Negative inertia on the given data (higher is better)."""
        X = np.asarray(X, dtype=float)
        if X.shape[0] == 0:
            return 0.0
        assignments = self.predict(X)
        return -float(np.sum((X - self.cluster_centers_[assignments]) ** 2))
