"""Evaluation metrics for supervised and unsupervised tasks.

These back the PPR reducers in the workloads (accuracy / F1 for Census and
IE, cluster quality for genomics) and the model-selection utilities.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "confusion_matrix",
    "log_loss",
    "mean_squared_error",
    "silhouette_score",
    "cluster_sizes",
]


def _to_binary(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        return values
    unique = np.unique(values)
    if unique.size <= 1:
        return (values > 0.5).astype(float)
    threshold = (unique.min() + unique.max()) / 2.0
    return (values > threshold).astype(float)


def accuracy(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Fraction of exact matches between predictions and labels."""
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.size == 0:
        return 0.0
    if y_true.size != y_pred.size:
        raise ValueError("y_true and y_pred have mismatched lengths")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: Sequence[float], y_pred: Sequence[float]) -> Dict[str, int]:
    """Binary confusion matrix as a dictionary (tp / fp / tn / fn)."""
    true_binary = _to_binary(np.asarray(y_true))
    pred_binary = _to_binary(np.asarray(y_pred))
    if true_binary.size != pred_binary.size:
        raise ValueError("y_true and y_pred have mismatched lengths")
    tp = int(np.sum((true_binary == 1) & (pred_binary == 1)))
    fp = int(np.sum((true_binary == 0) & (pred_binary == 1)))
    tn = int(np.sum((true_binary == 0) & (pred_binary == 0)))
    fn = int(np.sum((true_binary == 1) & (pred_binary == 0)))
    return {"tp": tp, "fp": fp, "tn": tn, "fn": fn}


def precision(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    cm = confusion_matrix(y_true, y_pred)
    denominator = cm["tp"] + cm["fp"]
    return cm["tp"] / denominator if denominator else 0.0


def recall(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    cm = confusion_matrix(y_true, y_pred)
    denominator = cm["tp"] + cm["fn"]
    return cm["tp"] / denominator if denominator else 0.0


def f1_score(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    p = precision(y_true, y_pred)
    r = recall(y_true, y_pred)
    return 2 * p * r / (p + r) if (p + r) else 0.0


def log_loss(y_true: Sequence[float], y_score: Sequence[float], eps: float = 1e-12) -> float:
    """Binary cross-entropy between labels and predicted positive-class probabilities."""
    y_true = _to_binary(np.asarray(y_true))
    scores = np.clip(np.asarray(y_score, dtype=float).ravel(), eps, 1.0 - eps)
    if y_true.size == 0:
        return 0.0
    if y_true.size != scores.size:
        raise ValueError("y_true and y_score have mismatched lengths")
    return float(-np.mean(y_true * np.log(scores) + (1 - y_true) * np.log(1 - scores)))


def mean_squared_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.size == 0:
        return 0.0
    if y_true.size != y_pred.size:
        raise ValueError("y_true and y_pred have mismatched lengths")
    return float(np.mean((y_true - y_pred) ** 2))


def cluster_sizes(assignments: Sequence[int]) -> Dict[int, int]:
    """Number of points per cluster (used by the genomics PPR reducer)."""
    assignments = np.asarray(assignments, dtype=int).ravel()
    unique, counts = np.unique(assignments, return_counts=True)
    return {int(cluster): int(count) for cluster, count in zip(unique, counts)}


def silhouette_score(X: np.ndarray, assignments: Sequence[int]) -> float:
    """Mean silhouette coefficient (simplified O(n^2) implementation).

    Returns 0.0 for degenerate clusterings (fewer than 2 clusters or fewer
    than 2 points), matching the convention of treating those as uninformative.
    """
    X = np.asarray(X, dtype=float)
    labels = np.asarray(assignments, dtype=int).ravel()
    if X.shape[0] != labels.size:
        raise ValueError("X and assignments have mismatched lengths")
    if X.shape[0] < 2 or np.unique(labels).size < 2:
        return 0.0
    distances = np.linalg.norm(X[:, None, :] - X[None, :, :], axis=2)
    scores = np.zeros(X.shape[0])
    for i in range(X.shape[0]):
        same = labels == labels[i]
        same[i] = False
        a = distances[i, same].mean() if same.any() else 0.0
        b = np.inf
        for other in np.unique(labels):
            if other == labels[i]:
                continue
            mask = labels == other
            if mask.any():
                b = min(b, distances[i, mask].mean())
        if not np.isfinite(b):
            scores[i] = 0.0
        else:
            denominator = max(a, b)
            scores[i] = (b - a) / denominator if denominator > 0 else 0.0
    return float(scores.mean())
