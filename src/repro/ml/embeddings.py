"""Word/entity embeddings: a word2vec stand-in built on co-occurrence + SVD.

The genomics workload (Example 1 in the paper) computes embeddings for gene
mentions using word2vec or LINE.  Training a neural skip-gram model is not
the point of the reproduction — what matters is that an expensive, learned,
reusable embedding step sits in the middle of the workflow.  This module
implements two classical, deterministic embedding algorithms that exercise
the same code path:

* :class:`CooccurrenceEmbedding` — build a windowed word-word co-occurrence
  matrix, apply PPMI weighting and factorize it with a truncated SVD (the
  "count-based word2vec" of Levy & Goldberg).
* :class:`RandomProjectionEmbedding` — a cheaper LINE stand-in using seeded
  random projections of the co-occurrence rows; swapping between the two is
  the workload's "change the embedding algorithm" DPR/L-I iteration.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["build_cooccurrence", "CooccurrenceEmbedding", "RandomProjectionEmbedding"]


def build_cooccurrence(
    documents: Iterable[Sequence[str]],
    window: int = 4,
    min_count: int = 1,
) -> Tuple[Dict[str, int], np.ndarray]:
    """Build a symmetric windowed co-occurrence matrix.

    Returns ``(vocabulary, matrix)`` where ``vocabulary`` maps token to row
    index.  Tokens occurring fewer than ``min_count`` times are dropped.
    """
    token_counts: Counter = Counter()
    cached_docs: List[Sequence[str]] = []
    for document in documents:
        tokens = list(document)
        cached_docs.append(tokens)
        token_counts.update(tokens)
    vocabulary = {
        token: index
        for index, token in enumerate(sorted(t for t, c in token_counts.items() if c >= min_count))
    }
    matrix = np.zeros((len(vocabulary), len(vocabulary)), dtype=float)
    for tokens in cached_docs:
        indexed = [vocabulary.get(token) for token in tokens]
        for position, center in enumerate(indexed):
            if center is None:
                continue
            lo = max(0, position - window)
            hi = min(len(indexed), position + window + 1)
            for other_position in range(lo, hi):
                if other_position == position:
                    continue
                context = indexed[other_position]
                if context is None:
                    continue
                matrix[center, context] += 1.0
    return vocabulary, matrix


def _ppmi(matrix: np.ndarray) -> np.ndarray:
    """Positive pointwise mutual information weighting of a co-occurrence matrix."""
    total = matrix.sum()
    if total <= 0:
        return np.zeros_like(matrix)
    row = matrix.sum(axis=1, keepdims=True)
    col = matrix.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        expected = row @ col / total
        pmi = np.log(np.where(expected > 0, matrix * total / (row @ col), 1.0))
    pmi[~np.isfinite(pmi)] = 0.0
    return np.clip(pmi, 0.0, None)


class CooccurrenceEmbedding:
    """PPMI + truncated-SVD embeddings (the count-based word2vec equivalent).

    ``fit`` expects an iterable of tokenized documents; :meth:`vectors`
    returns the embedding matrix and :meth:`vector` a single token's vector.
    """

    def __init__(self, dimensions: int = 32, window: int = 4, min_count: int = 1, seed: int = 0):
        if dimensions < 1:
            raise ValueError("dimensions must be at least 1")
        self.dimensions = dimensions
        self.window = window
        self.min_count = min_count
        self._seed = seed
        self.vocabulary_: Dict[str, int] = {}
        self.embeddings_: Optional[np.ndarray] = None

    def set_seed(self, seed: int) -> None:
        self._seed = int(seed)

    def fit(self, documents: Iterable[Sequence[str]], y: Optional[np.ndarray] = None) -> "CooccurrenceEmbedding":  # noqa: ARG002
        self.vocabulary_, matrix = build_cooccurrence(documents, self.window, self.min_count)
        if not self.vocabulary_:
            self.embeddings_ = np.zeros((0, self.dimensions))
            return self
        weighted = _ppmi(matrix)
        u, s, _vt = np.linalg.svd(weighted, full_matrices=False)
        k = min(self.dimensions, s.size)
        embeddings = u[:, :k] * np.sqrt(s[:k])
        if k < self.dimensions:
            padding = np.zeros((embeddings.shape[0], self.dimensions - k))
            embeddings = np.hstack([embeddings, padding])
        self.embeddings_ = embeddings
        return self

    # ------------------------------------------------------------------ lookup
    def __contains__(self, token: str) -> bool:
        return token in self.vocabulary_

    def vector(self, token: str) -> np.ndarray:
        if self.embeddings_ is None:
            raise ValueError("model is not fitted")
        index = self.vocabulary_.get(token)
        if index is None:
            return np.zeros(self.dimensions)
        return self.embeddings_[index]

    def vectors(self, tokens: Sequence[str]) -> np.ndarray:
        return np.vstack([self.vector(token) for token in tokens]) if tokens else np.zeros((0, self.dimensions))

    def most_similar(self, token: str, top_k: int = 5) -> List[Tuple[str, float]]:
        """Nearest tokens by cosine similarity (excluding the token itself)."""
        if self.embeddings_ is None or token not in self.vocabulary_:
            return []
        target = self.vector(token)
        norms = np.linalg.norm(self.embeddings_, axis=1) * (np.linalg.norm(target) or 1.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            similarity = self.embeddings_ @ target / np.where(norms > 0, norms, 1.0)
        order = np.argsort(-similarity)
        inverse = {index: tok for tok, index in self.vocabulary_.items()}
        results = []
        for index in order:
            candidate = inverse[int(index)]
            if candidate == token:
                continue
            results.append((candidate, float(similarity[index])))
            if len(results) >= top_k:
                break
        return results


class RandomProjectionEmbedding(CooccurrenceEmbedding):
    """A cheaper embedding using seeded random projection of co-occurrence rows.

    This is the stand-in for switching the embedding algorithm (word2vec ->
    LINE) in the genomics workload's iterations: same interface, noticeably
    different cost profile and output.
    """

    def fit(self, documents: Iterable[Sequence[str]], y: Optional[np.ndarray] = None) -> "RandomProjectionEmbedding":  # noqa: ARG002
        self.vocabulary_, matrix = build_cooccurrence(documents, self.window, self.min_count)
        if not self.vocabulary_:
            self.embeddings_ = np.zeros((0, self.dimensions))
            return self
        rng = np.random.default_rng(self._seed)
        projection = rng.standard_normal((matrix.shape[1], self.dimensions)) / np.sqrt(self.dimensions)
        self.embeddings_ = _ppmi(matrix) @ projection
        return self
