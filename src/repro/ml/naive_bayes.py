"""Multinomial naive Bayes classifier.

Provided as an alternative learner for the Census and IE workloads (an "L/I"
iteration in the paper can swap the learning algorithm entirely, e.g. from
logistic regression to naive Bayes) and as the data-dependent-transformation
example discussed in Section 3.1.1.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["MultinomialNaiveBayes"]


class MultinomialNaiveBayes:
    """Multinomial naive Bayes with Laplace smoothing over non-negative features."""

    def __init__(self, alpha: float = 1.0):
        if alpha <= 0:
            raise ValueError("smoothing parameter alpha must be positive")
        self.alpha = alpha
        self.class_log_prior_: Optional[np.ndarray] = None
        self.feature_log_prob_: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    def set_seed(self, seed: int) -> None:  # noqa: ARG002 - deterministic model
        return

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MultinomialNaiveBayes":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have mismatched lengths")
        if np.any(X < 0):
            X = np.clip(X, 0.0, None)
        self.classes_ = np.unique(y) if y.size else np.array([0.0, 1.0])
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        counts = np.zeros((n_classes, n_features))
        class_counts = np.zeros(n_classes)
        for index, label in enumerate(self.classes_):
            mask = y == label
            class_counts[index] = mask.sum()
            if mask.any():
                counts[index] = X[mask].sum(axis=0)
        smoothed = counts + self.alpha
        totals = smoothed.sum(axis=1, keepdims=True)
        self.feature_log_prob_ = np.log(smoothed) - np.log(totals)
        priors = (class_counts + self.alpha) / (class_counts.sum() + self.alpha * n_classes)
        self.class_log_prior_ = np.log(priors)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        if self.feature_log_prob_ is None or self.class_log_prior_ is None:
            raise ValueError("model is not fitted")
        X = np.clip(np.asarray(X, dtype=float), 0.0, None)
        return X @ self.feature_log_prob_.T + self.class_log_prior_

    def predict(self, X: np.ndarray) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        if jll.shape[0] == 0:
            return np.zeros(0)
        return self.classes_[np.argmax(jll, axis=1)]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        jll = jll - jll.max(axis=1, keepdims=True)
        probabilities = np.exp(jll)
        return probabilities / probabilities.sum(axis=1, keepdims=True)

    def feature_weights(self) -> Dict[int, float]:
        """Per-feature discriminative weight: spread of log-probabilities across classes."""
        if self.feature_log_prob_ is None:
            return {}
        spread = self.feature_log_prob_.max(axis=0) - self.feature_log_prob_.min(axis=0)
        return {i: float(w) for i, w in enumerate(spread)}

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        y = np.asarray(y, dtype=float).ravel()
        if y.size == 0:
            return 0.0
        return float(np.mean(self.predict(X) == y))
