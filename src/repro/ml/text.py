"""Text-processing substrate: the CoreNLP stand-in.

The IE and genomics workloads need tokenization, sentence splitting, n-grams,
stop-word filtering and a lightweight part-of-speech tagger (the paper's IE
workflow uses POS tags among its fine-grained features).  These are simple,
deterministic, rule-based implementations — the point is to exercise the same
expensive "NLP parsing" DPR step whose reuse dominates the NLP experiment
(Figure 5c), not linguistic accuracy.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "tokenize",
    "split_sentences",
    "ngrams",
    "remove_stop_words",
    "pos_tag",
    "STOP_WORDS",
]

_TOKEN_PATTERN = re.compile(r"[A-Za-z0-9_']+")
_SENTENCE_PATTERN = re.compile(r"(?<=[.!?])\s+")

#: A small English stop-word list (sufficient for the synthetic corpora).
STOP_WORDS = frozenset(
    """a an and are as at be by for from has have he her his in is it its of on
    or she that the their they this to was were which who will with""".split()
)

_DETERMINERS = {"the", "a", "an", "this", "that", "these", "those"}
_PRONOUNS = {"he", "she", "it", "they", "we", "i", "you", "her", "him", "them"}
_PREPOSITIONS = {"of", "in", "on", "at", "by", "for", "with", "from", "to", "into"}
_CONJUNCTIONS = {"and", "or", "but", "nor", "so", "yet"}
_VERB_SUFFIXES = ("ing", "ed", "ize", "ise", "ify")
_COMMON_VERBS = {
    "is", "are", "was", "were", "be", "been", "has", "have", "had", "said",
    "married", "met", "works", "lives", "announced", "reported", "found",
    "discovered", "encodes", "regulates", "binds", "expresses", "causes",
}
_ADVERB_SUFFIX = "ly"


def tokenize(text: str, lowercase: bool = True) -> List[str]:
    """Split text into word tokens (alphanumerics, underscores and apostrophes)."""
    tokens = _TOKEN_PATTERN.findall(text)
    return [t.lower() for t in tokens] if lowercase else tokens


def split_sentences(text: str) -> List[str]:
    """Split text into sentences on terminal punctuation."""
    sentences = [s.strip() for s in _SENTENCE_PATTERN.split(text.strip())]
    return [s for s in sentences if s]


def ngrams(tokens: Sequence[str], n: int = 2) -> List[Tuple[str, ...]]:
    """Contiguous n-grams of a token sequence."""
    if n < 1:
        raise ValueError("n must be at least 1")
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def remove_stop_words(tokens: Iterable[str]) -> List[str]:
    """Filter out stop words (case-insensitive)."""
    return [t for t in tokens if t.lower() not in STOP_WORDS]


def pos_tag(tokens: Sequence[str]) -> List[Tuple[str, str]]:
    """A rule-based part-of-speech tagger.

    Tags: DT (determiner), PRP (pronoun), IN (preposition), CC (conjunction),
    CD (number), VB (verb), RB (adverb), NNP (capitalized proper noun) and NN
    (everything else).  Intentionally simple but deterministic, so POS-based
    features are stable across runs.
    """
    tags: List[Tuple[str, str]] = []
    for token in tokens:
        lowered = token.lower()
        if lowered in _DETERMINERS:
            tag = "DT"
        elif lowered in _PRONOUNS:
            tag = "PRP"
        elif lowered in _PREPOSITIONS:
            tag = "IN"
        elif lowered in _CONJUNCTIONS:
            tag = "CC"
        elif re.fullmatch(r"\d+(\.\d+)?", token):
            tag = "CD"
        elif lowered in _COMMON_VERBS or lowered.endswith(_VERB_SUFFIXES):
            tag = "VB"
        elif lowered.endswith(_ADVERB_SUFFIX) and len(lowered) > 3:
            tag = "RB"
        elif token[:1].isupper():
            tag = "NNP"
        else:
            tag = "NN"
        tags.append((token, tag))
    return tags


def token_window(tokens: Sequence[str], center: int, radius: int) -> List[str]:
    """Tokens within ``radius`` positions of ``center`` (excluding the center token)."""
    lo = max(0, center - radius)
    hi = min(len(tokens), center + radius + 1)
    return [tokens[i] for i in range(lo, hi) if i != center]
