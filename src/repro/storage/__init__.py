"""Materialization store: catalog, serialization and disk/in-memory backends.

Also home of the executor wire format (:func:`encode_frame` and friends):
the distributed executor frames the same serialized payloads the store
writes, so the framing lives next to the serializer.
"""

from .catalog import ArtifactRecord, Catalog
from .serialization import (
    FRAME_MAGIC,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_frame,
    deserialize,
    encode_frame,
    estimate_size_bytes,
    recv_frame,
    send_frame,
    serialize,
    serialized_size,
)
from .store import DiskStore, InMemoryStore, MaterializationStore, StoredArtifact

__all__ = [
    "ArtifactRecord",
    "Catalog",
    "FRAME_MAGIC",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "decode_frame",
    "deserialize",
    "encode_frame",
    "estimate_size_bytes",
    "recv_frame",
    "send_frame",
    "serialize",
    "serialized_size",
    "DiskStore",
    "InMemoryStore",
    "MaterializationStore",
    "StoredArtifact",
]
