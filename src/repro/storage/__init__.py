"""Materialization store: catalog, serialization and disk/in-memory backends."""

from .catalog import ArtifactRecord, Catalog
from .serialization import deserialize, estimate_size_bytes, serialize, serialized_size
from .store import DiskStore, InMemoryStore, MaterializationStore, StoredArtifact

__all__ = [
    "ArtifactRecord",
    "Catalog",
    "deserialize",
    "estimate_size_bytes",
    "serialize",
    "serialized_size",
    "DiskStore",
    "InMemoryStore",
    "MaterializationStore",
    "StoredArtifact",
]
