"""Canonical binary serialization: deterministic, versioned, zero-copy capable.

This module is the value-encoding layer underneath
:func:`repro.storage.serialization.serialize`.  Its contract is *canonical
form*: for every value built from the covered types, ``encode(x)`` yields the
same bytes in every process and on every Python version of the CI matrix —
dict entries are sorted by their encoded keys (insertion order never leaks
into the bytes), sets are sorted by their encoded elements, integers use a
minimal zigzag varint, floats are raw IEEE-754 bits, and NumPy arrays are a
dtype descriptor plus their contiguous buffer.  Deterministic bytes are what
let the executor-equivalence harness compare serialized store sizes with
*exact equality* across the inline/thread/process/distributed strategies
(pickle's memo-dependent output made sizes drift across a process boundary),
and they are the precondition for content-addressed artifact storage
(signature-as-address only works when the same value always has the same
bytes).

Covered types (explicit tags)
-----------------------------
``None``, ``bool``, ``int`` (arbitrary precision), ``float``, ``complex``,
``str``, ``bytes``/``bytearray``, ``list``/``tuple``, ``set``/``frozenset``
(element-sorted), ``dict`` (key-sorted), :class:`enum.Enum` members (by
class + name), NumPy arrays (dtype descriptor + shape + order + raw buffer)
and NumPy scalars, dataclass instances (class reference + field-name-sorted
values), pandas ``Series``/``DataFrame`` when pandas is importable, and two
generic object forms: classes with a ``__getstate__``/``__setstate__`` pair
(e.g. :class:`~repro.storage.serialization.ArtifactRef`) and plain classes
whose state is just ``__dict__``/``__slots__`` (feature vectors, data
collections, fitted models).  Everything else — functions, exceptions,
classes-as-values, objects with a custom ``__reduce__`` — falls back to an
embedded pickle (protocol 5); fallback bytes round-trip correctly but are
*not* guaranteed canonical, which is acceptable because materialized
workflow artifacts are built from the covered types.

Out-of-band buffers (zero-copy)
-------------------------------
:func:`encode_segments` returns the encoding as a list of byte segments:
a fixed prefix, the tag body, and one segment per *out-of-band buffer* —
the raw memory of every NumPy array (and any inline ``bytes`` blob) at or
above :data:`OOB_MIN_BYTES`.  Array segments are read-only ``memoryview``\\s
into the array's own buffer, so the transport can gather-write them
(``socket.sendmsg``) without ever copying the payload into one big bytes
object.  ``b"".join(encode_segments(x))`` *is* ``encode(x)``: the packed
single-buffer form and the scattered zero-copy form are the same bytes,
which is what lets a length-prefixed frame carry either.  ``decode`` slices
buffers back out of the packed payload as memoryviews; arrays are copied
into fresh writable memory by default (``copy_buffers=False`` keeps them as
read-only zero-copy views for consumers that only read).

Packed layout::

    +----+---------+--------------+----------------------+-----------+------+---------+
    | HC | version | nbufs varint | buffer-length varints| body len  | body | buffers |
    +----+---------+--------------+----------------------+-----------+------+---------+

Dict keys and set elements are always encoded *inline* (no out-of-band
hoisting) so their sort order is a pure function of the value; buffer
indices appear only in body positions whose order is already determined.

Decoding untrusted data: the format embeds class references (imported on
decode) and pickle fallbacks, so it inherits pickle's trust model — only
decode payloads from the same trust domain, exactly like the store and the
executor transport already require.  Malformed payloads (truncated body,
unknown tag bytes, out-of-range buffer indices) raise a typed
:class:`~repro.exceptions.ProtocolError` rather than crashing the consumer.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import importlib
import pickle
import struct
import types
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..exceptions import ProtocolError

try:  # pragma: no cover - exercised only where pandas is installed
    import pandas as _pd
except Exception:  # noqa: BLE001 - pandas is an optional dependency
    _pd = None

__all__ = [
    "CANONICAL_MAGIC",
    "CANONICAL_VERSION",
    "OOB_MIN_BYTES",
    "encode",
    "encode_segments",
    "decode",
    "is_canonical",
    "content_digest",
]

#: Two-byte marker distinguishing canonical payloads from legacy pickles
#: (pickle protocol >= 2 always starts with ``b"\\x80"``).
CANONICAL_MAGIC = b"HC"

#: Version byte of the canonical value encoding.  Bump on any change to the
#: tag set or their byte layouts.
CANONICAL_VERSION = 1

#: Buffers at or above this many bytes are hoisted out of the tag body into
#: the out-of-band buffer section (one segment each, shipped zero-copy).
#: The threshold is part of the canonical form — it decides byte layout —
#: so it must never depend on runtime state.
OOB_MIN_BYTES = 256

_FLOAT = struct.Struct(">d")
_COMPLEX = struct.Struct(">dd")
_PICKLE_PROTOCOL = 5

# Tag bytes.  Grouped by kind; values are arbitrary but frozen forever
# (they are the wire format).
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"i"
_T_FLOAT = b"f"
_T_COMPLEX = b"c"
_T_STR = b"s"
_T_BYTES = b"b"
_T_BYTEARRAY = b"y"
_T_LIST = b"l"
_T_TUPLE = b"t"
_T_SET = b"e"
_T_FROZENSET = b"z"
_T_DICT = b"d"
_T_NDARRAY = b"a"
_T_NPSCALAR = b"g"
_T_ENUM = b"E"
_T_DATACLASS = b"D"
_T_OBJ_STATE = b"O"
_T_OBJ_DICT = b"o"
_T_SERIES = b"S"
_T_DATAFRAME = b"R"
_T_PICKLE = b"P"

_BLOB_INLINE = b"\x00"
_BLOB_OOB = b"\x01"


class _Cyclic(Exception):
    """Internal: a container cycle was found; retry the value via pickle."""


# ---------------------------------------------------------------------------
# varints
# ---------------------------------------------------------------------------
def _write_uvarint(out: bytearray, value: int) -> None:
    """Unsigned LEB128."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _zigzag(value: int) -> int:
    """Arbitrary-precision zigzag fold: sign moves into the low bit."""
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


class _Reader:
    """Bounds-checked cursor over the packed body."""

    __slots__ = ("data", "pos", "end")

    def __init__(self, data: memoryview, start: int, end: int):
        self.data = data
        self.pos = start
        self.end = end

    def take(self, n: int) -> memoryview:
        if n < 0 or self.pos + n > self.end:
            raise ProtocolError(
                f"canonical payload truncated: needed {n} bytes at offset "
                f"{self.pos}, body ends at {self.end}"
            )
        view = self.data[self.pos : self.pos + n]
        self.pos += n
        return view

    def byte(self) -> int:
        return self.take(1)[0]

    def uvarint(self) -> int:
        # Termination is bounded by take(): a run of continuation bytes
        # cannot outlive the body without raising a truncation error.
        shift = 0
        result = 0
        while True:
            byte = self.byte()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7

    def svarint(self) -> int:
        raw = self.uvarint()
        return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------
class _Encoder:
    __slots__ = ("buffers", "allow_oob", "_stack")

    def __init__(self, allow_oob: bool):
        self.buffers: List[Union[bytes, memoryview]] = []
        self.allow_oob = allow_oob
        self._stack: set = set()

    # -- helpers -----------------------------------------------------------
    def _blob(self, out: bytearray, data: Union[bytes, memoryview], inline_only: bool = False) -> None:
        """A length-delimited byte blob, inline or hoisted out-of-band."""
        if self.allow_oob and not inline_only and len(data) >= OOB_MIN_BYTES:
            out += _BLOB_OOB
            _write_uvarint(out, len(self.buffers))
            self.buffers.append(data)
        else:
            out += _BLOB_INLINE
            _write_uvarint(out, len(data))
            out += data

    def _str(self, out: bytearray, text: str) -> None:
        data = text.encode("utf-8", "surrogatepass")
        _write_uvarint(out, len(data))
        out += data

    def _classref(self, out: bytearray, cls: type) -> None:
        self._str(out, cls.__module__)
        self._str(out, cls.__qualname__)

    def _inline_bytes(self, value: Any) -> bytes:
        """Encode ``value`` with out-of-band hoisting disabled (sort keys)."""
        sub = _Encoder(allow_oob=False)
        sub._stack = self._stack  # share cycle detection across the nesting
        out = bytearray()
        sub.encode_value(out, value)
        return bytes(out)

    def _pickle(self, out: bytearray, value: Any) -> None:
        """Protocol-5 pickle fallback with out-of-band ``PickleBuffer``\\s."""
        picked: List[Union[bytes, memoryview]] = []

        def _grab(pb: "pickle.PickleBuffer") -> bool:
            try:
                picked.append(pb.raw())
            except BufferError:  # non-contiguous buffer: materialize it
                picked.append(bytes(pb))
            return False  # False = do not also serialize it in-band

        if self.allow_oob:
            body = pickle.dumps(value, protocol=_PICKLE_PROTOCOL, buffer_callback=_grab)
        else:
            body = pickle.dumps(value, protocol=_PICKLE_PROTOCOL)
        out += _T_PICKLE
        _write_uvarint(out, len(picked))
        for chunk in picked:
            self._blob(out, chunk)
        self._blob(out, body)

    # -- main dispatch -----------------------------------------------------
    def encode_value(self, out: bytearray, value: Any) -> None:  # noqa: C901
        kind = type(value)
        if value is None:
            out += _T_NONE
        elif kind is bool:
            out += _T_TRUE if value else _T_FALSE
        elif kind is int:
            out += _T_INT
            _write_uvarint(out, _zigzag(value))
        elif kind is float:
            out += _T_FLOAT
            out += _FLOAT.pack(value)
        elif kind is complex:
            out += _T_COMPLEX
            out += _COMPLEX.pack(value.real, value.imag)
        elif kind is str:
            out += _T_STR
            self._str(out, value)
        elif kind is bytes:
            out += _T_BYTES
            self._blob(out, value)
        elif kind is bytearray:
            out += _T_BYTEARRAY
            self._blob(out, bytes(value))
        elif kind is list or kind is tuple:
            self._container(out, _T_LIST if kind is list else _T_TUPLE, value)
        elif kind is set or kind is frozenset:
            out += _T_SET if kind is set else _T_FROZENSET
            encoded = sorted(self._inline_bytes(item) for item in value)
            _write_uvarint(out, len(encoded))
            for item in encoded:
                out += item
        elif kind is dict:
            self._dict(out, value)
        elif isinstance(value, np.ndarray):
            self._ndarray(out, value)
        elif isinstance(value, np.generic):
            out += _T_NPSCALAR
            self._str(out, _dtype_descr(value.dtype))
            self._blob(out, value.tobytes(), inline_only=True)
        elif isinstance(value, Enum):
            if _importable(kind):
                out += _T_ENUM
                self._classref(out, kind)
                self._str(out, value.name)
            else:
                self._pickle(out, value)
        elif dataclasses.is_dataclass(value) and not isinstance(value, type):
            self._dataclass(out, value)
        elif _pd is not None and isinstance(value, _pd.Series):
            self._series(out, value)
        elif _pd is not None and isinstance(value, _pd.DataFrame):
            self._dataframe(out, value)
        else:
            state = _object_form(value)
            if state is None:
                self._pickle(out, value)
            else:
                self._object(out, value, state)

    # -- composite forms ---------------------------------------------------
    def _guard(self, value: Any) -> int:
        marker = id(value)
        if marker in self._stack:
            raise _Cyclic()
        self._stack.add(marker)
        return marker

    def _container(self, out: bytearray, tag: bytes, value: Any) -> None:
        marker = self._guard(value)
        try:
            out += tag
            _write_uvarint(out, len(value))
            for item in value:
                self.encode_value(out, item)
        finally:
            self._stack.discard(marker)

    def _dict(self, out: bytearray, value: Dict[Any, Any]) -> None:
        marker = self._guard(value)
        try:
            out += _T_DICT
            _write_uvarint(out, len(value))
            # Keys encode inline (never out-of-band) so the sort order is a
            # pure function of the key values; the values are then encoded
            # in that order, which pins buffer indices deterministically.
            pairs = sorted(
                (self._inline_bytes(key), key) for key in value
            )
            for key_bytes, key in pairs:
                out += key_bytes
                self.encode_value(out, value[key])
        finally:
            self._stack.discard(marker)

    def _ndarray(self, out: bytearray, value: np.ndarray) -> None:
        if value.dtype.hasobject:
            # Object arrays have no raw-buffer form; their elements are
            # arbitrary Python objects, so the whole array rides the
            # pickle fallback.
            self._pickle(out, value)
            return
        if value.flags.c_contiguous:
            array, order = value, b"C"
        elif value.flags.f_contiguous:
            array, order = value, b"F"
        else:
            # One unavoidable copy for strided views; note ascontiguousarray
            # would also promote 0-d arrays to 1-d, hence the ordering above.
            array, order = np.ascontiguousarray(value), b"C"
        out += _T_NDARRAY
        self._str(out, _dtype_descr(array.dtype))
        out += order
        _write_uvarint(out, array.ndim)
        for dim in array.shape:
            _write_uvarint(out, dim)
        # reshape(-1) flattens without copying (the source is contiguous in
        # the stored order), and a 1-D memoryview casts to bytes cleanly —
        # including for 0-d arrays, which reshape to one element.
        flat = (array if order == b"C" else array.T).reshape(-1)
        view = memoryview(flat).cast("B") if array.nbytes else b""
        self._blob(out, view)

    def _dataclass(self, out: bytearray, value: Any) -> None:
        cls = type(value)
        fields = dataclasses.fields(value)
        extra = getattr(value, "__dict__", None)
        clean = extra is None or set(extra) <= {f.name for f in fields}
        if not (_importable(cls) and clean):
            # Ad-hoc attributes beyond the declared fields (or a locally
            # defined class) would be dropped by field-wise reconstruction.
            self._pickle(out, value)
            return
        marker = self._guard(value)
        try:
            out += _T_DATACLASS
            self._classref(out, cls)
            _write_uvarint(out, len(fields))
            for spec in sorted(fields, key=lambda f: f.name):
                self._str(out, spec.name)
                self.encode_value(out, getattr(value, spec.name))
        finally:
            self._stack.discard(marker)

    def _object(self, out: bytearray, value: Any, state: Tuple[bytes, Any]) -> None:
        tag, payload = state
        marker = self._guard(value)
        try:
            out += tag
            self._classref(out, type(value))
            self.encode_value(out, payload)
        finally:
            self._stack.discard(marker)

    def _series(self, out: bytearray, value: Any) -> None:  # pragma: no cover
        plain = _plain_pandas_index(value.index)
        if plain is None or value.dtype.hasobject and _has_exotic_objects(value.to_numpy()):
            self._pickle(out, value)
            return
        out += _T_SERIES
        self.encode_value(out, value.name)
        self.encode_value(out, plain)
        self.encode_value(out, str(value.dtype))
        self.encode_value(out, np.asarray(value.to_numpy()))

    def _dataframe(self, out: bytearray, value: Any) -> None:  # pragma: no cover
        plain = _plain_pandas_index(value.index)
        if plain is None or _plain_pandas_index(value.columns) is None:
            self._pickle(out, value)
            return
        out += _T_DATAFRAME
        self.encode_value(out, plain)
        marker = self._guard(value)
        try:
            columns = list(value.columns)
            _write_uvarint(out, len(columns))
            for column in columns:
                self.encode_value(out, column)
                self.encode_value(out, str(value[column].dtype))
                self.encode_value(out, np.asarray(value[column].to_numpy()))
        finally:
            self._stack.discard(marker)


def _dtype_descr(dtype: np.dtype) -> str:
    """A stable textual dtype descriptor round-tripping through ``np.dtype``."""
    descr = np.lib.format.dtype_to_descr(dtype)
    return descr if isinstance(descr, str) else repr(descr)


def _has_exotic_objects(array: np.ndarray) -> bool:  # pragma: no cover
    return any(not isinstance(item, (str, bytes, int, float, bool, type(None))) for item in array.flat)


def _plain_pandas_index(index: Any) -> Optional[list]:  # pragma: no cover
    """A pandas index reduced to a plain list, or ``None`` when it is exotic."""
    if _pd is None or isinstance(index, _pd.MultiIndex):
        return None
    try:
        return [item for item in index]
    except Exception:  # noqa: BLE001 - anything unexpected -> pickle fallback
        return None


_DISPATCH_BLOCKLIST = (
    type,
    types.FunctionType,
    types.BuiltinFunctionType,
    types.MethodType,
    types.ModuleType,
    type(np.ndarray.sum),  # method descriptors
)


def _overrides(cls: type, name: str) -> bool:
    return getattr(cls, name, None) is not getattr(object, name, None)


def _importable(cls: type) -> bool:
    """Whether a class reference can be resolved on decode (no locals)."""
    if "<locals>" in cls.__qualname__:
        return False
    try:
        module = importlib.import_module(cls.__module__)
    except Exception:  # noqa: BLE001 - unimportable module
        return False
    return _resolve_qualname(module, cls.__qualname__) is cls


def _resolve_qualname(module: Any, qualname: str) -> Any:
    target = module
    for part in qualname.split("."):
        target = getattr(target, part, None)
        if target is None:
            return None
    return target


def _object_form(value: Any) -> Optional[Tuple[bytes, Any]]:
    """Generic object encoding: ``(tag, state)`` or ``None`` for pickle.

    Two safe shapes:

    * a ``__getstate__``/``__setstate__`` pair with no custom reduce — the
      class manages its own state contract (:class:`ArtifactRef`);
    * a plain class with no pickle customization at all, whose state is
      exactly ``__dict__`` plus set ``__slots__`` — encoded as a sorted
      attribute dict (feature vectors, data collections, fitted models).

    Anything with a custom ``__reduce__``/``__reduce_ex__``/
    ``__getnewargs__`` (exceptions, functions, rngs) keeps pickle's exact
    semantics via the fallback.
    """
    cls = type(value)
    if isinstance(value, _DISPATCH_BLOCKLIST) or isinstance(value, BaseException):
        return None
    if _overrides(cls, "__reduce__") or _overrides(cls, "__reduce_ex__"):
        return None
    if _overrides(cls, "__getnewargs__") or _overrides(cls, "__getnewargs_ex__"):
        return None
    if not _importable(cls):
        return None
    has_getstate = _overrides(cls, "__getstate__")
    has_setstate = _overrides(cls, "__setstate__")
    if has_getstate or has_setstate:
        if not (has_getstate and has_setstate):
            return None  # half a state contract: let pickle sort it out
        return _T_OBJ_STATE, value.__getstate__()
    state: Dict[str, Any] = {}
    found = False
    instance_dict = getattr(value, "__dict__", None)
    if isinstance(instance_dict, dict):
        state.update(instance_dict)
        found = True
    for klass in cls.__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if slot in ("__dict__", "__weakref__"):
                continue
            found = True
            try:
                state[slot] = getattr(value, slot)
            except AttributeError:
                pass  # unset slot: absent from the state, like pickle
    if not found:
        return None
    return _T_OBJ_DICT, state


def encode_segments(value: Any) -> List[Union[bytes, memoryview]]:
    """Encode ``value`` as ``[prefix, body, *buffers]`` byte segments.

    ``b"".join(segments)`` equals :func:`encode`'s packed form; buffer
    segments at index 2+ are the out-of-band buffers (NumPy array memory as
    read-only memoryviews — zero-copy — plus large ``bytes`` blobs and
    pickle-fallback ``PickleBuffer`` contents).  The caller must finish
    sending/joining the segments before mutating any source array.
    """
    encoder = _Encoder(allow_oob=True)
    body = bytearray()
    try:
        encoder.encode_value(body, value)
    except _Cyclic:
        # Self-referential containers need pickle's memo machinery; encode
        # the whole value as one fallback blob (correct, just not canonical
        # — cyclic values do not occur in materialized artifacts).
        encoder = _Encoder(allow_oob=True)
        body = bytearray()
        encoder._pickle(body, value)
    buffers = [
        buf if isinstance(buf, memoryview) else memoryview(buf)
        for buf in encoder.buffers
    ]
    prefix = bytearray()
    prefix += CANONICAL_MAGIC
    prefix.append(CANONICAL_VERSION)
    _write_uvarint(prefix, len(buffers))
    for buf in buffers:
        _write_uvarint(prefix, len(buf))
    _write_uvarint(prefix, len(body))
    return [bytes(prefix), bytes(body), *buffers]


def encode(value: Any) -> bytes:
    """Packed canonical encoding (a single ``bytes`` object)."""
    return b"".join(encode_segments(value))


def is_canonical(payload: Union[bytes, bytearray, memoryview]) -> bool:
    """Whether ``payload`` starts with the canonical magic prefix."""
    return bytes(payload[:2]) == CANONICAL_MAGIC


def content_digest(payload: Union[bytes, bytearray, memoryview]) -> str:
    """Hex SHA-256 of serialized payload bytes — the content-address digest.

    Because the canonical encoding is deterministic, the digest of an
    artifact's serialized bytes is a pure function of its value: every
    process that materializes the same value under the same signature
    stores and ships byte-identical blobs with the same digest.  The store
    records it per artifact and the worker-side artifact cache uses it to
    assert byte-exact dedup when the same signature arrives twice (once
    from the coordinator's FETCH lane, once from a peer transfer, the
    bytes must agree).
    """
    return hashlib.sha256(payload).hexdigest()


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------
class _Decoder:
    __slots__ = ("buffers", "copy_buffers")

    def __init__(self, buffers: List[memoryview], copy_buffers: bool):
        self.buffers = buffers
        self.copy_buffers = copy_buffers

    def _blob(self, reader: _Reader) -> memoryview:
        flag = reader.take(1)
        if flag == _BLOB_INLINE:
            return reader.take(reader.uvarint())
        if flag == _BLOB_OOB:
            index = reader.uvarint()
            if index >= len(self.buffers):
                raise ProtocolError(
                    f"canonical payload references out-of-band buffer "
                    f"{index} but only {len(self.buffers)} are present"
                )
            return self.buffers[index]
        raise ProtocolError(
            f"canonical payload has an invalid blob flag 0x{flag[0]:02x}"
        )

    def _str(self, reader: _Reader) -> str:
        return bytes(reader.take(reader.uvarint())).decode("utf-8", "surrogatepass")

    def _class(self, reader: _Reader) -> type:
        module_name = self._str(reader)
        qualname = self._str(reader)
        try:
            module = importlib.import_module(module_name)
        except Exception as exc:  # noqa: BLE001 - typed decode failure
            raise ProtocolError(
                f"canonical payload references unimportable module "
                f"{module_name!r}: {exc}"
            ) from exc
        target = _resolve_qualname(module, qualname)
        if not isinstance(target, type):
            raise ProtocolError(
                f"canonical payload references {module_name}:{qualname}, "
                f"which does not resolve to a class"
            )
        return target

    def decode_value(self, reader: _Reader) -> Any:  # noqa: C901
        tag = bytes(reader.take(1))
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            return reader.svarint()
        if tag == _T_FLOAT:
            return _FLOAT.unpack(reader.take(_FLOAT.size))[0]
        if tag == _T_COMPLEX:
            real, imag = _COMPLEX.unpack(reader.take(_COMPLEX.size))
            return complex(real, imag)
        if tag == _T_STR:
            return self._str(reader)
        if tag == _T_BYTES:
            return bytes(self._blob(reader))
        if tag == _T_BYTEARRAY:
            return bytearray(self._blob(reader))
        if tag == _T_LIST:
            return [self.decode_value(reader) for _ in range(reader.uvarint())]
        if tag == _T_TUPLE:
            return tuple(self.decode_value(reader) for _ in range(reader.uvarint()))
        if tag == _T_SET:
            return {self.decode_value(reader) for _ in range(reader.uvarint())}
        if tag == _T_FROZENSET:
            return frozenset(
                self.decode_value(reader) for _ in range(reader.uvarint())
            )
        if tag == _T_DICT:
            return {
                self.decode_value(reader): self.decode_value(reader)
                for _ in range(reader.uvarint())
            }
        if tag == _T_NDARRAY:
            return self._ndarray(reader)
        if tag == _T_NPSCALAR:
            dtype = self._dtype(self._str(reader))
            data = self._blob(reader)
            return np.frombuffer(data, dtype=dtype)[0]
        if tag == _T_ENUM:
            cls = self._class(reader)
            name = self._str(reader)
            try:
                return cls[name]
            except KeyError as exc:
                raise ProtocolError(
                    f"canonical payload names unknown enum member "
                    f"{cls.__qualname__}.{name}"
                ) from exc
        if tag == _T_DATACLASS:
            return self._dataclass(reader)
        if tag == _T_OBJ_STATE:
            cls = self._class(reader)
            state = self.decode_value(reader)
            instance = cls.__new__(cls)
            instance.__setstate__(state)
            return instance
        if tag == _T_OBJ_DICT:
            cls = self._class(reader)
            state = self.decode_value(reader)
            instance = cls.__new__(cls)
            for name, attr in state.items():
                object.__setattr__(instance, name, attr)
            return instance
        if tag == _T_SERIES:
            return self._series(reader)
        if tag == _T_DATAFRAME:
            return self._dataframe(reader)
        if tag == _T_PICKLE:
            count = reader.uvarint()
            picked = [self._blob(reader) for _ in range(count)]
            body = self._blob(reader)
            return pickle.loads(bytes(body), buffers=picked)
        raise ProtocolError(
            f"canonical payload has unknown type tag 0x{tag[0]:02x} "
            f"(version skew or corruption)"
        )

    def _dtype(self, descr: str) -> np.dtype:
        try:
            if descr.startswith("["):
                # Structured dtype descriptor stored as its list repr;
                # literal_eval only admits constants/lists/tuples.
                return np.dtype(ast.literal_eval(descr))
            return np.dtype(descr)
        except Exception as exc:  # noqa: BLE001 - typed decode failure
            raise ProtocolError(
                f"canonical payload carries invalid dtype descriptor {descr!r}"
            ) from exc

    def _ndarray(self, reader: _Reader) -> np.ndarray:
        dtype = self._dtype(self._str(reader))
        order = bytes(reader.take(1))
        if order not in (b"C", b"F"):
            raise ProtocolError(
                f"canonical ndarray has invalid order byte {order!r}"
            )
        ndim = reader.uvarint()
        shape = tuple(reader.uvarint() for _ in range(ndim))
        data = self._blob(reader)
        count = 1
        for dim in shape:
            count *= dim
        if dtype.itemsize and len(data) != count * dtype.itemsize:
            raise ProtocolError(
                f"canonical ndarray of shape {shape} dtype {dtype} expects "
                f"{count * dtype.itemsize} buffer bytes, got {len(data)}"
            )
        flat = np.frombuffer(data, dtype=dtype)
        if order == b"C":
            array = flat.reshape(shape)
        else:
            array = flat.reshape(tuple(reversed(shape))).T
        if self.copy_buffers:
            # order="K" keeps the C/F memory layout, so a decoded value
            # re-encodes to the same bytes (round-trip stability).
            return array.copy(order="K")
        return array  # zero-copy read-only view into the payload

    def _dataclass(self, reader: _Reader) -> Any:
        cls = self._class(reader)
        count = reader.uvarint()
        instance = cls.__new__(cls)
        for _ in range(count):
            name = self._str(reader)
            # object.__setattr__ also serves frozen and slotted dataclasses.
            object.__setattr__(instance, name, self.decode_value(reader))
        return instance

    def _series(self, reader: _Reader) -> Any:
        if _pd is None:
            raise ProtocolError(
                "canonical payload carries a pandas Series but pandas is "
                "not installed in this process"
            )
        name = self.decode_value(reader)
        index = self.decode_value(reader)
        dtype = self.decode_value(reader)
        values = self.decode_value(reader)
        return _pd.Series(values, index=index, name=name, dtype=dtype)

    def _dataframe(self, reader: _Reader) -> Any:
        if _pd is None:
            raise ProtocolError(
                "canonical payload carries a pandas DataFrame but pandas is "
                "not installed in this process"
            )
        index = self.decode_value(reader)
        count = reader.uvarint()
        columns = {}
        order = []
        for _ in range(count):
            column = self.decode_value(reader)
            dtype = self.decode_value(reader)
            values = self.decode_value(reader)
            columns[column] = _pd.Series(values, index=index, dtype=dtype)
            order.append(column)
        frame = _pd.DataFrame(columns, index=index)
        return frame[order] if order else frame


def decode(
    payload: Union[bytes, bytearray, memoryview], copy_buffers: bool = True
) -> Any:
    """Inverse of :func:`encode` (accepts the packed single-buffer form).

    ``copy_buffers=False`` reconstructs NumPy arrays as read-only zero-copy
    views into ``payload`` — the caller must keep the payload alive and must
    not need to mutate the arrays.  The default copies array data into
    fresh writable memory, preserving each array's C/F layout so re-encoding
    a decoded value reproduces the original bytes.

    Raises :class:`~repro.exceptions.ProtocolError` on truncated payloads,
    unknown type tags, invalid buffer references, or a bad magic/version
    prefix.
    """
    view = memoryview(payload)
    if view.ndim != 1 or view.format != "B":
        view = view.cast("B")
    if len(view) < 3:
        raise ProtocolError(
            f"canonical payload of {len(view)} bytes is shorter than the "
            f"magic + version prefix"
        )
    if bytes(view[:2]) != CANONICAL_MAGIC:
        raise ProtocolError(
            f"bad canonical magic {bytes(view[:2])!r} (expected "
            f"{CANONICAL_MAGIC!r})"
        )
    if view[2] != CANONICAL_VERSION:
        raise ProtocolError(
            f"canonical encoding version mismatch: payload is version "
            f"{view[2]}, this process decodes version {CANONICAL_VERSION}"
        )
    reader = _Reader(view, 3, len(view))
    buffer_count = reader.uvarint()
    lengths = [reader.uvarint() for _ in range(buffer_count)]
    body_len = reader.uvarint()
    body_start = reader.pos
    body_end = body_start + body_len
    expected = body_end + sum(lengths)
    if expected != len(view):
        raise ProtocolError(
            f"canonical payload declares {expected} bytes but carries "
            f"{len(view)}"
        )
    buffers: List[memoryview] = []
    offset = body_end
    for length in lengths:
        buffers.append(view[offset : offset + length])
        offset += length
    decoder = _Decoder(buffers, copy_buffers=copy_buffers)
    body = _Reader(view, body_start, body_end)
    value = decoder.decode_value(body)
    if body.pos != body_end:
        raise ProtocolError(
            f"canonical payload has {body_end - body.pos} trailing body "
            f"bytes after the value"
        )
    return value
