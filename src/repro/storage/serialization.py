"""Serialization helpers for the materialization store.

Artifacts are serialized with :mod:`pickle` (protocol 4) — operator outputs
are plain Python/NumPy objects, and the store is private to the workflow
lifecycle, so pickle's trust model is acceptable here.  The module also
provides :func:`estimate_size_bytes`, a cheap size estimate used when a value
is cached in memory but has not (yet) been serialized.
"""

from __future__ import annotations

import io
import pickle
from typing import Any, Tuple

import numpy as np

__all__ = ["serialize", "deserialize", "serialized_size", "estimate_size_bytes"]

_PROTOCOL = 4


def serialize(value: Any) -> bytes:
    """Serialize a value to bytes."""
    return pickle.dumps(value, protocol=_PROTOCOL)


def deserialize(payload: bytes) -> Any:
    """Inverse of :func:`serialize`."""
    return pickle.loads(payload)


def serialized_size(value: Any) -> int:
    """Exact serialized size of a value in bytes (requires a full pickle pass)."""
    return len(serialize(value))


def estimate_size_bytes(value: Any) -> int:
    """Cheap size estimate without a full serialization pass.

    Objects exposing ``estimated_size_bytes()`` (data collections, prediction
    results) are asked directly; NumPy arrays report their buffer size;
    everything else falls back to an exact pickle size, which is fine because
    such values (scalars, small models) are small.
    """
    estimator = getattr(value, "estimated_size_bytes", None)
    if callable(estimator):
        return int(estimator())
    if isinstance(value, np.ndarray):
        return int(value.nbytes) + 128
    if isinstance(value, (int, float, bool)) or value is None:
        return 32
    if isinstance(value, str):
        return 49 + len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 64 + sum(estimate_size_bytes(v) for v in value)
    if isinstance(value, dict):
        return 64 + sum(
            estimate_size_bytes(k) + estimate_size_bytes(v) for k, v in value.items()
        )
    try:
        return serialized_size(value)
    except Exception:  # pragma: no cover - unpicklable exotic values
        return 256
