"""Serialization helpers for the materialization store and executor transport.

Artifacts are serialized with :mod:`pickle` (protocol 4) — operator outputs
are plain Python/NumPy objects, and the store is private to the workflow
lifecycle, so pickle's trust model is acceptable here.  The module also
provides :func:`estimate_size_bytes`, a cheap size estimate used when a value
is cached in memory but has not (yet) been serialized.

Wire format
-----------
The distributed executor ships these same serialized payloads between the
coordinator and its workers over TCP, delimited by **length-prefixed
frames**.  A frame is a fixed 8-byte header followed by the payload::

    +-------+---------+------------------+----------------+
    | magic | version | payload length   | payload bytes  |
    | 2B    | 2B (BE) | 4B (BE, unsigned)| length bytes   |
    +-------+---------+------------------+----------------+

``magic`` is :data:`FRAME_MAGIC` (``b"HX"``) and ``version`` is
:data:`PROTOCOL_VERSION`.  Every frame carries the version, so a coordinator
and worker built from different protocol revisions fail fast with a
:class:`~repro.exceptions.ProtocolError` on the *first* frame instead of
misinterpreting each other's pickles.  :func:`recv_frame` distinguishes a
clean end-of-stream at a frame boundary (returns ``None`` — the peer closed)
from a connection lost mid-frame (raises :class:`ProtocolError`).

Protocol version history
------------------------
* **1** — registration/heartbeat/task/ack/result/error/shutdown message
  tuples (the PR 4 local-TCP transport).
* **2** — adds the artifact lane for workers without access to the
  coordinator's store: a COMPUTE payload may carry :class:`ArtifactRef`
  placeholders instead of inline input values, and workers resolve them with
  ``("fetch", worker_id, signature)`` requests answered by
  ``("artifact", signature, payload_bytes | None)`` frames served from the
  coordinator's materialization store.
* **3** — session multiplexing: every task-related message is tagged with
  the id of the coordinator run session it belongs to, so one worker
  connection can interleave tasks from several concurrent runs.  The
  message tuples become ``("task", session, key, payload)``,
  ``("ack", worker_id, session, key)``, ``("result", session, key,
  reply)``, ``("error", session, key, exc)``, ``("fetch", worker_id,
  session, signature)`` and ``("artifact", session, signature,
  payload_bytes | None)``; a drained session is retired with
  ``("close_session", session)``, on which the worker releases that
  session's task lane, fetched-value cache and pending fetch slots (a
  long-lived connection outlives many sessions, so per-session state must
  die with its session).  Registration, heartbeat and shutdown are
  unchanged (they are connection-level, not session-level).
"""

from __future__ import annotations

import io
import pickle
import socket
import struct
from typing import Any, Callable, Optional, Tuple

import numpy as np

from ..exceptions import ProtocolError

__all__ = [
    "serialize",
    "deserialize",
    "serialized_size",
    "estimate_size_bytes",
    "ArtifactRef",
    "FRAME_MAGIC",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_frame",
    "send_frame",
    "recv_frame",
]

_PROTOCOL = 4

#: Two-byte frame marker ("HeliX") guarding against non-frame traffic.
FRAME_MAGIC = b"HX"

#: Version of the coordinator/worker wire protocol.  Bump on any change to
#: the frame layout *or* to the message tuples exchanged inside frames.
#: (3 = session-tagged task/result/error/fetch/artifact messages; see the
#: version history in the module docstring.)
PROTOCOL_VERSION = 3

#: Upper bound on a single frame's payload (1 GiB).  A length above this is
#: treated as a corrupt header rather than an allocation request.
MAX_FRAME_BYTES = 1 << 30

_FRAME_HEADER = struct.Struct(">2sHI")


def serialize(value: Any) -> bytes:
    """Serialize a value to bytes."""
    return pickle.dumps(value, protocol=_PROTOCOL)


def deserialize(payload: bytes) -> Any:
    """Inverse of :func:`serialize`."""
    return pickle.loads(payload)


def serialized_size(value: Any) -> int:
    """Exact serialized size of a value in bytes (requires a full pickle pass)."""
    return len(serialize(value))


def estimate_size_bytes(value: Any) -> int:
    """Cheap size estimate without a full serialization pass.

    Objects exposing ``estimated_size_bytes()`` (data collections, prediction
    results) are asked directly; NumPy arrays report their buffer size;
    everything else falls back to an exact pickle size, which is fine because
    such values (scalars, small models) are small.
    """
    estimator = getattr(value, "estimated_size_bytes", None)
    if callable(estimator):
        return int(estimator())
    if isinstance(value, np.ndarray):
        return int(value.nbytes) + 128
    if isinstance(value, (int, float, bool)) or value is None:
        return 32
    if isinstance(value, str):
        return 49 + len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 64 + sum(estimate_size_bytes(v) for v in value)
    if isinstance(value, dict):
        return 64 + sum(
            estimate_size_bytes(k) + estimate_size_bytes(v) for k, v in value.items()
        )
    try:
        return serialized_size(value)
    except Exception:  # pragma: no cover - unpicklable exotic values
        return 256


class ArtifactRef:
    """Placeholder for a task input that lives in the coordinator's store.

    When a COMPUTE payload is shipped to a worker that cannot share the
    coordinator's filesystem, inputs whose value is already materialized are
    replaced by an ``ArtifactRef`` carrying only the artifact's signature.
    The worker resolves the reference over its coordinator connection with a
    ``("fetch", worker_id, session, signature)`` message, answered by an
    ``("artifact", session, signature, bytes)`` frame — the LOAD lane
    introduced in protocol version 2 (session-tagged since version 3).
    Refs are picklable and compare by signature, so payloads containing
    them round-trip like any other serialized task.
    """

    __slots__ = ("signature",)

    def __init__(self, signature: str):
        self.signature = signature

    def __repr__(self) -> str:
        return f"ArtifactRef({self.signature!r})"

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, ArtifactRef) and other.signature == self.signature

    def __hash__(self) -> int:
        return hash((ArtifactRef, self.signature))

    def __getstate__(self) -> str:
        return self.signature

    def __setstate__(self, state: str) -> None:
        self.signature = state


# ---------------------------------------------------------------------------
# Framed wire format (distributed executor transport)
# ---------------------------------------------------------------------------
def encode_frame(payload: bytes, version: int = PROTOCOL_VERSION) -> bytes:
    """Wrap ``payload`` in a length-prefixed frame.

    Parameters
    ----------
    payload:
        Raw bytes to frame (typically a :func:`serialize` result).
    version:
        Protocol version stamped into the header.  Only tests should pass a
        non-default value (to exercise the mismatch path).

    Raises
    ------
    ProtocolError
        If ``payload`` exceeds :data:`MAX_FRAME_BYTES`.
    """
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return _FRAME_HEADER.pack(FRAME_MAGIC, version, len(payload)) + payload


def decode_frame(frame: bytes) -> bytes:
    """Inverse of :func:`encode_frame` for a complete in-memory frame.

    Returns the payload bytes.  Raises :class:`ProtocolError` on a bad magic
    prefix, a protocol-version mismatch, a corrupt length, or trailing bytes.
    """
    if len(frame) < _FRAME_HEADER.size:
        raise ProtocolError(
            f"truncated frame: {len(frame)} bytes is shorter than the "
            f"{_FRAME_HEADER.size}-byte header"
        )
    length = _check_header(frame[: _FRAME_HEADER.size])
    payload = frame[_FRAME_HEADER.size :]
    if len(payload) != length:
        raise ProtocolError(
            f"frame declares a {length}-byte payload but carries {len(payload)} bytes"
        )
    return payload


def send_frame(
    sock: socket.socket, payload: bytes, version: int = PROTOCOL_VERSION
) -> None:
    """Send one frame over a connected socket (blocking ``sendall``)."""
    sock.sendall(encode_frame(payload, version=version))


def recv_frame(
    sock: socket.socket, on_progress: Optional[Callable[[], None]] = None
) -> Optional[bytes]:
    """Receive one complete frame from a connected socket.

    Parameters
    ----------
    sock:
        The connected socket to read from.
    on_progress:
        Invoked after every chunk of bytes received, including chunks in
        the *middle* of a large frame.  The distributed coordinator uses it
        to refresh a worker's liveness while a multi-second result transfer
        is still in flight (the worker's heartbeats queue behind the
        transfer on its send lock, so frame progress is the liveness
        signal).

    Returns
    -------
    The payload bytes, or ``None`` when the peer closed the connection
    cleanly at a frame boundary (end of stream).

    Raises
    ------
    ProtocolError
        On a bad magic prefix, a protocol-version mismatch, a corrupt
        length, or a connection lost in the middle of a frame.
    """
    header = _recv_exact(sock, _FRAME_HEADER.size, eof_ok=True, on_progress=on_progress)
    if header is None:
        return None
    length = _check_header(header)
    if length == 0:
        return b""
    return _recv_exact(sock, length, eof_ok=False, on_progress=on_progress)


def _check_header(header: bytes) -> int:
    """Validate a frame header and return the declared payload length."""
    magic, version, length = _FRAME_HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {FRAME_MAGIC!r}); the peer "
            f"is not speaking the executor wire protocol"
        )
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks version {version}, "
            f"this process speaks version {PROTOCOL_VERSION}; coordinator and "
            f"workers must run the same library revision"
        )
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame declares a {length}-byte payload, above the "
            f"{MAX_FRAME_BYTES}-byte limit (corrupt header?)"
        )
    return length


def _recv_exact(
    sock: socket.socket,
    n: int,
    eof_ok: bool,
    on_progress: Optional[Callable[[], None]] = None,
) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on immediate EOF when ``eof_ok``."""
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except OSError as exc:
            raise ProtocolError(f"connection lost while reading a frame: {exc}") from exc
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining} of {n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
        if on_progress is not None:
            on_progress()
    return b"".join(chunks)
