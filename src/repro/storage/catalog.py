"""Catalog of materialized artifacts.

The catalog is the metadata layer of the materialization store: it maps each
artifact's *signature* (the recursive node signature from
:mod:`repro.core.signatures`) to an :class:`ArtifactRecord` describing where
the bytes live, how large they are, which node produced them and at which
iteration.  Keying by signature rather than node name is what makes reuse
safe: a changed operator produces a different signature and therefore can
never pick up a stale artifact.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["ArtifactRecord", "Catalog"]


@dataclass(frozen=True)
class ArtifactRecord:
    """Metadata for one materialized artifact.

    ``digest`` is the hex SHA-256 of the artifact's serialized canonical
    bytes (:func:`repro.storage.canonical.content_digest`) — the content
    address backing the distributed artifact plane: any holder of the same
    signature stores byte-identical blobs, so a blob fetched from a peer
    worker can be checked against the same digest the coordinator's store
    recorded.  Records persisted by pre-digest revisions load with an empty
    digest (unknown, never wrong).
    """

    signature: str
    node_name: str
    size_bytes: int
    iteration: int
    location: str = ""
    digest: str = ""

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "ArtifactRecord":
        return ArtifactRecord(
            signature=str(payload["signature"]),
            node_name=str(payload["node_name"]),
            size_bytes=int(payload["size_bytes"]),
            iteration=int(payload["iteration"]),
            location=str(payload.get("location", "")),
            digest=str(payload.get("digest", "")),
        )


class Catalog:
    """In-memory artifact catalog with optional JSON persistence."""

    def __init__(self, path: Optional[Path] = None):
        self._records: Dict[str, ArtifactRecord] = {}
        self._path = Path(path) if path is not None else None
        if self._path is not None and self._path.exists():
            self._load()

    # ------------------------------------------------------------------ basics
    def __contains__(self, signature: str) -> bool:
        return signature in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, signature: str) -> Optional[ArtifactRecord]:
        return self._records.get(signature)

    def add(self, record: ArtifactRecord) -> None:
        self._records[record.signature] = record

    def remove(self, signature: str) -> Optional[ArtifactRecord]:
        return self._records.pop(signature, None)

    def records(self) -> List[ArtifactRecord]:
        return sorted(self._records.values(), key=lambda r: (r.node_name, r.signature))

    # ------------------------------------------------------------------ queries
    def total_bytes(self) -> int:
        return sum(record.size_bytes for record in self._records.values())

    def by_node(self, node_name: str) -> List[ArtifactRecord]:
        return [r for r in self._records.values() if r.node_name == node_name]

    def signatures_for_node(self, node_name: str) -> List[str]:
        return [r.signature for r in self.by_node(node_name)]

    def stale_signatures(self, node_name: str, current_signature: str) -> List[str]:
        """Signatures stored for ``node_name`` that differ from the current one.

        Helix purges previous materializations of *original* (changed)
        operators before execution (Section 6.6: storage use is therefore not
        monotonic); the store uses this query to find what to purge.
        """
        return [
            record.signature
            for record in self.by_node(node_name)
            if record.signature != current_signature
        ]

    # ------------------------------------------------------------------ persistence
    def save(self) -> None:
        if self._path is None:
            return
        payload = [record.to_dict() for record in self.records()]
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._path.write_text(json.dumps(payload, indent=2, sort_keys=True))

    def _load(self) -> None:
        payload = json.loads(self._path.read_text())
        for entry in payload:
            record = ArtifactRecord.from_dict(entry)
            self._records[record.signature] = record
