"""Materialization stores: where intermediate results are persisted.

Two implementations share the :class:`MaterializationStore` interface:

* :class:`DiskStore` pickles artifacts into a directory and measures real
  read/write times — used by the benchmark harness so that load costs are
  genuine I/O costs.
* :class:`InMemoryStore` keeps serialized bytes in memory and *models* the
  read/write times from a configurable disk bandwidth — used by unit tests
  and the simulated-cost experiments where determinism matters.

Both enforce an optional storage budget: a ``put`` that would exceed the
budget raises :class:`~repro.exceptions.BudgetExceededError` (callers check
``remaining_budget`` first; the exception is the safety net).
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..exceptions import ArtifactNotFoundError, BudgetExceededError, StorageError
from .canonical import content_digest
from .catalog import ArtifactRecord, Catalog
from .serialization import deserialize, serialize

__all__ = ["MaterializationStore", "DiskStore", "InMemoryStore", "StoredArtifact"]


class StoredArtifact:
    """Result of a ``put``: the catalog record plus the observed write time."""

    __slots__ = ("record", "write_time")

    def __init__(self, record: ArtifactRecord, write_time: float):
        self.record = record
        self.write_time = write_time


class MaterializationStore(ABC):
    """Common interface and budget/catalog bookkeeping for artifact stores.

    All public operations are guarded by a reentrant lock so a store can be
    shared between the threads of the parallel execution engine: concurrent
    ``put`` calls serialize, which keeps the budget check + catalog insert
    atomic (two writers can never jointly overshoot the budget).
    """

    def __init__(self, budget_bytes: Optional[int] = None, catalog: Optional[Catalog] = None):
        if budget_bytes is not None and budget_bytes < 0:
            raise StorageError("storage budget must be non-negative")
        self.budget_bytes = budget_bytes
        self.catalog = catalog if catalog is not None else Catalog()
        self._store_lock = threading.RLock()

    # ------------------------------------------------------------------ interface
    @abstractmethod
    def _write(self, signature: str, value: Any) -> Tuple[int, float, str, str]:
        """Persist ``value``; return ``(size_bytes, write_seconds, location, digest)``.

        ``digest`` is the content digest of the serialized bytes
        (:func:`repro.storage.canonical.content_digest`); backends that
        cannot cheaply produce one may return ``""`` (unknown).
        """

    @abstractmethod
    def _read(self, record: ArtifactRecord) -> Tuple[Any, float]:
        """Read an artifact; return ``(value, read_seconds)``."""

    @abstractmethod
    def _delete(self, record: ArtifactRecord) -> None:
        """Remove persisted bytes for an artifact."""

    # ------------------------------------------------------------------ public API
    def has(self, signature: str) -> bool:
        with self._store_lock:
            return signature in self.catalog

    def total_bytes(self) -> int:
        with self._store_lock:
            return self.catalog.total_bytes()

    def remaining_budget(self) -> Optional[int]:
        if self.budget_bytes is None:
            return None
        return max(self.budget_bytes - self.total_bytes(), 0)

    def put(self, node_name: str, signature: str, value: Any, iteration: int = 0) -> StoredArtifact:
        """Materialize a value under its node signature.

        Re-putting an existing signature is a no-op (the artifact is already
        on disk and, by construction, identical).
        """
        with self._store_lock:
            existing = self.catalog.get(signature)
            if existing is not None:
                return StoredArtifact(existing, 0.0)
            size_bytes, write_time, location, digest = self._write(signature, value)
            if self.budget_bytes is not None and self.total_bytes() + size_bytes > self.budget_bytes:
                self._delete(ArtifactRecord(signature, node_name, size_bytes, iteration, location))
                raise BudgetExceededError(
                    f"materializing {node_name!r} ({size_bytes} bytes) would exceed the "
                    f"storage budget of {self.budget_bytes} bytes"
                )
            record = ArtifactRecord(
                signature=signature,
                node_name=node_name,
                size_bytes=size_bytes,
                iteration=iteration,
                location=location,
                digest=digest,
            )
            self.catalog.add(record)
            return StoredArtifact(record, write_time)

    def load(self, signature: str) -> Tuple[Any, float]:
        """Load a previously materialized value; returns ``(value, seconds)``."""
        with self._store_lock:
            record = self.catalog.get(signature)
        if record is None:
            raise ArtifactNotFoundError(f"no artifact for signature {signature[:12]}...")
        return self._read(record)

    def load_serialized(self, signature: str) -> Optional[bytes]:
        """Serialized bytes of a materialized artifact; ``None`` when absent.

        Serves the distributed executor's artifact FETCH lane: both
        built-in stores already hold pickled bytes, so their overrides of
        :meth:`_read_serialized` forward them without a deserialize +
        re-serialize round trip.  Backends without raw-bytes access fall
        back to ``serialize(load(...))``.
        """
        with self._store_lock:
            record = self.catalog.get(signature)
        if record is None:
            return None
        payload = self._read_serialized(record)
        if payload is not None:
            return payload
        value, _seconds = self._read(record)
        return serialize(value)

    def _read_serialized(self, record: ArtifactRecord) -> Optional[bytes]:
        """Raw stored bytes when the backend keeps them (``None`` = use ``_read``)."""
        del record
        return None

    def delete(self, signature: str) -> None:
        with self._store_lock:
            record = self.catalog.remove(signature)
            if record is not None:
                self._delete(record)

    def purge_node(self, node_name: str, keep_signature: Optional[str] = None) -> List[str]:
        """Remove stale artifacts for a node whose operator changed.

        Keeps the artifact matching ``keep_signature`` (if any) and deletes
        the rest, returning the removed signatures.  This is the purge the
        paper describes before executing an iteration with original
        operators, and it is why storage use is not monotonic (Figure 9c/d).
        """
        with self._store_lock:
            removed = []
            for signature in self.catalog.stale_signatures(node_name, keep_signature or ""):
                self.delete(signature)
                removed.append(signature)
            return removed

    def artifacts(self) -> List[ArtifactRecord]:
        with self._store_lock:
            return self.catalog.records()

    def clear(self) -> None:
        with self._store_lock:
            for record in list(self.catalog.records()):
                self.delete(record.signature)


class DiskStore(MaterializationStore):
    """Pickle-per-artifact store rooted at a directory, with measured I/O times."""

    def __init__(self, root: Path, budget_bytes: Optional[int] = None):
        super().__init__(budget_bytes=budget_bytes)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path_for(self, signature: str) -> Path:
        return self.root / f"{signature}.pkl"

    def _write(self, signature: str, value: Any) -> Tuple[int, float, str, str]:
        path = self._path_for(signature)
        start = time.perf_counter()
        payload = serialize(value)
        path.write_bytes(payload)
        elapsed = time.perf_counter() - start
        return len(payload), elapsed, str(path), content_digest(payload)

    def _read(self, record: ArtifactRecord) -> Tuple[Any, float]:
        path = Path(record.location) if record.location else self._path_for(record.signature)
        if not path.exists():
            raise ArtifactNotFoundError(f"artifact file missing: {path}")
        start = time.perf_counter()
        value = deserialize(path.read_bytes())
        elapsed = time.perf_counter() - start
        return value, elapsed

    def _delete(self, record: ArtifactRecord) -> None:
        path = Path(record.location) if record.location else self._path_for(record.signature)
        if path.exists():
            path.unlink()

    def _read_serialized(self, record: ArtifactRecord) -> Optional[bytes]:
        path = Path(record.location) if record.location else self._path_for(record.signature)
        return path.read_bytes() if path.exists() else None


class InMemoryStore(MaterializationStore):
    """Byte-buffer store with modelled I/O times (deterministic, for tests/simulation)."""

    def __init__(self, budget_bytes: Optional[int] = None, disk_bandwidth: float = 170e6,
                 latency_seconds: float = 1e-4):
        super().__init__(budget_bytes=budget_bytes)
        if disk_bandwidth <= 0:
            raise StorageError("disk bandwidth must be positive")
        self.disk_bandwidth = disk_bandwidth
        self.latency_seconds = latency_seconds
        self._blobs: Dict[str, bytes] = {}

    def _modelled_io_time(self, size_bytes: int) -> float:
        return self.latency_seconds + size_bytes / self.disk_bandwidth

    def _write(self, signature: str, value: Any) -> Tuple[int, float, str, str]:
        payload = serialize(value)
        self._blobs[signature] = payload
        return (
            len(payload),
            self._modelled_io_time(len(payload)),
            "memory",
            content_digest(payload),
        )

    def _read(self, record: ArtifactRecord) -> Tuple[Any, float]:
        payload = self._blobs.get(record.signature)
        if payload is None:
            raise ArtifactNotFoundError(f"artifact bytes missing for {record.node_name!r}")
        return deserialize(payload), self._modelled_io_time(len(payload))

    def _delete(self, record: ArtifactRecord) -> None:
        self._blobs.pop(record.signature, None)

    def _read_serialized(self, record: ArtifactRecord) -> Optional[bytes]:
        return self._blobs.get(record.signature)
