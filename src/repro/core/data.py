"""Data model for Helix workflows.

The paper (Section 3.2.1) distinguishes two element types inside a *data
collection* (DC):

* **Semantic units** (SUs) compartmentalize the logical and physical
  representation of features during data preprocessing (DPR).  An SU carries
  an input (records or feature values), a pointer to the DPR function that
  produced it, and a lazily produced output.
* **Examples** gather the outputs of a set of SUs into a single feature vector
  for learning/inference (L/I), optionally designating one SU output as the
  label.

This module implements :class:`Record`, :class:`FeatureVector` (dense and
sparse), :class:`SemanticUnit`, :class:`Example` and :class:`DataCollection`.
A :class:`DataCollection` is analogous to a relation: an ordered, immutable
sequence of homogeneous elements together with a ``split`` tag per element
("train" / "test" / "all") used for unified train/test handling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

__all__ = [
    "Split",
    "Record",
    "FeatureVector",
    "SemanticUnit",
    "Example",
    "DataCollection",
    "ElementKind",
]


class Split(str, Enum):
    """Which portion of the dataset an element belongs to."""

    TRAIN = "train"
    TEST = "test"
    ALL = "all"


class ElementKind(str, Enum):
    """Kind of elements stored in a :class:`DataCollection`."""

    RECORD = "record"
    SEMANTIC_UNIT = "semantic_unit"
    EXAMPLE = "example"
    GENERIC = "generic"


@dataclass(frozen=True)
class Record:
    """A raw data object in a format not yet compatible with ML.

    A record is a mapping from field names to values (think: a parsed CSV row,
    a JSON document, or a free-text article stored under a single key).  The
    optional ``split`` tag marks whether the record belongs to the training or
    the test portion of the data source.
    """

    fields: Mapping[str, Any]
    split: Split = Split.ALL

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self.fields

    def keys(self) -> Iterable[str]:
        return self.fields.keys()

    def with_fields(self, **extra: Any) -> "Record":
        """Return a copy of this record with additional or overridden fields."""
        merged = dict(self.fields)
        merged.update(extra)
        return Record(fields=merged, split=self.split)


class FeatureVector:
    """A named feature vector with either a sparse or a dense representation.

    Sparse categorical features are kept as a ``{name: value}`` mapping until
    final assembly (mirroring the paper's key-value representation), while
    dense features are stored as a NumPy array with generated names.  Feature
    vectors support concatenation and conversion to a dense array given a
    global feature index.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Optional[Mapping[str, float]] = None):
        self._values: Dict[str, float] = dict(values or {})

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_dense(cls, array: Sequence[float], prefix: str = "f") -> "FeatureVector":
        """Build a feature vector from a dense array, naming features ``prefix_i``."""
        arr = np.asarray(array, dtype=float).ravel()
        return cls({f"{prefix}_{i}": float(v) for i, v in enumerate(arr)})

    @classmethod
    def one_hot(cls, name: str, category: Any) -> "FeatureVector":
        """Build a one-hot (indicator) feature ``name=category -> 1.0``."""
        return cls({f"{name}={category}": 1.0})

    @classmethod
    def scalar(cls, name: str, value: float) -> "FeatureVector":
        """Build a single-feature vector."""
        return cls({name: float(value)})

    # -- accessors ---------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._values))

    def items(self) -> Iterable[Tuple[str, float]]:
        return self._values.items()

    def get(self, name: str, default: float = 0.0) -> float:
        return self._values.get(name, default)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FeatureVector):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(f"{k}={v:g}" for k, v in sorted(self._values.items())[:4])
        suffix = ", ..." if len(self._values) > 4 else ""
        return f"FeatureVector({preview}{suffix})"

    # -- operations --------------------------------------------------------
    def concat(self, *others: "FeatureVector") -> "FeatureVector":
        """Concatenate feature vectors (feature names must not collide)."""
        merged = dict(self._values)
        for other in others:
            for name, value in other.items():
                if name in merged and merged[name] != value:
                    raise ValueError(
                        f"feature name collision on '{name}' during concatenation"
                    )
                merged[name] = value
        return FeatureVector(merged)

    def to_dense(self, index: Mapping[str, int]) -> np.ndarray:
        """Convert to a dense array according to a global ``name -> position`` index."""
        dense = np.zeros(len(index), dtype=float)
        for name, value in self._values.items():
            position = index.get(name)
            if position is not None:
                dense[position] = value
        return dense

    def norm(self) -> float:
        """Euclidean norm of the feature values."""
        return math.sqrt(sum(v * v for v in self._values.values()))


@dataclass
class SemanticUnit:
    """The DPR data structure: input, the producing function name, lazy output.

    ``output`` is either a :class:`FeatureVector` (the common case for feature
    extraction), a record, or any intermediate value produced by a DPR
    function.  ``source`` names the operator that produced the SU, which is
    what allows examples to be assembled from named extractor outputs and is
    also the hook used for provenance tracking (data-driven pruning).
    """

    input: Any
    source: str
    output: Any = None
    split: Split = Split.ALL

    @property
    def has_features(self) -> bool:
        """Whether the SU output is a feature vector usable for learning."""
        return isinstance(self.output, FeatureVector)


@dataclass
class Example:
    """The L/I data structure: a set of SU outputs assembled into one vector.

    ``features`` is the concatenated feature vector, ``label`` the optional
    supervised label, ``split`` the train/test designation and ``provenance``
    maps each feature name back to the extractor (SU source) that produced it.
    """

    features: FeatureVector
    label: Optional[float] = None
    split: Split = Split.ALL
    provenance: Dict[str, str] = field(default_factory=dict)
    prediction: Optional[float] = None
    score: Optional[float] = None

    def with_prediction(self, prediction: float, score: Optional[float] = None) -> "Example":
        """Return a copy of this example annotated with an inference result."""
        return Example(
            features=self.features,
            label=self.label,
            split=self.split,
            provenance=dict(self.provenance),
            prediction=prediction,
            score=score,
        )


class DataCollection:
    """An ordered, homogeneous collection of elements (the paper's DC).

    Data collections are immutable: transformations return new collections.
    ``kind`` records the element type so that downstream operators can check
    their inputs, and convenience selectors (:meth:`train`, :meth:`test`)
    implement the unified train/test handling from Section 3.2.1.
    """

    __slots__ = ("name", "elements", "kind")

    def __init__(
        self,
        name: str,
        elements: Iterable[Any],
        kind: ElementKind = ElementKind.GENERIC,
    ):
        self.name = name
        self.elements: Tuple[Any, ...] = tuple(elements)
        self.kind = kind

    # -- basic container protocol ------------------------------------------
    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.elements)

    def __getitem__(self, index: int) -> Any:
        return self.elements[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataCollection({self.name!r}, n={len(self.elements)}, kind={self.kind.value})"

    # -- selectors ----------------------------------------------------------
    def _split_of(self, element: Any) -> Split:
        split = getattr(element, "split", Split.ALL)
        return split if isinstance(split, Split) else Split(split)

    def filter(self, predicate: Callable[[Any], bool], name: Optional[str] = None) -> "DataCollection":
        """Return a new collection containing only the elements matching ``predicate``."""
        return DataCollection(
            name or self.name,
            (e for e in self.elements if predicate(e)),
            kind=self.kind,
        )

    def train(self) -> "DataCollection":
        """Elements belonging to the training split (or untagged elements)."""
        return self.filter(
            lambda e: self._split_of(e) in (Split.TRAIN, Split.ALL),
            name=f"{self.name}[train]",
        )

    def test(self) -> "DataCollection":
        """Elements belonging to the test split (or untagged elements)."""
        return self.filter(
            lambda e: self._split_of(e) in (Split.TEST, Split.ALL),
            name=f"{self.name}[test]",
        )

    def map(self, fn: Callable[[Any], Any], name: Optional[str] = None,
            kind: Optional[ElementKind] = None) -> "DataCollection":
        """Apply ``fn`` to every element, returning a new collection."""
        return DataCollection(
            name or self.name,
            (fn(e) for e in self.elements),
            kind=kind or self.kind,
        )

    def flat_map(self, fn: Callable[[Any], Iterable[Any]], name: Optional[str] = None,
                 kind: Optional[ElementKind] = None) -> "DataCollection":
        """Apply ``fn`` producing zero or more elements per input element."""
        def _generate() -> Iterator[Any]:
            for element in self.elements:
                for produced in fn(element):
                    yield produced

        return DataCollection(name or self.name, _generate(), kind=kind or self.kind)

    # -- ML helpers ----------------------------------------------------------
    def feature_index(self) -> Dict[str, int]:
        """Build a deterministic global ``feature name -> column`` index.

        The order of SUs/features in the final assembly is determined globally
        across the dataset (paper, Section 3.2.1); here we sort names so that
        the index is stable across runs and across train/test splits.
        """
        names: set = set()
        for element in self.elements:
            features = getattr(element, "features", None)
            if isinstance(features, FeatureVector):
                names.update(features.names)
            elif isinstance(element, FeatureVector):
                names.update(element.names)
        return {name: position for position, name in enumerate(sorted(names))}

    def to_matrix(
        self, index: Optional[Mapping[str, int]] = None
    ) -> Tuple[np.ndarray, np.ndarray, Dict[str, int]]:
        """Convert a collection of examples to ``(X, y, index)`` dense matrices.

        Examples without labels get ``nan`` in ``y``.
        """
        if index is None:
            index = self.feature_index()
        rows: List[np.ndarray] = []
        labels: List[float] = []
        for element in self.elements:
            if not isinstance(element, Example):
                raise TypeError(
                    f"to_matrix requires Example elements, got {type(element).__name__}"
                )
            rows.append(element.features.to_dense(index))
            labels.append(float("nan") if element.label is None else float(element.label))
        if rows:
            X = np.vstack(rows)
        else:
            X = np.zeros((0, len(index)))
        return X, np.asarray(labels, dtype=float), dict(index)

    def estimated_size_bytes(self) -> int:
        """A cheap size estimate used by the cache/memory tracker.

        The estimate intentionally avoids a full pickle round trip: it counts
        feature entries, record fields and dense array bytes.
        """
        total = 64
        for element in self.elements:
            total += 56
            features = getattr(element, "features", None)
            if isinstance(features, FeatureVector):
                total += 48 * len(features)
            if isinstance(element, FeatureVector):
                total += 48 * len(element)
            if isinstance(element, SemanticUnit) and isinstance(element.output, FeatureVector):
                total += 48 * len(element.output)
            fields = getattr(element, "fields", None)
            if isinstance(fields, Mapping):
                for value in fields.values():
                    if isinstance(value, str):
                        total += 40 + len(value)
                    elif isinstance(value, np.ndarray):
                        total += int(value.nbytes)
                    else:
                        total += 32
            if isinstance(element, np.ndarray):
                total += int(element.nbytes)
        return total
