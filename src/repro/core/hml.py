"""A fluent, HML-flavoured facade over :class:`~repro.core.workflow.Workflow`.

The paper's DSL reads like prose::

    data refers_to FileSource(...)
    data is_read_into rows using CSVScanner(...)
    rows has_extractors (eduExt, ageBucket, target)
    income results_from rows with_labels target
    checked is_output()

This module provides :class:`HML`, whose named handles support the same verbs
as chained method calls, for users who want their Python workflow programs to
mirror the paper's listings closely::

    hml = HML("census")
    hml["data"].refers_to(DataSource(...))
    hml["data"].is_read_into("rows", using=CSVScanner([...]))
    hml["ageExt"].refers_to(FieldExtractor("age"), on="rows")
    hml["rows"].has_extractors("eduExt", "ageExt", "target")
    hml["income"].results_from("rows", with_labels="target")
    hml["incPred"].refers_to(Learner(...), on="income", produces="predictions")
    hml["checked"].results_from_reducer(Reducer(...), on="predictions", uses=["target"])
    hml["checked"].is_output()
    dag = hml.compile()

Everything ultimately delegates to the plain :class:`Workflow` builder, so the
two styles can be mixed freely.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from ..exceptions import WorkflowSpecError
from .operators import (
    DataSource,
    Extractor,
    Learner,
    Operator,
    Reducer,
    Scanner,
    Synthesizer,
)
from .workflow import Workflow

__all__ = ["HML", "HMLName"]


class HMLName:
    """A named handle inside an :class:`HML` program supporting the HML verbs."""

    def __init__(self, program: "HML", name: str):
        self._program = program
        self.name = name

    # ------------------------------------------------------------------ verbs
    def refers_to(
        self,
        operator: Operator,
        on: Union[str, Sequence[str], None] = None,
        produces: Optional[str] = None,
    ) -> "HMLName":
        """``name refers_to <operator>`` — declare what this name stands for.

        ``on`` supplies the upstream name(s) for operators that need inputs
        (extractors, learners, reducers, synthesizers); ``produces`` names the
        output node for learners (defaults to the handle's own name).
        """
        wf = self._program.workflow
        inputs = [on] if isinstance(on, str) else list(on or [])
        if isinstance(operator, DataSource):
            wf.data_source(self.name, operator)
        elif isinstance(operator, Scanner):
            if len(inputs) != 1:
                raise WorkflowSpecError("a Scanner declared via refers_to needs exactly one 'on' input")
            wf.scan(self.name, inputs[0], operator)
        elif isinstance(operator, Extractor):
            if not inputs:
                raise WorkflowSpecError("an Extractor declared via refers_to needs an 'on' input")
            wf.extractor(self.name, inputs if len(inputs) > 1 else inputs[0], operator)
        elif isinstance(operator, Learner):
            if len(inputs) != 1:
                raise WorkflowSpecError("a Learner declared via refers_to needs exactly one 'on' input")
            wf.learner(produces or self.name, inputs[0], operator)
        elif isinstance(operator, Reducer):
            if not inputs:
                raise WorkflowSpecError("a Reducer declared via refers_to needs an 'on' input")
            wf.reducer(produces or self.name, inputs, operator)
        elif isinstance(operator, Synthesizer):
            wf.synthesize(self.name, inputs, operator)
        else:
            wf.node(self.name, operator, parents=inputs)
        return self

    def is_read_into(self, target: str, using: Scanner) -> "HMLName":
        """``source is_read_into target using scanner``."""
        self._program.workflow.scan(target, self.name, using)
        return self._program[target]

    def has_extractors(self, *extractors: str) -> "HMLName":
        """``dc has_extractors (e1, e2, ...)``."""
        self._program.workflow.has_extractors(self.name, list(extractors))
        return self

    def results_from(
        self,
        base: str,
        with_labels: Optional[str] = None,
        extractors: Optional[Sequence[str]] = None,
    ) -> "HMLName":
        """``examples results_from base with_labels target`` — example assembly."""
        self._program.workflow.examples(
            self.name, base, extractors=extractors, label=with_labels
        )
        return self

    def results_from_reducer(
        self, reducer: Reducer, on: Union[str, Sequence[str]], uses: Sequence[str] = ()
    ) -> "HMLName":
        """``scalar results_from reducer on dc`` with optional ``uses`` dependencies."""
        self._program.workflow.reducer(self.name, on, reducer, uses=uses)
        return self

    def uses(self, *dependencies: str) -> "HMLName":
        """``name uses (a, b)`` — declare hidden UDF dependencies."""
        self._program.workflow.uses(self.name, list(dependencies))
        return self

    def is_output(self) -> "HMLName":
        """``name is_output()``."""
        self._program.workflow.output(self.name)
        return self


class HML:
    """An HML-style program: a thin indexing facade over :class:`Workflow`."""

    def __init__(self, name: str = "workflow", workflow: Optional[Workflow] = None):
        self.workflow = workflow if workflow is not None else Workflow(name)
        self._handles: Dict[str, HMLName] = {}

    def __getitem__(self, name: str) -> HMLName:
        handle = self._handles.get(name)
        if handle is None:
            handle = HMLName(self, name)
            self._handles[name] = handle
        return handle

    def __contains__(self, name: str) -> bool:
        return name in self.workflow

    def compile(self):
        """Compile the underlying workflow into a :class:`WorkflowDAG`."""
        return self.workflow.compile()
