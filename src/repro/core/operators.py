"""Operator interfaces for Helix workflows.

Section 3.1 of the paper argues that ML workflow operations decompose into a
small set of basis functions (parsing, join, feature extraction, feature
transformation, feature concatenation, learning, inference, reduce).  Section
3.2.2 exposes these through five operator interfaces which this module
implements:

* :class:`DataSource` — reads/creates raw records (root nodes of the DAG).
* :class:`Scanner` — parsing; a flatMap from records to records/semantic units.
* :class:`Extractor` — feature extraction and (possibly learned) feature
  transformation; operates on semantic units.
* :class:`Synthesizer` — join / example assembly; gathers SU outputs into
  :class:`~repro.core.data.Example` elements with optional labels.
* :class:`Learner` — learning + inference in a single operator.
* :class:`Reducer` — PPR; reduces a DC (and an optional scalar) to a scalar.

Every operator carries a *configuration signature* used for representational
equivalence checking across iterations (Section 4.2): an operator is
considered unchanged if its declaration — class, parameters, and UDF code —
is unchanged.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import json
import uuid
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ExecutionError, OperatorError, WorkflowSpecError
from .data import (
    DataCollection,
    ElementKind,
    Example,
    FeatureVector,
    Record,
    SemanticUnit,
    Split,
)

__all__ = [
    "Component",
    "RunContext",
    "Operator",
    "ensure_process_safe",
    "DataSource",
    "Scanner",
    "CSVScanner",
    "Extractor",
    "FieldExtractor",
    "Bucketizer",
    "InteractionFeature",
    "FunctionExtractor",
    "Synthesizer",
    "ExampleSynthesizer",
    "JoinSynthesizer",
    "Learner",
    "PredictionsResult",
    "Reducer",
]


class Component(str, Enum):
    """Workflow component a node belongs to (used for run-time breakdowns)."""

    DPR = "DPR"
    LI = "L/I"
    PPR = "PPR"


@dataclass
class RunContext:
    """Ambient state passed to every operator invocation.

    Attributes
    ----------
    seed:
        Seed for any randomized operator (learners, samplers).  The execution
        engine derives a per-node seed from this value so results are
        reproducible.
    num_workers:
        Number of (simulated) workers; operators that model parallel work can
        divide their cost by this value.
    extras:
        Free-form bag for application-specific configuration.
    """

    seed: int = 0
    num_workers: int = 1
    extras: Dict[str, Any] = field(default_factory=dict)

    def rng(self, salt: int = 0) -> np.random.Generator:
        """A NumPy random generator derived from the context seed."""
        return np.random.default_rng(self.seed + salt)


def _callable_token(fn: Callable[..., Any]) -> str:
    """A stable token describing a callable for signature purposes.

    The token combines the qualified name, an optional explicit ``_version``
    attribute (which user code can bump to signal a semantic change), and a
    hash of the bytecode when available.  Builtins and C functions fall back
    to their qualified name only.  Callable *instances* (picklable UDF
    objects, the process-executor-friendly alternative to closures) are
    identified by their class path, their ``__call__`` bytecode and
    ``_version``, so editing the method invalidates reuse just like editing
    a plain function; behaviour-defining *state* still needs a ``_version``
    bump.
    """
    if isinstance(fn, functools.partial):
        # A partial's behaviour is its target plus the bound arguments.
        bound = json.dumps(
            [_normalize(list(fn.args)), _normalize(dict(fn.keywords))],
            sort_keys=True,
            default=str,
        )
        return (
            f"partial:{_callable_token(fn.func)}:"
            f"{hashlib.sha256(bound.encode()).hexdigest()[:16]}"
        )
    qualname = getattr(fn, "__qualname__", None)
    code = getattr(fn, "__code__", None)
    state_digest: Optional[str] = None
    if qualname is None:
        call_code = getattr(getattr(type(fn), "__call__", None), "__code__", None)
        if code is None and call_code is None:
            # C-implemented callable instance: no bytecode to fingerprint.
            # Keep the repr fallback (unique per instance) rather than
            # collapsing distinct configurations onto one class path.
            return repr(fn)
        qualname = f"{type(fn).__module__}.{type(fn).__qualname__}"
        if code is None:
            code = call_code
        # Instance state participates so two instances of one class with
        # different constructor arguments never alias.  Attributes that
        # _normalize cannot stabilize (arbitrary objects fall back to repr,
        # which embeds the id) make the token instance-unique — losing reuse
        # but never serving a stale artifact.  Keep UDF state to scalars and
        # collections for reuse to work.
        state = json.dumps(
            _normalize(_instance_state(fn)), sort_keys=True, default=str
        )
        state_digest = hashlib.sha256(state.encode()).hexdigest()[:16]
    parts: List[str] = [qualname]
    if state_digest is not None:
        parts.append(state_digest)
    version = getattr(fn, "_version", None)
    if version is not None:
        parts.append(f"v{version}")
    if code is not None:
        digest = hashlib.sha256(code.co_code).hexdigest()[:16]
        parts.append(digest)
        consts = tuple(c for c in code.co_consts if isinstance(c, (int, float, str, bool)))
        parts.append(hashlib.sha256(repr(consts).encode()).hexdigest()[:8])
    return ":".join(parts)


def _instance_state(obj: Any) -> Dict[str, Any]:
    """Behaviour-defining attributes of an instance: ``__dict__`` plus slots."""
    state: Dict[str, Any] = dict(getattr(obj, "__dict__", None) or {})
    for klass in type(obj).__mro__:
        slots = getattr(klass, "__slots__", ()) or ()
        if isinstance(slots, str):
            slots = (slots,)
        for slot in slots:
            if slot in ("__dict__", "__weakref__") or slot in state:
                continue
            if hasattr(obj, slot):
                state[slot] = getattr(obj, slot)
    return state


def _normalize(value: Any) -> Any:
    """Normalize configuration values so they can be hashed deterministically."""
    if callable(value):
        return _callable_token(value)
    if isinstance(value, Mapping):
        return {str(k): _normalize(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_normalize(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_normalize(v) for v in value)
    if isinstance(value, np.ndarray):
        return hashlib.sha256(value.tobytes()).hexdigest()
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


class Operator(ABC):
    """Base class for all Helix operators.

    Subclasses implement :meth:`run` (the actual computation) and
    :meth:`config` (the declaration parameters that define the operator's
    behaviour for equivalence checking).

    Execution contract
    ------------------
    The executor strategies place two progressively stronger requirements on
    :meth:`run`:

    * **Thread safety** (thread executor): ``run`` may be invoked
      concurrently with *other* operators' ``run`` (each node still runs at
      most once per iteration), so it must not mutate shared global state
      without synchronizing and must not rely on any ordering beyond its
      declared DAG edges.
    * **Process safety** (process executor): ``run`` must additionally be a
      *pure, picklable* function of ``(inputs, context)`` — the operator and
      its inputs are serialized to a worker process and only the returned
      value travels back, so mutations of inputs or of in-process globals are
      silently lost.  UDF-style configuration must be picklable (module-level
      functions or callable instances, not closures/lambdas).
    """

    #: Which workflow component this operator belongs to.
    component: Component = Component.DPR

    #: Whether this operator may run inside a worker *process*.  The process
    #: executor validates picklability with a serialize/deserialize round
    #: trip before dispatching any work (see :func:`ensure_process_safe`);
    #: set this to ``False`` to opt out explicitly — e.g. an operator that
    #: would pickle fine but depends on shared in-process state (open
    #: handles, module-level caches it mutates, monkeypatched hooks).
    supports_processes: bool = True

    #: Deterministic operators compute identical results on identical inputs.
    #: Non-deterministic operators (e.g. a freshly seeded random featurizer)
    #: are never considered equivalent across iterations, so their results
    #: can never be reused — the situation the paper's MNIST workflow
    #: exercises.
    deterministic: bool = True

    @abstractmethod
    def run(self, inputs: Sequence[Any], context: RunContext) -> Any:
        """Execute the operator on already-computed input values."""

    def config(self) -> Dict[str, Any]:
        """Parameters defining the operator's behaviour (default: none)."""
        return {}

    def config_signature(self) -> str:
        """A stable hash of the operator class and configuration.

        Two operators with the same class and configuration are assumed to
        compute identical results on identical inputs (representational
        equivalence, Section 4.2).  Non-deterministic operators mix in a
        per-instance nonce so they are never equivalent to any other operator
        instance, including their past selves.
        """
        payload = {"class": type(self).__name__, "config": _normalize(self.config())}
        if not self.deterministic:
            nonce = getattr(self, "_instance_nonce", None)
            if nonce is None:
                nonce = uuid.uuid4().hex
                setattr(self, "_instance_nonce", nonce)
            payload["nonce"] = nonce
        encoded = json.dumps(payload, sort_keys=True, default=str).encode()
        return hashlib.sha256(encoded).hexdigest()

    def estimated_cost(self, input_sizes: Sequence[int]) -> float:
        """Simulated compute cost (seconds) used by the simulated clock.

        The default is proportional to total input size; operators with
        markedly different cost profiles override this.
        """
        return 1e-6 * (sum(input_sizes) + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.config()})"


def ensure_process_safe(operator: Operator, node_name: Optional[str] = None) -> None:
    """Validate that ``operator`` can run on a process-pool executor.

    Checks the :attr:`Operator.supports_processes` capability flag, then
    performs a full ``serialize``/``deserialize`` round trip of the operator
    (the same codec the engine uses to ship task payloads), raising a clear
    :class:`~repro.exceptions.ExecutionError` that names the node and
    operator class when either check fails.  The process executor calls this
    for every COMPUTE node *before* dispatching any work, so a non-picklable
    workflow fails fast instead of mid-run.
    """
    label = (
        f"node {node_name!r} ({type(operator).__name__})"
        if node_name is not None
        else f"operator {type(operator).__name__}"
    )
    if not getattr(operator, "supports_processes", True):
        raise ExecutionError(
            f"{label} declares supports_processes=False and cannot run on the "
            f"process executor; run this workflow on the inline or thread executor"
        )
    # Imported here: storage.serialization is dependency-free, but importing it
    # at module load would invert the core -> storage layering.
    from ..storage.serialization import deserialize, serialize

    try:
        deserialize(serialize(operator))
    except Exception as exc:
        raise ExecutionError(
            f"{label} is not picklable and cannot run on the process executor: "
            f"{exc}; move UDFs to module level (functions or callable classes) "
            f"or set supports_processes=False to fail fast"
        ) from exc


# ---------------------------------------------------------------------------
# Data sources
# ---------------------------------------------------------------------------
class DataSource(Operator):
    """Root operator producing a collection of raw :class:`Record` elements.

    A data source either reads CSV-style files from disk (``train_path`` /
    ``test_path``) or calls a ``generator`` function (used by the synthetic
    workloads).  Generated/loaded train and test records are concatenated
    into a single DC with per-record split tags, implementing the paper's
    unified train/test handling.
    """

    component = Component.DPR

    def __init__(
        self,
        train_path: Optional[str] = None,
        test_path: Optional[str] = None,
        generator: Optional[Callable[[RunContext], Tuple[List[Mapping[str, Any]], List[Mapping[str, Any]]]]] = None,
        params: Optional[Dict[str, Any]] = None,
        cost: Optional[float] = None,
    ):
        if generator is None and train_path is None:
            raise WorkflowSpecError("DataSource requires either file paths or a generator")
        self.train_path = train_path
        self.test_path = test_path
        self.generator = generator
        self.params = dict(params or {})
        self._cost = cost

    def config(self) -> Dict[str, Any]:
        return {
            "train_path": self.train_path,
            "test_path": self.test_path,
            "generator": self.generator,
            "params": self.params,
        }

    def estimated_cost(self, input_sizes: Sequence[int]) -> float:
        if self._cost is not None:
            return self._cost
        return super().estimated_cost(input_sizes)

    @staticmethod
    def _read_csv(path: str) -> List[Dict[str, Any]]:
        import csv

        with open(path, newline="") as handle:
            return [dict(row) for row in csv.DictReader(handle)]

    def run(self, inputs: Sequence[Any], context: RunContext) -> DataCollection:
        if self.generator is not None:
            train_rows, test_rows = self.generator(context, **self.params)
        else:
            train_rows = self._read_csv(self.train_path) if self.train_path else []
            test_rows = self._read_csv(self.test_path) if self.test_path else []
        records = [Record(fields=row, split=Split.TRAIN) for row in train_rows]
        records += [Record(fields=row, split=Split.TEST) for row in test_rows]
        return DataCollection("source", records, kind=ElementKind.RECORD)


# ---------------------------------------------------------------------------
# Scanners (parsing)
# ---------------------------------------------------------------------------
class Scanner(Operator):
    """Parsing operator: a flatMap from each input element to zero or more.

    ``fn`` receives one element and returns an iterable of output elements
    (records or semantic units).  Because it may return zero elements it also
    doubles as a filter.
    """

    component = Component.DPR

    def __init__(self, fn: Callable[[Any], Iterable[Any]], name: Optional[str] = None,
                 cost_per_element: float = 0.0):
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "scanner")
        self.cost_per_element = cost_per_element

    def config(self) -> Dict[str, Any]:
        return {"fn": self.fn, "name": self.name}

    def run(self, inputs: Sequence[Any], context: RunContext) -> DataCollection:
        (source,) = inputs
        if not isinstance(source, DataCollection):
            raise OperatorError(self.name, "Scanner input must be a DataCollection")
        produced: List[Any] = []
        for element in source:
            for out in self.fn(element):
                produced.append(out)
        kind = ElementKind.RECORD if produced and isinstance(produced[0], Record) else ElementKind.SEMANTIC_UNIT
        return DataCollection(self.name, produced, kind=kind)


class CSVScanner(Scanner):
    """Scanner that parses a delimited text field of each record into named columns.

    Mirrors ``CSVScanner(Array("age", "education", ...))`` from the paper's
    census example: each record is expected to hold a raw ``line`` field which
    is split on ``delimiter`` and mapped onto ``columns``.  Records whose raw
    line already parsed into fields pass through with the column subset.
    """

    def __init__(self, columns: Sequence[str], delimiter: str = ",", line_field: str = "line"):
        self.columns = list(columns)
        self.delimiter = delimiter
        self.line_field = line_field
        super().__init__(self._parse, name="csv_scanner")

    def config(self) -> Dict[str, Any]:
        return {
            "columns": self.columns,
            "delimiter": self.delimiter,
            "line_field": self.line_field,
        }

    def _parse(self, record: Record) -> Iterable[Record]:
        if self.line_field in record:
            values = str(record[self.line_field]).split(self.delimiter)
            fields = dict(zip(self.columns, (v.strip() for v in values)))
        else:
            fields = {c: record.get(c) for c in self.columns if c in record}
        if not fields:
            return []
        return [Record(fields=fields, split=record.split)]


# ---------------------------------------------------------------------------
# Extractors (feature extraction / transformation)
# ---------------------------------------------------------------------------
class Extractor(Operator):
    """Base class for feature extraction and transformation operators.

    Extractors map a DC of records or semantic units to a DC of semantic
    units whose outputs are :class:`FeatureVector` values.  Extractors whose
    function must be *learned* from the data (e.g. discretization boundaries)
    perform that learning inside :meth:`run`, as Helix's Learner/Extractor
    interplay does.
    """

    component = Component.DPR

    #: name used as the SU ``source`` tag; set by subclasses.
    feature_name: str = "feature"

    def _iter_inputs(self, collection: DataCollection) -> Iterable[Tuple[Any, Split, Any]]:
        """Yield ``(raw_value, split, carrier)`` triples from records or SUs."""
        for element in collection:
            if isinstance(element, Record):
                yield element, element.split, element
            elif isinstance(element, SemanticUnit):
                yield element.output, element.split, element
            else:
                yield element, Split.ALL, element


class FieldExtractor(Extractor):
    """Extract a single named field from each record as a feature.

    Numeric-looking values become numeric features; other values become
    one-hot categorical indicator features (the raw key-value representation
    described in Section 3.2.1).
    """

    def __init__(self, field_name: str, as_categorical: Optional[bool] = None):
        self.field_name = field_name
        self.as_categorical = as_categorical
        self.feature_name = field_name

    def config(self) -> Dict[str, Any]:
        return {"field": self.field_name, "as_categorical": self.as_categorical}

    @staticmethod
    def _try_float(value: Any) -> Optional[float]:
        try:
            return float(value)
        except (TypeError, ValueError):
            return None

    def run(self, inputs: Sequence[Any], context: RunContext) -> DataCollection:
        (collection,) = inputs
        units: List[SemanticUnit] = []
        for raw, split, _carrier in self._iter_inputs(collection):
            value = raw.get(self.field_name) if isinstance(raw, Record) else raw
            numeric = self._try_float(value)
            categorical = self.as_categorical if self.as_categorical is not None else numeric is None
            if categorical:
                fv = FeatureVector.one_hot(self.field_name, value)
            else:
                fv = FeatureVector.scalar(self.field_name, 0.0 if numeric is None else numeric)
            units.append(SemanticUnit(input=value, source=self.field_name, output=fv, split=split))
        return DataCollection(self.field_name, units, kind=ElementKind.SEMANTIC_UNIT)


class Bucketizer(Extractor):
    """Discretize a numeric feature into equal-frequency buckets.

    The bucket boundaries are *learned* from the full data distribution
    (requiring a complete pass), which is the paper's canonical example of a
    DPR function that must be fit before it can be applied.
    """

    def __init__(self, source_feature: str, bins: int = 10):
        if bins < 1:
            raise WorkflowSpecError("Bucketizer requires at least one bin")
        self.source_feature = source_feature
        self.bins = bins
        self.feature_name = f"{source_feature}_bucket"

    def config(self) -> Dict[str, Any]:
        return {"source_feature": self.source_feature, "bins": self.bins}

    def run(self, inputs: Sequence[Any], context: RunContext) -> DataCollection:
        (collection,) = inputs
        values: List[float] = []
        carriers: List[Tuple[float, Split]] = []
        for raw, split, _carrier in self._iter_inputs(collection):
            if isinstance(raw, FeatureVector):
                value = raw.get(self.source_feature)
            elif isinstance(raw, Record):
                value = float(raw.get(self.source_feature, 0.0) or 0.0)
            else:
                value = float(raw or 0.0)
            values.append(float(value))
            carriers.append((float(value), split))
        boundaries = self._fit_boundaries(np.asarray(values, dtype=float))
        units = [
            SemanticUnit(
                input=value,
                source=self.feature_name,
                output=FeatureVector.one_hot(self.feature_name, int(np.searchsorted(boundaries, value))),
                split=split,
            )
            for value, split in carriers
        ]
        return DataCollection(self.feature_name, units, kind=ElementKind.SEMANTIC_UNIT)

    def _fit_boundaries(self, values: np.ndarray) -> np.ndarray:
        if values.size == 0:
            return np.zeros(0)
        quantiles = np.linspace(0.0, 1.0, self.bins + 1)[1:-1]
        return np.unique(np.quantile(values, quantiles))

    def estimated_cost(self, input_sizes: Sequence[int]) -> float:
        # Requires a full scan plus a sort for quantiles.
        n = sum(input_sizes) + 1
        return 2e-6 * n


class InteractionFeature(Extractor):
    """Concatenate (cross) two or more extractor outputs into interaction features.

    For categorical features this produces the cartesian indicator
    ``a=x&b=y``; for numeric features it produces products.
    """

    def __init__(self, feature_names: Sequence[str]):
        if len(feature_names) < 2:
            raise WorkflowSpecError("InteractionFeature requires at least two inputs")
        self.feature_names = list(feature_names)
        self.feature_name = "x".join(self.feature_names)

    def config(self) -> Dict[str, Any]:
        return {"feature_names": self.feature_names}

    def run(self, inputs: Sequence[Any], context: RunContext) -> DataCollection:
        collections = [c for c in inputs if isinstance(c, DataCollection)]
        if len(collections) < 2:
            raise OperatorError(self.feature_name, "InteractionFeature needs >= 2 input DCs")
        length = min(len(c) for c in collections)
        units: List[SemanticUnit] = []
        for i in range(length):
            parts: List[str] = []
            product = 1.0
            numeric = True
            split = Split.ALL
            for collection in collections:
                su = collection[i]
                split = su.split
                fv = su.output if isinstance(su, SemanticUnit) else su
                if not isinstance(fv, FeatureVector):
                    continue
                for name, value in sorted(fv.items()):
                    parts.append(f"{name}" if value == 1.0 and "=" in name else f"{name}:{value:g}")
                    product *= value
                    if "=" in name:
                        numeric = False
            if numeric:
                out = FeatureVector.scalar(self.feature_name, product)
            else:
                out = FeatureVector.one_hot(self.feature_name, "&".join(parts))
            units.append(SemanticUnit(input=parts, source=self.feature_name, output=out, split=split))
        return DataCollection(self.feature_name, units, kind=ElementKind.SEMANTIC_UNIT)


class FunctionExtractor(Extractor):
    """Wrap an arbitrary UDF ``element -> FeatureVector`` as an extractor."""

    def __init__(self, name: str, fn: Callable[[Any], FeatureVector], cost_per_element: float = 0.0):
        self.feature_name = name
        self.fn = fn
        self.cost_per_element = cost_per_element

    def config(self) -> Dict[str, Any]:
        return {"name": self.feature_name, "fn": self.fn}

    def estimated_cost(self, input_sizes: Sequence[int]) -> float:
        if self.cost_per_element:
            return self.cost_per_element * (sum(input_sizes) + 1)
        return super().estimated_cost(input_sizes)

    def run(self, inputs: Sequence[Any], context: RunContext) -> DataCollection:
        (collection,) = inputs
        units: List[SemanticUnit] = []
        for raw, split, carrier in self._iter_inputs(collection):
            source_value = carrier if isinstance(carrier, Record) else raw
            fv = self.fn(source_value)
            if not isinstance(fv, FeatureVector):
                fv = FeatureVector.scalar(self.feature_name, float(fv))
            units.append(SemanticUnit(input=source_value, source=self.feature_name, output=fv, split=split))
        return DataCollection(self.feature_name, units, kind=ElementKind.SEMANTIC_UNIT)


# ---------------------------------------------------------------------------
# Synthesizers (join / example assembly)
# ---------------------------------------------------------------------------
class Synthesizer(Operator):
    """Base class for join / example-assembly operators."""

    component = Component.DPR


class ExampleSynthesizer(Synthesizer):
    """Assemble examples from a base DC and the outputs of attached extractors.

    This is the pass-through synthesizer implicitly declared by
    ``income results_from rows with_labels target`` in HML.  The first input
    is the base collection (used for element count and split tags), followed
    by one DC per attached extractor; the extractor named ``label_source``
    provides labels instead of features.  Feature provenance (feature name ->
    extractor) is recorded on every example to support data-driven pruning.
    """

    def __init__(self, label_source: Optional[str] = None, dense: bool = False):
        self.label_source = label_source
        self.dense = dense

    def config(self) -> Dict[str, Any]:
        return {"label_source": self.label_source, "dense": self.dense}

    @staticmethod
    def _label_from(fv: FeatureVector) -> float:
        # A label SU is either a scalar feature or a one-hot indicator; for
        # indicators we map the category deterministically to {0, 1, 2, ...}.
        if len(fv) == 1:
            ((name, value),) = list(fv.items())
            if "=" in name:
                category = name.split("=", 1)[1]
                try:
                    return float(category)
                except ValueError:
                    return float(abs(hash(category)) % 2)
            return float(value)
        return float(fv.norm() > 0)

    def run(self, inputs: Sequence[Any], context: RunContext) -> DataCollection:
        if not inputs:
            raise OperatorError("synthesizer", "ExampleSynthesizer requires at least a base DC")
        base, *feature_collections = inputs
        if not isinstance(base, DataCollection):
            raise OperatorError("synthesizer", "first input must be the base DataCollection")
        examples: List[Example] = []
        n = len(base)
        for i in range(n):
            base_element = base[i]
            split = getattr(base_element, "split", Split.ALL)
            features = FeatureVector()
            provenance: Dict[str, str] = {}
            label: Optional[float] = None
            for collection in feature_collections:
                if not isinstance(collection, DataCollection) or i >= len(collection):
                    continue
                su = collection[i]
                fv = su.output if isinstance(su, SemanticUnit) else su
                source = su.source if isinstance(su, SemanticUnit) else collection.name
                if not isinstance(fv, FeatureVector):
                    continue
                if self.label_source is not None and source == self.label_source:
                    label = self._label_from(fv)
                    continue
                features = features.concat(fv)
                for name in fv.names:
                    provenance[name] = source
            examples.append(
                Example(features=features, label=label, split=split, provenance=provenance)
            )
        return DataCollection("examples", examples, kind=ElementKind.EXAMPLE)


class JoinSynthesizer(Synthesizer):
    """Join elements of two record collections on a key (the paper's join basis fn).

    Produces one output record per matching pair, merging fields; an optional
    ``how='left'`` keeps unmatched left records.  Used by the IE and genomics
    workloads to join articles with knowledge bases.
    """

    def __init__(self, left_key: str, right_key: str, how: str = "inner",
                 emit: Optional[Callable[[Record, Record], Iterable[Record]]] = None):
        if how not in ("inner", "left"):
            raise WorkflowSpecError(f"unsupported join type: {how}")
        self.left_key = left_key
        self.right_key = right_key
        self.how = how
        self.emit = emit

    def config(self) -> Dict[str, Any]:
        return {"left_key": self.left_key, "right_key": self.right_key,
                "how": self.how, "emit": self.emit}

    def run(self, inputs: Sequence[Any], context: RunContext) -> DataCollection:
        left, right = inputs
        index: Dict[Any, List[Record]] = {}
        for record in right:
            index.setdefault(record.get(self.right_key), []).append(record)
        joined: List[Record] = []
        for record in left:
            matches = index.get(record.get(self.left_key), [])
            if not matches and self.how == "left":
                joined.append(record)
                continue
            for match in matches:
                if self.emit is not None:
                    joined.extend(self.emit(record, match))
                else:
                    merged = dict(match.fields)
                    merged.update(record.fields)
                    joined.append(Record(fields=merged, split=record.split))
        return DataCollection("joined", joined, kind=ElementKind.RECORD)


# ---------------------------------------------------------------------------
# Learners (learning + inference)
# ---------------------------------------------------------------------------
@dataclass
class PredictionsResult:
    """Output of a :class:`Learner`: predictions plus the fitted model.

    ``predictions`` is a DC of examples annotated with ``prediction`` (and
    ``score`` where meaningful); ``model`` is the fitted estimator exposing at
    least ``predict`` and, for linear models, ``feature_weights()`` used by
    data-driven pruning.
    """

    predictions: DataCollection
    model: Any
    feature_index: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.predictions)

    def __iter__(self):
        return iter(self.predictions)

    def estimated_size_bytes(self) -> int:
        size = self.predictions.estimated_size_bytes()
        weights = getattr(self.model, "weights_", None)
        if isinstance(weights, np.ndarray):
            size += int(weights.nbytes)
        return size


class Learner(Operator):
    """Learning + inference in a single operator (Section 3.2.2).

    ``model_factory`` builds a fresh estimator (any object implementing
    ``fit(X, y)`` and ``predict(X)``); the learner fits it on the training
    split of the input example DC and runs inference on all examples,
    producing a :class:`PredictionsResult`.  For unsupervised estimators the
    full collection is used for fitting.
    """

    component = Component.LI

    def __init__(self, model_factory: Callable[..., Any], params: Optional[Dict[str, Any]] = None,
                 supervised: bool = True, name: str = "learner"):
        self.model_factory = model_factory
        self.params = dict(params or {})
        self.supervised = supervised
        self.name = name

    def config(self) -> Dict[str, Any]:
        return {"model_factory": self.model_factory, "params": self.params,
                "supervised": self.supervised, "name": self.name}

    def estimated_cost(self, input_sizes: Sequence[int]) -> float:
        # Iterative training is markedly more expensive per element than DPR.
        return 1e-5 * (sum(input_sizes) + 1)

    def run(self, inputs: Sequence[Any], context: RunContext) -> PredictionsResult:
        (examples,) = inputs
        if not isinstance(examples, DataCollection):
            raise OperatorError(self.name, "Learner input must be a DataCollection of examples")
        index = examples.feature_index()
        X_all, y_all, index = examples.to_matrix(index)
        model = self.model_factory(**self.params)
        if hasattr(model, "set_seed"):
            model.set_seed(context.seed)
        if self.supervised:
            train_mask = np.array(
                [getattr(e, "split", Split.ALL) in (Split.TRAIN, Split.ALL) for e in examples],
                dtype=bool,
            )
            labelled = train_mask & ~np.isnan(y_all)
            model.fit(X_all[labelled], y_all[labelled])
        else:
            model.fit(X_all, None)
        predictions = model.predict(X_all)
        scores = None
        if hasattr(model, "predict_proba"):
            proba = model.predict_proba(X_all)
            scores = proba[:, -1] if proba.ndim == 2 else proba
        annotated = [
            example.with_prediction(
                float(predictions[i]),
                None if scores is None else float(scores[i]),
            )
            for i, example in enumerate(examples)
        ]
        return PredictionsResult(
            predictions=DataCollection("predictions", annotated, kind=ElementKind.EXAMPLE),
            model=model,
            feature_index=index,
        )


# ---------------------------------------------------------------------------
# Reducers (postprocessing)
# ---------------------------------------------------------------------------
class Reducer(Operator):
    """PPR operator: reduce a DC (and optional scalar) to a scalar result.

    ``fn`` receives the input DC (by default restricted to the test split, as
    in ``checked results_from checkResults on testData(predictions)``) and an
    optional scalar from a second input, returning any non-dataset object.
    """

    component = Component.PPR

    def __init__(self, fn: Callable[..., Any], on_test_only: bool = True, name: str = "reducer",
                 params: Optional[Dict[str, Any]] = None):
        self.fn = fn
        self.on_test_only = on_test_only
        self.name = name
        self.params = dict(params or {})

    def config(self) -> Dict[str, Any]:
        return {"fn": self.fn, "on_test_only": self.on_test_only,
                "name": self.name, "params": self.params}

    def estimated_cost(self, input_sizes: Sequence[int]) -> float:
        return 5e-7 * (sum(input_sizes) + 1)

    def run(self, inputs: Sequence[Any], context: RunContext) -> Any:
        if not inputs:
            raise OperatorError(self.name, "Reducer requires at least one input")
        primary, *rest = inputs
        if isinstance(primary, PredictionsResult):
            collection = primary.predictions
        elif isinstance(primary, DataCollection):
            collection = primary
        else:
            collection = DataCollection("scalar_input", [primary])
        if self.on_test_only:
            collection = collection.test()
        scalar = rest[0] if rest else None
        kwargs = dict(self.params)
        signature = inspect.signature(self.fn)
        if "scalar" in signature.parameters:
            kwargs["scalar"] = scalar
        return self.fn(collection, **kwargs)
