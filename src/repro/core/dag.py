"""The Workflow DAG: Helix's intermediate representation.

Definition 1 of the paper: for a Workflow containing operators ``F = {f_i}``
the Workflow DAG is a directed acyclic graph ``G_W = (N, E)`` where node
``n_i`` represents the output of ``f_i`` and ``(n_i, n_j) in E`` if the output
of ``f_i`` is an input to ``f_j``.

This module provides :class:`Node` and :class:`WorkflowDAG` with the graph
queries the compiler and optimizers need: topological ordering, ancestor /
descendant closure, output-driven slicing (program slicing, Section 5.4) and
structural validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..exceptions import CycleError, DAGError
from .operators import Component, Operator

__all__ = ["Node", "WorkflowDAG"]


@dataclass(frozen=True)
class Node:
    """A node in the Workflow DAG: the output of one operator.

    Attributes
    ----------
    name:
        Unique node name (the declared variable name in the DSL).
    operator:
        The operator whose output this node represents.
    parents:
        Names of the nodes whose outputs are inputs to the operator, in
        declaration order (the order in which values are passed to
        ``operator.run``).
    is_output:
        Whether the node was declared with ``is_output()`` and must be
        produced (and materialized) every iteration.
    component:
        Workflow component for run-time breakdowns; defaults to the
        operator's own component.
    """

    name: str
    operator: Operator
    parents: Tuple[str, ...] = ()
    is_output: bool = False
    component: Component = Component.DPR

    @staticmethod
    def create(
        name: str,
        operator: Operator,
        parents: Sequence[str] = (),
        is_output: bool = False,
        component: Optional[Component] = None,
    ) -> "Node":
        return Node(
            name=name,
            operator=operator,
            parents=tuple(parents),
            is_output=is_output,
            component=component or operator.component,
        )


class WorkflowDAG:
    """A directed acyclic graph of operator outputs.

    The DAG is immutable once constructed; derived DAGs (e.g. sliced to the
    output cone) are new objects sharing node instances.
    """

    def __init__(self, nodes: Iterable[Node], name: str = "workflow"):
        self.name = name
        self._nodes: Dict[str, Node] = {}
        for node in nodes:
            if node.name in self._nodes:
                raise DAGError(f"duplicate node name: {node.name!r}")
            self._nodes[node.name] = node
        self._children: Dict[str, List[str]] = {name: [] for name in self._nodes}
        for node in self._nodes.values():
            for parent in node.parents:
                if parent not in self._nodes:
                    raise DAGError(
                        f"node {node.name!r} references undeclared parent {parent!r}"
                    )
                self._children[parent].append(node.name)
        self._order = self._topological_sort()

    # -- container protocol --------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return (self._nodes[name] for name in self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise DAGError(f"unknown node: {name!r}") from None

    @property
    def node_names(self) -> Tuple[str, ...]:
        return tuple(self._order)

    @property
    def nodes(self) -> Mapping[str, Node]:
        return dict(self._nodes)

    @property
    def outputs(self) -> Tuple[str, ...]:
        return tuple(n for n in self._order if self._nodes[n].is_output)

    @property
    def edges(self) -> Tuple[Tuple[str, str], ...]:
        """All ``(parent, child)`` edges."""
        result: List[Tuple[str, str]] = []
        for node in self._nodes.values():
            for parent in node.parents:
                result.append((parent, node.name))
        return tuple(sorted(result))

    # -- graph queries ---------------------------------------------------------
    def parents(self, name: str) -> Tuple[str, ...]:
        return self.node(name).parents

    def children(self, name: str) -> Tuple[str, ...]:
        self.node(name)
        return tuple(self._children[name])

    def roots(self) -> Tuple[str, ...]:
        return tuple(n for n in self._order if not self._nodes[n].parents)

    def sinks(self) -> Tuple[str, ...]:
        return tuple(n for n in self._order if not self._children[n])

    def ancestors(self, name: str) -> FrozenSet[str]:
        """All transitive ancestors of ``name`` (excluding ``name`` itself)."""
        seen: Set[str] = set()
        stack = list(self.node(name).parents)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._nodes[current].parents)
        return frozenset(seen)

    def descendants(self, name: str) -> FrozenSet[str]:
        """All transitive descendants of ``name`` (excluding ``name`` itself)."""
        seen: Set[str] = set()
        stack = list(self._children[name]) if name in self._children else []
        self.node(name)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._children[current])
        return frozenset(seen)

    def topological_order(self) -> Tuple[str, ...]:
        """Node names in a deterministic topological order."""
        return tuple(self._order)

    def _topological_sort(self) -> List[str]:
        in_degree = {name: len(node.parents) for name, node in self._nodes.items()}
        ready = sorted(name for name, degree in in_degree.items() if degree == 0)
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            newly_ready = []
            for child in self._children[current]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    newly_ready.append(child)
            if newly_ready:
                ready = sorted(ready + newly_ready)
        if len(order) != len(self._nodes):
            remaining = sorted(set(self._nodes) - set(order))
            raise CycleError(f"workflow DAG contains a cycle involving {remaining}")
        return order

    # -- transformations -------------------------------------------------------
    def sliced_to_outputs(self, outputs: Optional[Sequence[str]] = None) -> "WorkflowDAG":
        """Program slicing: keep only nodes that contribute to the outputs.

        Helix traverses the DAG backwards from the output nodes and prunes
        away any node not visited (Section 5.4).  If no outputs are declared
        the DAG is returned unchanged (nothing can be pruned safely).
        """
        targets = tuple(outputs) if outputs is not None else self.outputs
        if not targets:
            return self
        keep: Set[str] = set()
        for target in targets:
            keep.add(target)
            keep.update(self.ancestors(target))
        return WorkflowDAG(
            (self._nodes[name] for name in self._order if name in keep),
            name=self.name,
        )

    def without_nodes(self, names: Iterable[str]) -> "WorkflowDAG":
        """Return a DAG with the given nodes (and dangling edges) removed.

        Children of removed nodes keep their remaining parents; this is used
        by data-driven pruning where a feature extractor with zero model
        weight is dropped.
        """
        drop = set(names)
        new_nodes = []
        for name in self._order:
            if name in drop:
                continue
            node = self._nodes[name]
            kept_parents = tuple(p for p in node.parents if p not in drop)
            new_nodes.append(replace(node, parents=kept_parents))
        return WorkflowDAG(new_nodes, name=self.name)

    def relabel_outputs(self, outputs: Iterable[str]) -> "WorkflowDAG":
        """Return a DAG with ``is_output`` set exactly on ``outputs``."""
        wanted = set(outputs)
        missing = wanted - set(self._nodes)
        if missing:
            raise DAGError(f"cannot mark unknown nodes as outputs: {sorted(missing)}")
        return WorkflowDAG(
            (replace(node, is_output=node.name in wanted) for node in self),
            name=self.name,
        )

    # -- diagnostics -----------------------------------------------------------
    def component_of(self, name: str) -> Component:
        return self.node(name).component

    def summary(self) -> Dict[str, int]:
        """Node counts by component, plus edge count (used in reports/tests)."""
        counts = {component.value: 0 for component in Component}
        for node in self._nodes.values():
            counts[node.component.value] += 1
        counts["nodes"] = len(self._nodes)
        counts["edges"] = len(self.edges)
        counts["outputs"] = len(self.outputs)
        return counts

    def to_dot(self) -> str:
        """Render the DAG in Graphviz dot format (for documentation/debugging)."""
        lines = [f'digraph "{self.name}" {{']
        palette = {Component.DPR: "#b39ddb", Component.LI: "#ffcc80", Component.PPR: "#a5d6a7"}
        for name in self._order:
            node = self._nodes[name]
            shape = "doubleoctagon" if node.is_output else "box"
            lines.append(
                f'  "{name}" [shape={shape}, style=filled, fillcolor="{palette[node.component]}"];'
            )
        for parent, child in self.edges:
            lines.append(f'  "{parent}" -> "{child}";')
        lines.append("}")
        return "\n".join(lines)
