"""Change tracking across workflow iterations (Section 4.2 of the paper).

Helix decides which intermediate results can be safely reused by determining
*equivalence* between nodes of the DAG at iteration ``t`` and ``t+1``
(Definition 2): a node is equivalent to a previous node if its operator
computes identical results on the same inputs and all of its parents are
equivalent.  Because verifying semantic equivalence of arbitrary programs is
undecidable (Rice's theorem), Helix uses *representational* equivalence: an
operator is unchanged if its declaration is unchanged and all ancestors are
unchanged.

This module computes a recursive **node signature** for every node:

    signature(n) = H(operator configuration signature, signatures of parents)

Two nodes with equal signatures are equivalent under representational
equivalence, regardless of their names, which also handles node renames and
workflow restructurings.  :class:`ChangeTracker` keeps the signatures seen in
previous iterations and classifies nodes of the next iteration as *original*
(must be recomputed, Constraint 1) or reusable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from .dag import WorkflowDAG

__all__ = ["compute_node_signatures", "diff_signatures", "SignatureDiff", "ChangeTracker"]


def compute_node_signatures(dag: WorkflowDAG) -> Dict[str, str]:
    """Compute the recursive signature of every node in topological order.

    The signature of a node depends on its operator configuration and the
    signatures of its parents (order-insensitive: parents are sorted so that
    declaring the same dependencies in a different order does not spuriously
    deprecate results).
    """
    signatures: Dict[str, str] = {}
    for name in dag.topological_order():
        node = dag.node(name)
        parent_signatures = sorted(signatures[parent] for parent in node.parents)
        payload = "|".join([node.operator.config_signature(), *parent_signatures])
        signatures[name] = hashlib.sha256(payload.encode()).hexdigest()
    return signatures


@dataclass(frozen=True)
class SignatureDiff:
    """The result of comparing one iteration's signatures against history.

    Attributes
    ----------
    original:
        Nodes whose signature has never been seen before; by Constraint 1
        they must be recomputed.
    reusable:
        Nodes whose signature matches a previously seen signature; their
        results *may* be reused if a materialization exists.
    added / removed:
        Node names present only in the new / only in the previous iteration
        (useful for reporting; removed nodes have no effect on execution).
    """

    original: FrozenSet[str]
    reusable: FrozenSet[str]
    added: FrozenSet[str]
    removed: FrozenSet[str]

    @property
    def num_changed(self) -> int:
        return len(self.original)


def diff_signatures(
    current: Mapping[str, str],
    previous: Mapping[str, str],
    known_signatures: Optional[Iterable[str]] = None,
) -> SignatureDiff:
    """Classify nodes of the current iteration against previous signatures.

    ``known_signatures`` may extend the set of signatures considered "seen"
    beyond the immediately preceding iteration (e.g. everything ever
    materialized), mirroring Definition 3 where a materialization from any
    ``t' <= t`` can be equivalent.
    """
    seen: Set[str] = set(previous.values())
    if known_signatures is not None:
        seen.update(known_signatures)
    original = frozenset(name for name, sig in current.items() if sig not in seen)
    reusable = frozenset(current) - original
    added = frozenset(current) - frozenset(previous)
    removed = frozenset(previous) - frozenset(current)
    return SignatureDiff(original=original, reusable=reusable, added=added, removed=removed)


class ChangeTracker:
    """Tracks node signatures across iterations for one workflow lifecycle.

    Usage::

        tracker = ChangeTracker()
        signatures = tracker.signatures_for(dag)
        diff = tracker.classify(dag)        # original vs reusable nodes
        ...execute...
        tracker.commit(dag)                 # record this iteration's signatures

    The tracker deliberately keeps *all* signatures ever committed (not just
    the previous iteration's) because a materialization produced at any past
    iteration remains valid as long as the node signature still matches.
    """

    def __init__(self) -> None:
        self._previous: Dict[str, str] = {}
        self._all_signatures: Set[str] = set()
        self._iteration = 0

    @property
    def iteration(self) -> int:
        """Number of committed iterations so far."""
        return self._iteration

    @property
    def previous_signatures(self) -> Dict[str, str]:
        return dict(self._previous)

    def signatures_for(self, dag: WorkflowDAG) -> Dict[str, str]:
        return compute_node_signatures(dag)

    def classify(self, dag: WorkflowDAG) -> SignatureDiff:
        """Classify the nodes of ``dag`` as original or reusable."""
        current = compute_node_signatures(dag)
        return diff_signatures(current, self._previous, self._all_signatures)

    def commit(self, dag: WorkflowDAG, signatures: Optional[Mapping[str, str]] = None) -> Dict[str, str]:
        """Record the signatures of an executed iteration and return them."""
        resolved = dict(signatures) if signatures is not None else compute_node_signatures(dag)
        self._previous = dict(resolved)
        self._all_signatures.update(resolved.values())
        self._iteration += 1
        return resolved

    def has_seen(self, signature: str) -> bool:
        return signature in self._all_signatures

    def reset(self) -> None:
        self._previous.clear()
        self._all_signatures.clear()
        self._iteration = 0
