"""The Workflow builder: a Python rendering of the paper's HML DSL.

HML is an embedded DSL in Scala; here the same declarations are expressed
through a builder object.  Each HML statement maps onto a builder method:

===============================================  =====================================
HML statement                                     Builder call
===============================================  =====================================
``data refers_to FileSource(...)``                ``wf.data_source("data", source)``
``data is_read_into rows using CSVScanner(...)``  ``wf.scan("rows", "data", scanner)``
``ageExt refers_to FieldExtractor("age")``        ``wf.extractor("ageExt", "rows", op)``
``rows has_extractors(eduExt, ...)``              ``wf.has_extractors("rows", [...])``
``income results_from rows with_labels target``   ``wf.examples("income", "rows", label="target")``
``predictions results_from incPred on income``    ``wf.learner("predictions", "income", op)``
``checked results_from checkResults on ...``      ``wf.reducer("checked", "predictions", op)``
``checkResults uses extractorName(rows, target)``  ``uses=["target"]`` argument
``checked is_output()``                           ``wf.output("checked")``
===============================================  =====================================

Arbitrary operators can be declared with :meth:`Workflow.node`, which is what
the higher-level helpers use internally.  :meth:`Workflow.compile` produces
the :class:`~repro.core.dag.WorkflowDAG` used by the optimizer and execution
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..exceptions import WorkflowSpecError
from .dag import Node, WorkflowDAG
from .operators import (
    Component,
    DataSource,
    ExampleSynthesizer,
    Extractor,
    Learner,
    Operator,
    Reducer,
    Scanner,
    Synthesizer,
)

__all__ = ["Workflow"]


@dataclass
class _Declaration:
    """One declared node: operator, parents, output flag, component override."""

    name: str
    operator: Operator
    parents: List[str] = field(default_factory=list)
    is_output: bool = False
    component: Optional[Component] = None


class Workflow:
    """Declarative builder for a Helix workflow.

    A workflow is a set of named declarations plus linking statements; it is
    compiled into a :class:`WorkflowDAG` with :meth:`compile`.  Builders are
    mutable and cheap — the iteration simulators construct a fresh workflow
    object per iteration from a configuration object.
    """

    def __init__(self, name: str = "workflow"):
        self.name = name
        self._declarations: Dict[str, _Declaration] = {}
        self._order: List[str] = []
        self._attached_extractors: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------ basics
    def __contains__(self, name: str) -> bool:
        return name in self._declarations

    @property
    def declared_names(self) -> List[str]:
        return list(self._order)

    def _declare(
        self,
        name: str,
        operator: Operator,
        parents: Sequence[str],
        is_output: bool = False,
        component: Optional[Component] = None,
    ) -> str:
        if not name or not isinstance(name, str):
            raise WorkflowSpecError("node names must be non-empty strings")
        if name in self._declarations:
            raise WorkflowSpecError(f"name {name!r} is already declared")
        for parent in parents:
            if parent not in self._declarations:
                raise WorkflowSpecError(
                    f"declaration of {name!r} references undeclared name {parent!r}"
                )
        self._declarations[name] = _Declaration(
            name=name,
            operator=operator,
            parents=list(parents),
            is_output=is_output,
            component=component,
        )
        self._order.append(name)
        return name

    # ------------------------------------------------------------------ generic
    def node(
        self,
        name: str,
        operator: Operator,
        parents: Sequence[str] = (),
        component: Optional[Component] = None,
        is_output: bool = False,
    ) -> str:
        """Declare an arbitrary operator node (escape hatch for custom operators)."""
        return self._declare(name, operator, parents, is_output=is_output, component=component)

    # ------------------------------------------------------------------ DPR
    def data_source(self, name: str, source: DataSource) -> str:
        """``name refers_to FileSource(...)`` — declare a root data source."""
        if not isinstance(source, DataSource):
            raise WorkflowSpecError("data_source requires a DataSource operator")
        return self._declare(name, source, parents=())

    def scan(self, name: str, source: str, scanner: Scanner) -> str:
        """``source is_read_into name using scanner`` — parse raw records."""
        if not isinstance(scanner, Scanner):
            raise WorkflowSpecError("scan requires a Scanner operator")
        return self._declare(name, scanner, parents=[source])

    def extractor(
        self,
        name: str,
        inputs: Union[str, Sequence[str]],
        operator: Extractor,
        attach_to: Optional[str] = None,
    ) -> str:
        """Declare a feature extractor over one or more upstream collections.

        ``attach_to`` (defaulting to the first input when it is a scanned
        record collection) registers the extractor for automatic inclusion in
        example assembly — the paper's ``has_extractors`` bookkeeping.
        """
        parent_list = [inputs] if isinstance(inputs, str) else list(inputs)
        if not parent_list:
            raise WorkflowSpecError("extractor requires at least one input")
        declared = self._declare(name, operator, parents=parent_list)
        target = attach_to or parent_list[0]
        if target in self._declarations:
            self._attached_extractors.setdefault(target, []).append(name)
        return declared

    def has_extractors(self, dc_name: str, extractor_names: Sequence[str]) -> None:
        """``dc has_extractors(e1, e2, ...)`` — explicitly set the attached extractors.

        Overrides any previous attachment for ``dc_name``: extractors omitted
        here are *not* included in example assembly and become candidates for
        output-driven pruning, which is how users perform manual feature
        selection in the paper's census example.
        """
        if dc_name not in self._declarations:
            raise WorkflowSpecError(f"unknown data collection {dc_name!r}")
        for extractor_name in extractor_names:
            if extractor_name not in self._declarations:
                raise WorkflowSpecError(f"unknown extractor {extractor_name!r}")
        self._attached_extractors[dc_name] = list(extractor_names)

    def attached_extractors(self, dc_name: str) -> List[str]:
        """The extractors currently attached to a data collection."""
        return list(self._attached_extractors.get(dc_name, []))

    def examples(
        self,
        name: str,
        base: str,
        extractors: Optional[Sequence[str]] = None,
        label: Optional[str] = None,
        synthesizer: Optional[Synthesizer] = None,
    ) -> str:
        """``name results_from base with_labels label`` — assemble examples.

        The example node's parents are the base collection plus all attached
        (or explicitly listed) extractors; these are the "dotted" edges the
        intermediate code generator adds in Figure 3b of the paper.
        """
        extractor_list = list(extractors) if extractors is not None else self.attached_extractors(base)
        label_source = None
        if label is not None:
            if label not in self._declarations:
                raise WorkflowSpecError(f"unknown label extractor {label!r}")
            declaration = self._declarations[label]
            label_source = getattr(declaration.operator, "feature_name", label)
            if label not in extractor_list:
                extractor_list = extractor_list + [label]
        operator = synthesizer or ExampleSynthesizer(label_source=label_source)
        return self._declare(name, operator, parents=[base, *extractor_list])

    def synthesize(self, name: str, inputs: Sequence[str], synthesizer: Synthesizer) -> str:
        """``name results_from synthesizer on (a, b, ...)`` — generic join/assembly."""
        if not isinstance(synthesizer, Synthesizer):
            raise WorkflowSpecError("synthesize requires a Synthesizer operator")
        return self._declare(name, synthesizer, parents=list(inputs))

    # ------------------------------------------------------------------ L/I & PPR
    def learner(self, name: str, examples: str, operator: Learner) -> str:
        """``name results_from learner on examples`` — train and infer."""
        if not isinstance(operator, Learner):
            raise WorkflowSpecError("learner requires a Learner operator")
        return self._declare(name, operator, parents=[examples], component=Component.LI)

    def reducer(
        self,
        name: str,
        inputs: Union[str, Sequence[str]],
        operator: Reducer,
        uses: Sequence[str] = (),
    ) -> str:
        """``name results_from reducer on inputs`` with explicit UDF dependencies.

        ``uses`` adds extra parent edges for dependencies that are opaque to
        the optimizer because they only appear inside the reducer's UDF
        (the ``uses`` keyword in HML) — they prevent both pruning and
        premature cache eviction of those nodes.
        """
        parent_list = [inputs] if isinstance(inputs, str) else list(inputs)
        extra = [u for u in uses if u not in parent_list]
        for dependency in extra:
            if dependency not in self._declarations:
                raise WorkflowSpecError(f"'uses' references undeclared name {dependency!r}")
        return self._declare(
            name, operator, parents=parent_list + extra, component=Component.PPR
        )

    def uses(self, name: str, dependencies: Sequence[str]) -> None:
        """``name uses (a, b)`` — add explicit dependencies to an existing node."""
        if name not in self._declarations:
            raise WorkflowSpecError(f"unknown name {name!r}")
        declaration = self._declarations[name]
        for dependency in dependencies:
            if dependency not in self._declarations:
                raise WorkflowSpecError(f"'uses' references undeclared name {dependency!r}")
            if dependency not in declaration.parents:
                declaration.parents.append(dependency)

    def output(self, *names: str) -> None:
        """``name is_output()`` — mark one or more nodes as mandatory outputs."""
        for name in names:
            if name not in self._declarations:
                raise WorkflowSpecError(f"cannot mark unknown name {name!r} as output")
            self._declarations[name].is_output = True

    # ------------------------------------------------------------------ compile
    def compile(self) -> WorkflowDAG:
        """Compile the declarations into a Workflow DAG.

        The DAG contains *all* declared nodes, including ones that do not
        contribute to any output; pruning those is the optimizer's job
        (mirroring the compiler/optimizer split in the paper, Figure 3b).
        """
        if not self._declarations:
            raise WorkflowSpecError("cannot compile an empty workflow")
        nodes = [
            Node.create(
                name=decl.name,
                operator=decl.operator,
                parents=decl.parents,
                is_output=decl.is_output,
                component=decl.component,
            )
            for decl in (self._declarations[name] for name in self._order)
        ]
        return WorkflowDAG(nodes, name=self.name)
