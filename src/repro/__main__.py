"""``python -m repro``: the Helix reproduction command line.

Dispatches to the service entry points (``serve`` / ``submit``); see
:mod:`repro.service.cli`.
"""

from .service.cli import main

if __name__ == "__main__":
    import sys

    sys.exit(main())
