"""Executor strategies: *where* individual node tasks run.

The execution layer separates two concerns that PR 2 entangled in a pair of
near-duplicate engines:

* **Lifecycle orchestration** — scheduling ready nodes, cache/scope reference
  counting, deterministic retirement commits (streaming materialization
  decisions + eviction), stats recording.  This lives in one place:
  :class:`~repro.execution.engine.ExecutionEngine`.
* **Task dispatch** — actually running one node's load/compute somewhere.
  That is this module's :class:`Executor` strategy, with four built-ins:

  - :class:`InlineExecutor` (``"inline"``) — tasks run synchronously on the
    scheduler thread.  The reference strategy; replaces the old serial
    engine.
  - :class:`ThreadExecutor` (``"thread"``) — tasks run on a
    ``ThreadPoolExecutor``.  Best for latency-bound operators (store I/O,
    external services) which overlap even on a single core; CPU-bound pure
    Python is GIL-limited.  Replaces ``ParallelExecutionEngine``.
  - :class:`ProcessExecutor` (``"process"``) — COMPUTE tasks are serialized
    with :mod:`repro.storage.serialization` and run on a
    ``ProcessPoolExecutor``; the worker returns the computed value plus its
    measured compute time, and the engine applies the cost model on receipt.
    LOAD tasks (store reads) and all bookkeeping stay in the coordinating
    process.  Best for CPU-bound pure-Python operators, which scale with
    cores instead of fighting over the GIL.
  - :class:`DistributedExecutor` (``"distributed"``) — COMPUTE payloads are
    dispatched over TCP (length-prefixed frames, see the wire format in
    :mod:`repro.storage.serialization`) to long-lived
    :class:`WorkerServer` processes that register with the coordinator,
    heartbeat, and ack each task.  Workers are either spawned locally
    (``max_workers``) or pre-started elsewhere and addressed explicitly
    (``workers=["host:port", ...]``; see ``python -m
    repro.execution.worker``).  Each worker connection carries a small
    pipelined dispatch window (``pipeline_depth``, default 2) so the
    coordinator overlaps framing/serialization of the next task with the
    execution of the current one.  Tasks assigned to a worker that dies —
    acked-but-unfinished and queued-unacked alike — are requeued to a
    surviving worker (bounded attempts).  Same process-safety contract as
    ``"process"``; workers without access to the coordinator's filesystem
    resolve store-resident inputs through the FETCH/ARTIFACT lane
    (:class:`~repro.storage.serialization.ArtifactRef`).

One distributed fleet can serve **several runs at once**: every
task/result/error/fetch frame is tagged with a *session id* (protocol
version 3), and :meth:`DistributedExecutor.session` opens a
:class:`DistributedSession` — a full :class:`Executor` with its own
completion queue and bound store, multiplexed onto the shared worker pool.
Sessions dispatch round-robin (per-session FIFO order, fair interleaving
across sessions) and workers keep per-session fetch lanes and value
caches, which is what the ``repro serve`` daemon
(:mod:`repro.service`) builds its concurrent-run scheduler on.

The engine drives an executor through one run as
``start -> submit*/submit_payload* -> next_completion* -> shutdown``; when
configured by name it builds a fresh instance per ``execute`` call
(:func:`create_executor`), and a user-supplied instance is reset for reuse
by ``start``.  Completions are delivered through an internal queue as
``(key, outcome, error)`` triples, so the engine's scheduling loop is
identical across strategies.  The full contract — required methods,
generation-stamped completion queues, process-safety rules, how to plug in
a custom strategy — is documented in ``docs/executors.md``.

The legacy engine names ``"serial"`` and ``"parallel"`` remain accepted
everywhere an executor name is (:data:`LEGACY_ENGINE_ALIASES`); they are
deprecated spellings of ``"inline"`` and ``"thread"``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import socket
import threading
import time
import warnings
from abc import ABC, abstractmethod
from collections import OrderedDict, deque
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import wait as wait_futures
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple, Type, Union

from ..exceptions import ExecutionError, OperatorError, ProtocolError
from ..storage.canonical import content_digest
from ..storage.serialization import (
    PROTOCOL_VERSION,
    ArtifactRef,
    deserialize,
    recv_message,
    send_message,
    serialize,
)

__all__ = [
    "Executor",
    "InlineExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "DistributedExecutor",
    "DistributedSession",
    "WorkerServer",
    "EXECUTOR_NAMES",
    "LEGACY_ENGINE_ALIASES",
    "resolve_executor_name",
    "parse_worker_address",
    "create_executor",
    "default_max_workers",
    "default_process_workers",
    "run_serialized_task",
]

#: Canonical executor strategy names.
EXECUTOR_NAMES = ("inline", "thread", "process", "distributed")

#: Deprecated engine names from the PR 2 serial/parallel split, still accepted
#: by every name-taking entry point (``create_engine``, ``configure_engine``,
#: ``run_lifecycle(engine=...)``).
LEGACY_ENGINE_ALIASES = {"serial": "inline", "parallel": "thread"}

#: Inverse of :data:`LEGACY_ENGINE_ALIASES`, for reporting a configured
#: executor under its legacy name (``System.engine``).
LEGACY_NAME_BY_EXECUTOR = {new: old for old, new in LEGACY_ENGINE_ALIASES.items()}

#: A completed task: (task key, outcome or None, error or None).
Completion = Tuple[str, Any, Optional[BaseException]]


def default_max_workers() -> int:
    """Default thread count: enough to overlap latency on small machines."""
    return min(32, (os.cpu_count() or 1) + 4)


def default_process_workers() -> int:
    """Default process count: one worker per core (CPU-bound work)."""
    return os.cpu_count() or 1


def resolve_executor_name(name: str) -> str:
    """Canonicalize an executor name, accepting the legacy engine aliases."""
    if name in EXECUTOR_NAMES:
        return name
    alias = LEGACY_ENGINE_ALIASES.get(name)
    if alias is not None:
        return alias
    raise ExecutionError(
        f"unknown executor {name!r}; expected one of {list(EXECUTOR_NAMES)} "
        f"(or the deprecated engine aliases {sorted(LEGACY_ENGINE_ALIASES)})"
    )


def parse_worker_address(spec: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """Canonicalize a remote worker address: ``"host:port"`` -> ``(host, port)``.

    Accepts an already-split ``(host, port)`` pair too.  The port must be an
    integer in ``1..65535``; the host part must be non-empty (use
    ``127.0.0.1`` for loopback workers).
    """
    if isinstance(spec, tuple) and len(spec) == 2:
        host, port = spec
    else:
        host, sep, port = str(spec).strip().rpartition(":")
        if not sep:
            raise ExecutionError(
                f"worker address {spec!r} is not of the form host:port"
            )
        if host.startswith("[") and host.endswith("]"):
            host = host[1:-1]  # bracketed IPv6 literal, e.g. "[::1]:7071"
        elif ":" in host:
            # A bare IPv6 literal ("::1") would otherwise mis-split into a
            # bogus host and a colon-count-dependent port.
            raise ExecutionError(
                f"worker address {spec!r} is ambiguous; bracket IPv6 hosts "
                f"as [host]:port"
            )
    try:
        port = int(port)
    except (TypeError, ValueError):
        raise ExecutionError(
            f"worker address {spec!r} has a non-integer port"
        ) from None
    if not host or not 0 < port < 65536:
        raise ExecutionError(
            f"worker address {spec!r} is not a valid host:port (port 1-65535)"
        )
    return str(host), port


def run_serialized_task(
    payload: bytes, resolve: Optional[Callable[[str], Any]] = None
) -> bytes:
    """Worker-side entry point for out-of-process COMPUTE tasks.

    Deserializes ``(node_name, operator, inputs, context)``, runs the
    operator, and returns the serialized ``(value, measured_seconds)`` pair.
    Inputs may be :class:`~repro.storage.serialization.ArtifactRef`
    placeholders for values that live in the coordinator's store; they are
    resolved through ``resolve(signature)`` *before* the compute timer
    starts (fetching is I/O, not compute).  A ref without a resolver — or a
    resolver failure — fails the task with a typed error.  Failures —
    including payload deserialization itself, which can fail on
    spawn-based platforms when the operator's module is not importable in
    the worker — are wrapped into a picklable :class:`OperatorError`,
    exactly as the in-process compute path does.
    """
    try:
        name, operator, inputs, context = deserialize(payload)
    except Exception as exc:  # noqa: BLE001 - worker cannot rebuild the task
        raise OperatorError(
            "<task payload>",
            f"worker could not deserialize the task: {exc}; on spawn-based "
            f"platforms operators must be importable from their module "
            f"(not defined in __main__ or a notebook cell)",
        ) from exc
    if any(isinstance(value, ArtifactRef) for value in inputs):
        if resolve is None:
            raise OperatorError(
                name,
                "task inputs reference stored artifacts but this worker has "
                "no fetch lane to the coordinator's store",
            )
        try:
            inputs = [
                resolve(value.signature) if isinstance(value, ArtifactRef) else value
                for value in inputs
            ]
        except Exception as exc:  # noqa: BLE001 - shipped back typed
            raise OperatorError(
                name, f"failed to fetch a stored input: {exc}"
            ) from exc
    started = time.perf_counter()
    try:
        value = operator.run(inputs, context)
    except OperatorError:
        raise
    except Exception as exc:  # noqa: BLE001 - wrap arbitrary operator failures
        raise OperatorError(name, str(exc)) from exc
    measured = time.perf_counter() - started
    try:
        return serialize((value, measured))
    except Exception as exc:  # noqa: BLE001 - unpicklable operator result
        raise OperatorError(
            name, f"result of type {type(value).__name__} is not picklable: {exc}"
        ) from exc


class Executor(ABC):
    """Strategy interface: run node tasks, deliver completions through a queue.

    Subclasses dispatch work somewhere (scheduler thread, thread pool,
    process pool, remote workers) and push :data:`Completion` triples onto
    ``self._results``; the engine consumes them with :meth:`next_completion`.
    One ``start``/``finish_run`` cycle serves one ``ExecutionEngine.execute``
    call; ``start`` opens a fresh run generation so the instance can serve
    another run afterwards, and :meth:`shutdown` releases worker resources
    for good.  A custom strategy must provide :attr:`name`, :meth:`submit`,
    and — when :attr:`out_of_process` is true — :meth:`submit_payload`;
    everything else has working defaults.  The full contract, including the
    generation-stamped completion-queue semantics and the process-safety
    rules out-of-process strategies inherit, is documented in
    ``docs/executors.md``.
    """

    #: Canonical strategy name (registry key and display name).
    name: str = "abstract"

    #: True when workers run in a separate interpreter.  The engine then
    #: ships picklable payloads (``submit_payload``) for COMPUTE tasks and
    #: validates operator process safety before dispatching anything; LOAD
    #: tasks still go through :meth:`submit` on the scheduler thread.
    out_of_process: bool = False

    #: True when :meth:`submit` runs the task before returning.  The engine
    #: then dispatches one task at a time (in topological order) so each
    #: value enters the tracked cache — and is retired — before the next
    #: task runs, reproducing the serial reference's bounded memory profile
    #: instead of buffering a whole ready frontier in the completion queue.
    synchronous: bool = False

    def __init__(self) -> None:
        self._results: "queue.Queue[Completion]" = queue.Queue()
        self._inflight: Set["Future[Any]"] = set()
        self._inflight_lock = threading.Lock()
        self._generation = 0

    def start(self) -> None:
        """Acquire worker resources (pools) for one engine run.

        Subclasses must call ``super().start()``: it opens a new run
        generation with a fresh completion queue, so completions left over
        from a previous run on the same instance can never leak into this
        one.  (``finish_run`` waits for futures to *complete*, but a
        completed future's done-callback may still be running — the
        generation check in ``_track`` drops such stragglers.)
        """
        with self._inflight_lock:
            self._generation += 1
        self._results = queue.Queue()

    @abstractmethod
    def submit(self, key: str, fn: Callable[[], Any]) -> None:
        """Run ``fn`` and deliver ``(key, fn(), None)`` — or the error — later."""

    def submit_payload(self, key: str, payload: bytes) -> None:
        """Dispatch a serialized COMPUTE task (out-of-process executors only)."""
        raise ExecutionError(
            f"executor {self.name!r} does not accept serialized payloads"
        )

    def bind_store(self, store: Any) -> None:
        """Give the executor read access to the engine's materialization store.

        The engine calls this once per ``execute`` before ``start``.  The
        default is a no-op; executors whose workers cannot share the
        coordinator's filesystem (the distributed executor's artifact
        FETCH lane) override it to serve store reads over their transport.
        """

    #: True when the engine should replace store-resident COMPUTE inputs
    #: with :class:`~repro.storage.serialization.ArtifactRef` placeholders
    #: in shipped payloads; the executor's workers resolve them against the
    #: store bound via :meth:`bind_store`.  Only meaningful together with
    #: :attr:`out_of_process`.
    uses_artifact_refs: bool = False

    def next_completion(self) -> Completion:
        """Block until one submitted task finishes; return its completion."""
        return self._results.get()

    def finish_run(self, cancel: bool = False) -> None:
        """End one engine run without releasing pools.

        Cancels queued tasks (when ``cancel``) and waits for in-flight ones
        to drain, so a reused instance carries no work into its next
        ``start``.  The engine calls this instead of :meth:`shutdown` for
        user-supplied instances, letting callers amortize pool startup across
        executes; such callers own the final :meth:`shutdown`.
        """
        with self._inflight_lock:
            pending = list(self._inflight)
        if cancel:
            for future in pending:
                future.cancel()
        if pending:
            wait_futures(pending)
        with self._inflight_lock:
            self._inflight.clear()

    def shutdown(self, cancel: bool = False) -> None:
        """Release worker resources, optionally cancelling queued tasks.

        Always waits for in-flight tasks to drain so no worker outlives the
        engine's run (failure paths rely on this before surfacing errors).
        """

    # ------------------------------------------------------------------ helpers
    def _run_to_completion(self, key: str, fn: Callable[[], Any]) -> None:
        """Run ``fn`` here and now, converting the result into a completion."""
        try:
            outcome = fn()
        except BaseException as exc:  # noqa: BLE001 - surfaced by the engine
            self._results.put((key, None, exc))
        else:
            self._results.put((key, outcome, None))

    def _track(
        self,
        key: str,
        future: "Future[Any]",
        deliver: Callable[[str, "Future[Any]"], None],
    ) -> None:
        """Register an in-flight future and route its completion to ``deliver``.

        Deliveries are stamped with the current run generation and bound to
        that generation's queue (both read atomically), so a straggler
        callback firing around the next ``start`` either gets dropped or
        posts into the already-discarded old queue — never into the new
        run's queue.
        """
        with self._inflight_lock:
            self._inflight.add(future)
            generation = self._generation

        def _done(f: "Future[Any]", k: str = key) -> None:
            with self._inflight_lock:
                self._inflight.discard(f)
                if self._generation != generation:
                    return
                results = self._results
            deliver(k, f, results)

        future.add_done_callback(_done)

    def _deliver_future(
        self, key: str, future: "Future[Any]", results: "queue.Queue[Completion]"
    ) -> None:
        try:
            outcome = future.result()
        except BaseException as exc:  # noqa: BLE001 - surfaced by the engine
            results.put((key, None, exc))
        else:
            results.put((key, outcome, None))


class InlineExecutor(Executor):
    """Tasks run synchronously on the scheduler thread (the reference strategy).

    ``max_workers`` is accepted for constructor uniformity and ignored.
    """

    name = "inline"
    synchronous = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        del max_workers

    def submit(self, key: str, fn: Callable[[], Any]) -> None:
        self._run_to_completion(key, fn)


class ThreadExecutor(Executor):
    """Tasks run on a ``ThreadPoolExecutor`` (DAG-level parallelism)."""

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise ExecutionError("max_workers must be at least 1")
        self.max_workers = int(max_workers) if max_workers is not None else default_max_workers()
        self._pool: Optional[ThreadPoolExecutor] = None

    def start(self) -> None:
        super().start()
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-exec"
            )

    def submit(self, key: str, fn: Callable[[], Any]) -> None:
        assert self._pool is not None, "executor used before start()"
        self._track(key, self._pool.submit(fn), self._deliver_future)

    def shutdown(self, cancel: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=cancel)
            self._pool = None


class _OutOfProcessExecutor(Executor):
    """Shared LOAD lane for executors whose COMPUTE workers live elsewhere.

    Workers have no store, so LOAD tasks (and any other in-process work the
    engine submits) run on a small coordinator-side I/O thread pool — the
    same thread-safe substrate the thread executor uses — rather than the
    scheduler thread, so a slow store read never stalls COMPUTE dispatch to
    idle workers.  Subclasses must set ``self.max_workers`` before calling
    :meth:`_start_io_pool`, and release the pool via
    :meth:`_shutdown_io_pool`.
    """

    out_of_process = True

    def __init__(self) -> None:
        super().__init__()
        self._io_pool: Optional[ThreadPoolExecutor] = None

    def submit(self, key: str, fn: Callable[[], Any]) -> None:
        """Run an in-process task (store LOAD) on the coordinator's I/O pool."""
        assert self._io_pool is not None, "executor used before start()"
        self._track(key, self._io_pool.submit(fn), self._deliver_future)

    # ------------------------------------------------------------------ helpers
    def _start_io_pool(self) -> None:
        if self._io_pool is None:
            self._io_pool = ThreadPoolExecutor(
                max_workers=min(4, self.max_workers), thread_name_prefix="repro-io"
            )

    def _shutdown_io_pool(self, cancel: bool = False) -> None:
        if self._io_pool is not None:
            self._io_pool.shutdown(wait=True, cancel_futures=cancel)
            self._io_pool = None


class ProcessExecutor(_OutOfProcessExecutor):
    """COMPUTE tasks run on a ``ProcessPoolExecutor``; everything else inline.

    The engine serializes ``(node_name, operator, inputs, context)`` with
    :mod:`repro.storage.serialization` and hands the bytes to
    :meth:`submit_payload`; the worker (:func:`run_serialized_task`) returns
    the serialized ``(value, measured_seconds)`` pair, deserialized here
    before delivery.  LOAD tasks and retirement bookkeeping never leave the
    coordinating process — the store, cache and stats are not shared with
    workers.  Loads run on a small I/O thread pool (the same thread-safe
    substrate the thread executor uses) rather than the scheduler thread, so
    a slow store read never stalls COMPUTE dispatch to idle workers.

    Uses the platform's default multiprocessing start method (``fork`` on
    Linux).  On spawn-based platforms, operators whose results depend on
    per-process state (e.g. ``PYTHONHASHSEED``-randomized ``hash()``) can
    legitimately diverge from the in-process executors.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise ExecutionError("max_workers must be at least 1")
        self.max_workers = (
            int(max_workers) if max_workers is not None else default_process_workers()
        )
        self._pool: Optional[ProcessPoolExecutor] = None

    def start(self) -> None:
        super().start()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        self._start_io_pool()

    def submit_payload(self, key: str, payload: bytes) -> None:
        assert self._pool is not None, "executor used before start()"
        self._track(key, self._pool.submit(run_serialized_task, payload), self._deliver_reply)

    def shutdown(self, cancel: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=cancel)
            self._pool = None
        self._shutdown_io_pool(cancel)

    # ------------------------------------------------------------------ helpers
    def _deliver_reply(
        self, key: str, future: "Future[bytes]", results: "queue.Queue[Completion]"
    ) -> None:
        try:
            outcome = deserialize(future.result())
        except BaseException as exc:  # noqa: BLE001 - surfaced by the engine
            results.put((key, None, exc))
        else:
            results.put((key, outcome, None))


# ---------------------------------------------------------------------------
# Distributed executor: TCP coordinator + long-lived worker processes
# ---------------------------------------------------------------------------
#: Largest single task payload the dispatcher will coalesce into a
#: ``("batch", ...)`` envelope.  Batching exists to amortize per-frame
#: overhead on *small* pipelined messages; a large payload already
#: dominates its frame cost and ships alone.
_BATCH_MAX_TASK_BYTES = 8192


def _send_message(
    sock: socket.socket,
    message: Any,
    lock: Optional[threading.Lock] = None,
    version: int = PROTOCOL_VERSION,
) -> None:
    """Send ``message`` as one gather-written frame (optionally locked).

    ``version`` is the negotiated protocol of the *peer*: a v4 peer gets
    the canonical zero-copy encoding (header + segments via ``sendmsg``,
    NumPy-backed payload buffers never copied), a v3 peer a plain-pickle
    frame — see :func:`repro.storage.serialization.send_message`.
    """
    send_message(sock, message, lock=lock, version=version)


def _recv_message(
    sock: socket.socket, on_progress: Optional[Callable[[], None]] = None
) -> Optional[Any]:
    """Receive one framed message; ``None`` when the peer closed cleanly.

    ``on_progress`` fires per received chunk, mid-frame included — see
    :func:`repro.storage.serialization.recv_frame`.  Callers that negotiate
    (the worker reader, the coordinator's registration reads) use
    :func:`repro.storage.serialization.recv_message` directly, which also
    reports the peer's protocol version.
    """
    received = recv_message(sock, on_progress=on_progress)
    return None if received is None else received[0]


def _is_registration(message: Any) -> bool:
    """Whether a first frame is a worker registration tuple.

    Registrations are ``("register", worker_id, pid[, heartbeat_interval[,
    peer_address]])`` — the interval field announces the worker's own
    heartbeat cadence so the coordinator can widen its silence threshold
    for slow beaters, and the protocol-v5 address field announces the
    worker's peer-artifact listener (``(host, port)``, or ``None`` when
    peer fetch is disabled on the worker).
    """
    return (
        isinstance(message, tuple)
        and len(message) in (3, 4, 5)
        and message[0] == "register"
    )


def _parse_registration(
    message: Tuple[Any, ...],
) -> Tuple[str, int, Optional[float], Optional[Tuple[str, int]]]:
    """Split a registration into ``(worker_id, pid, interval, peer_address)``."""
    interval = message[3] if len(message) >= 4 else None
    if interval is not None:
        try:
            interval = float(interval)
        except (TypeError, ValueError):
            interval = None
    peer_address: Optional[Tuple[str, int]] = None
    if len(message) == 5 and message[4] is not None:
        try:
            host, port = message[4]
            peer_address = (str(host), int(port))
        except (TypeError, ValueError):
            peer_address = None  # malformed announcement: no peer serving
    return message[1], message[2], interval, peer_address


def _picklable_error(key: str, error: BaseException) -> BaseException:
    """Ensure a worker-side failure can cross the wire.

    :func:`run_serialized_task` already wraps operator failures into the
    picklable :class:`OperatorError`; this is the safety net for anything
    else (e.g. an exotic exception raised while framing the reply).
    """
    try:
        deserialize(serialize(error))
        return error
    except Exception:  # noqa: BLE001 - anything unpicklable gets re-wrapped
        return OperatorError(key, f"worker failed with unpicklable error: {error!r}")


class _FetchSlot:
    """One outstanding artifact fetch awaiting its ``artifact`` reply."""

    __slots__ = ("event", "blob", "served")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.blob: Optional[bytes] = None
        self.served = False


#: Entry cap on a worker's shared artifact cache.  The cache spans every
#: session multiplexed onto the worker (and, for a listen-mode worker,
#: every coordinator connection), so the cap covers the working set of a
#: handful of concurrent pipelines rather than one dispatch window.
_WORKER_CACHE_ENTRIES = 32

#: Byte budget for the same cache, measured in the *canonical encoded
#: size* of each artifact — the exact length of the blob that crossed the
#: wire, which is deterministic for a given value (no pickle-memoization
#: drift across processes, so cache-bound behavior is reproducible).  The
#: entry cap alone is the wrong bound for large values — a few dozen
#: multi-GB artifacts would hold the worker's whole address space hostage
#: — so eviction triggers on whichever bound is exceeded first.
_WORKER_CACHE_BYTES = 256 * 1024 * 1024

#: Seconds allotted to one worker-to-worker artifact transfer (dial +
#: request + reply).  Kept short relative to the coordinator fetch
#: timeout: a dead or wedged peer must degrade to the coordinator path
#: quickly, not consume the task's whole fetch budget.
_PEER_FETCH_TIMEOUT = 10.0


class _ArtifactCache:
    """The worker's content-addressed artifact tier: a sized LRU with dedup.

    One instance spans every run session (and every coordinator
    connection) a worker serves, keyed on canonical artifact signatures —
    the signature *is* the content address, so two concurrent served runs
    with overlapping pipelines share one materialized copy per artifact.
    Each entry keeps both the deserialized value (what task resolution
    hands to operators) and the canonical blob (what the peer-fetch lane
    serves to other workers, and what byte accounting charges: the exact
    ``len()`` of the bytes that crossed the wire, deterministic per
    value).  Inserting a signature that is already cached is a **dedup
    hit**: the existing entry is kept, its recency refreshed and nothing
    re-charged — with a digest check asserting the byte-exactness the
    canonical encoding guarantees (same signature, same bytes).

    Eviction is LRU over whichever bound — entries or bytes — is exceeded
    first, with two protections: the most recently inserted entry is never
    evicted *at insert time* (an artifact above the whole budget still
    serves the task that fetched it; the budget is re-enforced when its
    last pin is released), and **pinned** entries — inputs of in-flight
    tasks, pinned by the resolver and unpinned when the task finishes —
    are skipped, so eviction pressure from one session can never pull an
    artifact out from under another session's running task.

    All methods are thread-safe: the executor loop, the peer-artifact
    listener threads and the heartbeat stats snapshot touch one lock.
    """

    __slots__ = ("max_entries", "max_bytes", "_lock", "_entries", "_bytes", "_pins", "_counters")

    def __init__(
        self,
        max_entries: int = _WORKER_CACHE_ENTRIES,
        max_bytes: int = _WORKER_CACHE_BYTES,
    ) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        #: signature -> (value, blob, size, digest, inserting_session)
        self._entries: "OrderedDict[str, Tuple[Any, bytes, int, str, Any]]" = OrderedDict()
        self._bytes = 0
        self._pins: Dict[str, int] = {}
        self._counters: Dict[str, int] = {
            "cache_hits": 0,
            "cache_misses": 0,
            "cross_session_hits": 0,
            "inserts": 0,
            "dedup_hits": 0,
            "evictions": 0,
            "peer_serves": 0,
            "peer_fetches": 0,
            "peer_fetch_failures": 0,
            "coordinator_fetches": 0,
        }

    def get(self, signature: str, session: Any = None) -> Tuple[bool, Any]:
        """``(hit, value)``; a hit refreshes the entry's recency.

        ``session`` identifies the asking run session: a hit on an entry
        inserted by a *different* session counts as a cross-session hit —
        the wire-observable signal that concurrent runs are sharing
        materialized state on this worker.
        """
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None:
                self._counters["cache_misses"] += 1
                return False, None
            self._entries.move_to_end(signature)
            self._counters["cache_hits"] += 1
            if session is not None and entry[4] is not None and entry[4] != session:
                self._counters["cross_session_hits"] += 1
            return True, entry[0]

    def put(self, signature: str, value: Any, blob: bytes, session: Any = None) -> None:
        """Insert one artifact under its content address (byte-exact dedup).

        A signature already cached keeps its existing entry — same
        address, same bytes, so re-charging or replacing it would only
        churn; the digest assertion documents (and checks) that byte
        exactness.  New entries charge ``len(blob)`` and trigger LRU
        eviction on the entry/byte bounds, skipping pinned entries and
        the entry just inserted.
        """
        size = len(blob)
        digest = content_digest(blob)
        with self._lock:
            existing = self._entries.get(signature)
            if existing is not None:
                self._counters["dedup_hits"] += 1
                if existing[3] != digest:  # pragma: no cover - canonical bytes diverged
                    warnings.warn(
                        f"artifact {signature!r} arrived with different bytes "
                        f"than the cached copy; keeping the first (content "
                        f"addressing assumes deterministic serialization)",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                self._entries.move_to_end(signature)
                return
            self._entries[signature] = (value, blob, size, digest, session)
            self._bytes += size
            self._counters["inserts"] += 1
            self._evict_over_budget(protect_newest=True)

    def _evict_over_budget(self, protect_newest: bool) -> None:
        """Drop LRU unpinned entries until within bounds (lock held).

        ``protect_newest`` exempts the most recent entry — insert-time
        eviction must not drop the artifact just fetched for a task; once
        the last pin is released an over-budget entry is fair game.
        """
        while self._bytes > self.max_bytes or len(self._entries) > self.max_entries:
            victim = None
            candidates = list(self._entries)
            if protect_newest:
                candidates = candidates[:-1]
            for candidate in candidates:
                if self._pins.get(candidate, 0) == 0:
                    victim = candidate
                    break
            if victim is None:
                break  # everything evictable is pinned by in-flight tasks
            _, _, dropped, _, _ = self._entries.pop(victim)
            self._bytes -= dropped
            self._counters["evictions"] += 1

    def blob(self, signature: str) -> Optional[bytes]:
        """Canonical bytes for the peer-fetch lane (``None`` = miss).

        Serving a peer counts in ``peer_serves`` and refreshes recency —
        an artifact other workers keep asking for is worth keeping.
        """
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None:
                return None
            self._entries.move_to_end(signature)
            self._counters["peer_serves"] += 1
            return entry[1]

    def pin(self, signature: str) -> None:
        """Protect an in-flight task's input from eviction (refcounted)."""
        with self._lock:
            self._pins[signature] = self._pins.get(signature, 0) + 1

    def unpin(self, signature: str) -> None:
        """Release one pin; re-enforce the budget once nothing needs it.

        The insert-time pass never evicts the entry it just admitted even
        when that entry alone exceeds the whole budget — so an over-budget
        tier is re-checked here, where the pin release marks the moment
        the oversized artifact stops being an in-flight task's input.
        """
        with self._lock:
            count = self._pins.get(signature, 0) - 1
            if count <= 0:
                self._pins.pop(signature, None)
                self._evict_over_budget(protect_newest=False)
            else:
                self._pins[signature] = count

    def count(self, name: str, delta: int = 1) -> None:
        """Bump a plane counter (resolver-path events the cache can't see)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def stats(self) -> Dict[str, int]:
        """Snapshot of counters + occupancy (the v5 heartbeat payload)."""
        with self._lock:
            snapshot = dict(self._counters)
            snapshot["cache_entries"] = len(self._entries)
            snapshot["cache_bytes"] = self._bytes
            return snapshot

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _PeerArtifactServer:
    """A worker's peer-artifact listener: serves its cache tier to peers.

    Every :class:`WorkerServer` with peer fetch enabled binds one of these
    on an ephemeral port and announces the address in its registration
    (protocol v5).  Peers dial in, send ``("peer_fetch", signature)``
    frames and receive ``("peer_artifact", signature, blob | None)``
    replies straight from the shared :class:`_ArtifactCache` — no store,
    no coordinator, no task state.  Connections are served one frame at a
    time on small daemon threads and die with EOF; the listener is
    separate from a listen-mode worker's coordinator socket, so the
    one-coordinator-at-a-time accept discipline there is untouched.
    """

    def __init__(self, cache: _ArtifactCache, host: str = "127.0.0.1") -> None:
        self._cache = cache
        self.host = host
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, 0))
        listener.listen(8)
        listener.settimeout(0.5)  # poll the stop flag; accept() ignores close()
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._accept_loop, daemon=True, name=f"repro-dist-peer-{self.port}"
        )
        self._thread.start()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True,
                name=f"repro-dist-peer-conn-{self.port}",
            ).start()

    def _serve(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(_PEER_FETCH_TIMEOUT)
            while True:
                received = recv_message(conn)
                if received is None:
                    return
                message, version = received
                if not (
                    isinstance(message, tuple)
                    and len(message) == 2
                    and message[0] == "peer_fetch"
                ):
                    return  # not speaking the peer-fetch protocol: hang up
                signature = message[1]
                send_message(
                    conn,
                    ("peer_artifact", signature, self._cache.blob(signature)),
                    version=min(PROTOCOL_VERSION, version),
                )
        except (OSError, ProtocolError):
            pass  # peer vanished; nothing to clean up
        finally:
            conn.close()

    def close(self) -> None:
        self._stop.set()
        self._listener.close()


def _fetch_from_peer(
    address: Tuple[str, int], signature: str, timeout: float = _PEER_FETCH_TIMEOUT
) -> Optional[bytes]:
    """Dial a peer worker's artifact listener and fetch one blob.

    Returns the canonical bytes, or ``None`` when the peer answered but no
    longer holds the artifact (evicted between the coordinator's answer
    and this dial).  Raises ``OSError``/:class:`ProtocolError` when the
    peer is unreachable or dies mid-transfer — the caller degrades to the
    coordinator-streamed path.
    """
    with socket.create_connection(address, timeout=timeout) as conn:
        conn.settimeout(timeout)
        send_message(conn, ("peer_fetch", signature))
        received = recv_message(conn)
        if received is None:
            raise ProtocolError(
                f"peer worker at {address[0]}:{address[1]} closed the "
                f"connection before answering the artifact fetch"
            )
        message, _version = received
        if not (
            isinstance(message, tuple)
            and len(message) == 3
            and message[0] == "peer_artifact"
            and message[1] == signature
        ):
            raise ProtocolError(
                f"peer worker at {address[0]}:{address[1]} answered the "
                f"fetch of {signature!r} with a malformed reply"
            )
        return message[2]


class WorkerServer:
    """Worker-side loop of the distributed executor.

    A worker serves one coordinator connection at a time with three threads:
    a **reader** receives frames — acking each ``task`` on receipt (even
    while a previous task is still executing, so the coordinator's pipelined
    dispatch window gets prompt acks) and routing ``artifact`` replies to
    pending fetches — an **executor loop** (the calling thread) pops queued
    tasks and runs them via :func:`run_serialized_task`, answering with a
    ``result`` or a picklable ``error``, and a **heartbeat** thread beats
    every ``heartbeat_interval`` seconds so the coordinator can distinguish
    a busy worker from a dead one.  Frames use the canonical zero-copy
    encoding of protocol version 4 — batched dispatches arrive as one
    ``("batch", ...)`` envelope and are acked with one batched frame — and
    the worker answers a v3 coordinator frame-for-frame at v3 (plain
    pickle, no batching).  One connection can carry several
    multiplexed run *sessions* (since protocol version 3 every task-related
    frame carries a session id): tasks queue in per-session lanes drained
    round-robin, so no session's backlog starves another's, and task inputs
    shipped as :class:`~repro.storage.serialization.ArtifactRef` are
    resolved through the worker's **content-addressed artifact tier** — a
    session-spanning, byte-bounded LRU (:class:`_ArtifactCache`) keyed on
    canonical signatures, so concurrent runs with overlapping pipelines
    share one materialized copy per artifact.  A miss resolves, in order:
    a v5 coordinator's ``locate`` answer naming peer workers that hold the
    blob (fetched worker-to-worker off this worker's own
    :class:`_PeerArtifactServer` counterpart), then the classic
    coordinator-streamed FETCH lane — peer failures degrade with a single
    ``RuntimeWarning``, never a task failure.  The loop exits on a
    ``shutdown`` message or when the connection closes.

    Two launch modes share this loop:

    * **dial** (:meth:`serve`) — connect out to a coordinator's listening
      address; used by the local-spawn launcher.
    * **listen** (:meth:`listen`) — bind ``host:port`` and accept
      coordinators one at a time, serving each session until it disconnects;
      used by pre-started remote workers (``python -m
      repro.execution.worker``), which the coordinator reaches via
      ``DistributedExecutor(workers=["host:port", ...])``.

    Parameters
    ----------
    host, port:
        The coordinator's listening address (dial mode; ``None`` for a
        worker driven through :meth:`listen`).
    worker_id:
        Identity announced at registration; defaults to ``pid<os.getpid()>``.
    heartbeat_interval:
        Seconds between heartbeats.
    fetch_timeout:
        Seconds to wait for the coordinator to answer an artifact fetch
        before failing the task that needs it.
    peer_fetch:
        Whether this worker joins the artifact plane: binds a
        peer-artifact listener, announces it at registration, and tries
        located peers before the coordinator-streamed path.  Disabling it
        restores the every-byte-through-the-coordinator behavior.
    peer_host:
        Interface the peer-artifact listener binds (default loopback —
        right for locally-spawned fleets; :meth:`listen` passes the
        worker's own serving host for remote workers).
    cache_bytes, cache_entries:
        Byte budget / entry cap of the shared artifact cache tier
        (``None`` = the :data:`_WORKER_CACHE_BYTES` /
        :data:`_WORKER_CACHE_ENTRIES` defaults).
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        worker_id: Optional[str] = None,
        heartbeat_interval: float = 0.5,
        fetch_timeout: float = 60.0,
        peer_fetch: bool = True,
        peer_host: str = "127.0.0.1",
        cache_bytes: Optional[int] = None,
        cache_entries: Optional[int] = None,
    ) -> None:
        if heartbeat_interval <= 0:
            # Mirrors the coordinator-side check: stop.wait(0) would turn
            # the heartbeat thread into a busy loop flooding the socket.
            raise ExecutionError("heartbeat_interval must be positive")
        if fetch_timeout <= 0:
            raise ExecutionError("fetch_timeout must be positive")
        if cache_bytes is not None and cache_bytes < 1:
            raise ExecutionError("cache_bytes must be positive")
        if cache_entries is not None and cache_entries < 1:
            raise ExecutionError("cache_entries must be positive")
        self.host = host
        self.port = port
        self.worker_id = worker_id if worker_id is not None else f"pid{os.getpid()}"
        self.heartbeat_interval = heartbeat_interval
        self.fetch_timeout = fetch_timeout
        self.peer_fetch = bool(peer_fetch)
        self.peer_host = peer_host
        #: The session-spanning artifact tier.  Lives on the *server*, not
        #: the connection: a listen-mode worker keeps it warm across
        #: coordinator sessions, which is where cross-run reuse comes from.
        self.cache = _ArtifactCache(
            max_entries=cache_entries if cache_entries is not None else _WORKER_CACHE_ENTRIES,
            max_bytes=cache_bytes if cache_bytes is not None else _WORKER_CACHE_BYTES,
        )
        self._peer_server: Optional[_PeerArtifactServer] = None

    def serve(self) -> None:
        """Dial the coordinator, register, and serve tasks until told to stop."""
        if self.host is None or self.port is None:
            raise ExecutionError(
                "WorkerServer.serve needs a coordinator host/port; use "
                "WorkerServer.listen for an address-configured worker"
            )
        sock = socket.create_connection((self.host, self.port))
        self._serve_connection(sock)

    @classmethod
    def listen(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_id: Optional[str] = None,
        heartbeat_interval: float = 0.5,
        fetch_timeout: float = 60.0,
        max_sessions: Optional[int] = None,
        on_ready: Optional[Callable[[str, int], None]] = None,
        peer_fetch: bool = True,
        cache_bytes: Optional[int] = None,
    ) -> None:
        """Bind ``host:port`` and serve coordinator sessions, one at a time.

        This is the remote-worker entry point (wrapped by ``python -m
        repro.execution.worker``): a coordinator configured with
        ``workers=["host:port", ...]`` connects in, receives the worker's
        registration as the first frame, and then drives the exact same
        protocol as a locally-spawned worker.  When a session ends (the
        coordinator shuts down or disconnects) the worker loops back to
        ``accept`` and serves the next coordinator, so one long-lived worker
        process survives many runs.

        ``port=0`` binds an ephemeral port; ``on_ready(host, port)`` is
        invoked with the bound address before the first ``accept`` (tests
        and launchers use it to learn the port).  ``max_sessions`` bounds
        the number of coordinator sessions served (``None`` = forever).
        The worker's artifact cache tier and peer-artifact listener live
        on the server, not the connection, so cached artifacts survive
        from one coordinator session into the next.
        """
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(1)
        bound_host, bound_port = listener.getsockname()[:2]
        server = cls(
            worker_id=worker_id,
            heartbeat_interval=heartbeat_interval,
            fetch_timeout=fetch_timeout,
            peer_fetch=peer_fetch,
            peer_host=host,
            cache_bytes=cache_bytes,
        )
        if on_ready is not None:
            on_ready(bound_host, bound_port)
        served = 0
        try:
            while max_sessions is None or served < max_sessions:
                conn, _ = listener.accept()
                try:
                    server._serve_connection(conn)
                except (OSError, ProtocolError):
                    pass  # coordinator vanished mid-session; await the next one
                served += 1
        finally:
            listener.close()

    # ------------------------------------------------------------------ session
    def _serve_connection(self, sock: socket.socket) -> None:
        """Serve one coordinator connection until shutdown or disconnect.

        Task lanes and pending fetch/locate slots are kept per run session
        and released on the coordinator's ``close_session`` frame; the
        artifact cache tier is deliberately *not* — it is content-addressed
        (signature = canonical address, so entries can never go stale) and
        session-spanning by design, bounded by its own byte/entry LRU
        budget instead of by session lifetime.  Registration and heartbeats
        stay per-connection — liveness is a property of the transport, not
        of any one session.
        """
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_lock = threading.Lock()
        stop = threading.Event()
        wake = threading.Condition()
        # Newest protocol version the coordinator has demonstrably sent;
        # every reply goes out at min(ours, theirs).  Starts optimistic (a
        # v3 coordinator cannot read our v4+ registration anyway — upgrades
        # roll coordinator-first, see the serialization module docstring)
        # and downgrades on the first older frame received.
        peer = {"version": PROTOCOL_VERSION}

        def _peer_version() -> int:
            return min(PROTOCOL_VERSION, peer["version"])
        # Per-session FIFO task lanes in round-robin order: the session just
        # served rotates to the back, so with several sessions queued each
        # gets one task per round instead of the first backlog winning.
        lanes: "OrderedDict[Any, Deque[Tuple[str, bytes]]]" = OrderedDict()
        fetch_lock = threading.Lock()
        fetch_slots: Dict[Tuple[Any, str], _FetchSlot] = {}
        # Pending ``locate`` requests awaiting their ``located`` answer —
        # same slot mechanics as fetches, separate keyspace (a task may
        # have both in flight for the same signature).
        locate_slots: Dict[Tuple[Any, str], _FetchSlot] = {}
        cache = self.cache
        if self.peer_fetch and self._peer_server is None:
            self._peer_server = _PeerArtifactServer(cache, host=self.peer_host)
            self._peer_server.start()
        # The peer-listener address announced to the coordinator: a worker
        # bound to a wildcard interface announces the concrete address this
        # coordinator connection uses to reach it (what its peers can dial).
        peer_address: Optional[Tuple[str, int]] = None
        if self._peer_server is not None:
            announce_host = self._peer_server.host
            if announce_host in ("", "0.0.0.0", "::"):
                announce_host = sock.getsockname()[0]
            peer_address = (announce_host, self._peer_server.port)
        # Registration announces the worker's own heartbeat interval so a
        # coordinator whose heartbeat_timeout was derived from a *different*
        # interval can widen its silence threshold for this worker instead
        # of declaring a slow-beating (but healthy) remote worker dead, and
        # (protocol v5) the peer-artifact listener address, so the
        # coordinator's location index can hand it to other workers.
        _send_message(
            sock,
            (
                "register",
                self.worker_id,
                os.getpid(),
                self.heartbeat_interval,
                peer_address,
            ),
            send_lock,
        )

        def _stats_beat() -> None:
            """Best-effort stats-carrying heartbeat (v5 coordinators only)."""
            version = _peer_version()
            if version < 5:
                return
            try:
                _send_message(
                    sock,
                    ("heartbeat", self.worker_id, cache.stats()),
                    send_lock,
                    version=version,
                )
            except OSError:
                pass

        def _heartbeat() -> None:
            while not stop.wait(self.heartbeat_interval):
                try:
                    version = _peer_version()
                    beat = (
                        ("heartbeat", self.worker_id, cache.stats())
                        if version >= 5
                        else ("heartbeat", self.worker_id)
                    )
                    _send_message(sock, beat, send_lock, version=version)
                except OSError:
                    return

        def _enqueue_task(message: Tuple[Any, ...]) -> None:
            _, session, key, payload = message
            with wake:
                lanes.setdefault(session, deque()).append((key, payload))
                wake.notify_all()

        def _handle_control(message: Tuple[Any, ...]) -> None:
            kind = message[0]
            if kind == "artifact":
                _, session, signature, blob = message
                with fetch_lock:
                    slot = fetch_slots.pop((session, signature), None)
                if slot is not None:
                    slot.blob = blob
                    slot.served = True
                    slot.event.set()
            elif kind == "located":
                _, session, signature, peers = message
                with fetch_lock:
                    slot = locate_slots.pop((session, signature), None)
                if slot is not None:
                    slot.blob = peers
                    slot.served = True
                    slot.event.set()
            elif kind == "close_session":
                # The coordinator drained the session and dropped it:
                # release its lane and pending fetch/locate slots.  The
                # artifact cache tier survives on purpose — it is content
                # addressed (entries can never go stale) and bounded by
                # its own LRU budget, and keeping it warm across sessions
                # is what lets the next run reuse this one's artifacts.
                _, session = message
                with wake:
                    lanes.pop(session, None)
                with fetch_lock:
                    stale = [k for k in fetch_slots if k[0] == session]
                    closed = [fetch_slots.pop(k) for k in stale]
                    stale = [k for k in locate_slots if k[0] == session]
                    closed += [locate_slots.pop(k) for k in stale]
                for slot in closed:
                    slot.event.set()  # served stays False -> fetch fails typed
                # Flush final plane counters while the coordinator still
                # has this session's stats consumer attached (the periodic
                # beat may lag the session close by up to an interval).
                _stats_beat()

        def _reader() -> None:
            # Runs concurrently with task execution so a pipelined task N+1
            # is acked the moment its frame arrives, not when task N ends.
            while True:
                try:
                    received = recv_message(sock)
                except Exception:  # noqa: BLE001 - transport error = connection over
                    received = None
                if received is None:
                    break
                message, version = received
                peer["version"] = version
                try:
                    # A v4 batch envelope carries several small messages in
                    # one frame — typically the pipelined window's task
                    # dispatches.  Unwrap it, acking every task in one
                    # (batched) frame first so the coordinator's pipeline
                    # window refills promptly.
                    inner = message[1] if message[0] == "batch" else (message,)
                    if any(m[0] == "shutdown" for m in inner):
                        break
                    acks = tuple(
                        ("ack", self.worker_id, m[1], m[2])
                        for m in inner
                        if m[0] == "task"
                    )
                except Exception:  # noqa: BLE001 - malformed message shape
                    # A frame that decoded but does not have a well-formed
                    # message (or batch) shape means the peer is not speaking
                    # this protocol: end the session cleanly rather than let
                    # the reader thread die without releasing the serve loop.
                    break
                if acks:
                    try:
                        _send_message(
                            sock,
                            acks[0] if len(acks) == 1 else ("batch", acks),
                            send_lock,
                            version=_peer_version(),
                        )
                    except OSError:
                        break
                for m in inner:
                    if m[0] == "task":
                        _enqueue_task(m)
                    else:
                        _handle_control(m)
            stop.set()
            with wake:
                wake.notify_all()  # unblock the executor loop
            with fetch_lock:
                orphaned = list(fetch_slots.values()) + list(locate_slots.values())
                fetch_slots.clear()
                locate_slots.clear()
            for slot in orphaned:
                slot.event.set()  # served stays False -> fetch fails typed

        threading.Thread(
            target=_heartbeat, daemon=True, name=f"repro-dist-hb-{self.worker_id}"
        ).start()
        reader = threading.Thread(
            target=_reader, daemon=True, name=f"repro-dist-read-{self.worker_id}"
        )
        reader.start()

        def _next_task() -> Optional[Tuple[Any, str, bytes]]:
            """Pop the next task, rotating fairly across session lanes."""
            with wake:
                while True:
                    for session in list(lanes):
                        lane = lanes[session]
                        if lane:
                            key, payload = lane.popleft()
                            lanes.move_to_end(session)
                            return session, key, payload
                    if stop.is_set():
                        return None
                    wake.wait(timeout=0.5)

        def _locate_peers(session: Any, signature: str) -> Tuple[Tuple[str, int], ...]:
            """Ask the coordinator which peer workers hold a blob.

            Best-effort: an empty answer — including a locate timeout or a
            closed connection — just routes the resolve to the classic
            coordinator-streamed path.
            """
            slot = _FetchSlot()
            with fetch_lock:
                if stop.is_set():
                    return ()
                locate_slots[(session, signature)] = slot
            try:
                _send_message(
                    sock,
                    ("locate", self.worker_id, session, signature),
                    send_lock,
                    version=_peer_version(),
                )
            except OSError:
                with fetch_lock:
                    locate_slots.pop((session, signature), None)
                return ()
            if not slot.event.wait(self.fetch_timeout):
                with fetch_lock:
                    locate_slots.pop((session, signature), None)
                return ()
            if not slot.served or not slot.blob:
                return ()
            try:
                return tuple((str(host), int(port)) for host, port in slot.blob)
            except (TypeError, ValueError):
                return ()

        def _fetch_via_peers(
            peers: Tuple[Tuple[str, int], ...], signature: str
        ) -> Optional[bytes]:
            """Try each located peer in turn; degrade quietly on misses.

            Dial/transfer failures across *all* peers produce exactly one
            ``RuntimeWarning`` (never a task failure): the caller falls
            back to the coordinator-streamed path, which owns the bytes.
            """
            failures: List[str] = []
            timeout = min(self.fetch_timeout, _PEER_FETCH_TIMEOUT)
            for address in peers:
                try:
                    blob = _fetch_from_peer(address, signature, timeout=timeout)
                except (OSError, ProtocolError) as exc:
                    failures.append(f"{address[0]}:{address[1]}: {exc}")
                    continue
                if blob is not None:
                    cache.count("peer_fetches")
                    return blob
            if failures:
                cache.count("peer_fetch_failures")
                warnings.warn(
                    f"peer fetch of artifact {signature!r} failed "
                    f"({'; '.join(failures)}); falling back to the "
                    f"coordinator-streamed path",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return None

        def _resolver_for(session: Any, pinned: List[str]) -> Callable[[str], Any]:
            def _resolve(signature: str) -> Any:
                hit, value = cache.get(signature, session=session)
                if hit:
                    cache.pin(signature)
                    pinned.append(signature)
                    return value
                blob: Optional[bytes] = None
                from_peer = False
                if self.peer_fetch and _peer_version() >= 5:
                    peers = _locate_peers(session, signature)
                    if peers:
                        blob = _fetch_via_peers(peers, signature)
                        from_peer = blob is not None
                if blob is None:
                    slot = _FetchSlot()
                    with fetch_lock:
                        if stop.is_set():
                            raise ExecutionError(
                                "connection to the coordinator closed before the fetch"
                            )
                        fetch_slots[(session, signature)] = slot
                    _send_message(
                        sock,
                        ("fetch", self.worker_id, session, signature),
                        send_lock,
                        version=_peer_version(),
                    )
                    if not slot.event.wait(self.fetch_timeout):
                        with fetch_lock:
                            fetch_slots.pop((session, signature), None)
                        raise ExecutionError(
                            f"coordinator did not answer the fetch of artifact "
                            f"{signature!r} within {self.fetch_timeout:g}s"
                        )
                    if not slot.served:
                        raise ExecutionError(
                            f"connection closed while fetching artifact {signature!r}"
                        )
                    if slot.blob is None:
                        raise ExecutionError(
                            f"coordinator has no stored artifact for signature {signature!r}"
                        )
                    blob = slot.blob
                    cache.count("coordinator_fetches")
                value = deserialize(blob)
                cache.put(signature, value, blob, session=session)
                cache.pin(signature)
                pinned.append(signature)
                if from_peer and _peer_version() >= 5:
                    # Tell the location index this worker now holds the
                    # blob too (the coordinator only learns about holders
                    # it streamed bytes to itself).  Best-effort: a lost
                    # announcement just means one fewer known replica.
                    try:
                        _send_message(
                            sock,
                            ("cached", self.worker_id, signature),
                            send_lock,
                            version=_peer_version(),
                        )
                    except OSError:
                        pass
                return value

            return _resolve

        try:
            while True:
                item = _next_task()
                if item is None:
                    break
                session, key, payload = item
                pinned: List[str] = []
                try:
                    reply = run_serialized_task(
                        payload, resolve=_resolver_for(session, pinned)
                    )
                except BaseException as exc:  # noqa: BLE001 - shipped back typed
                    # Interrupt/exit must still take the worker down: report
                    # the failure best-effort, then re-raise instead of
                    # looping — a Ctrl-C (or SystemExit) during task
                    # execution would otherwise be pickled into a mere task
                    # error, leaving behind a worker that refuses to die.
                    fatal = isinstance(exc, (KeyboardInterrupt, SystemExit))
                    try:
                        _send_message(
                            sock,
                            ("error", session, key, _picklable_error(key, exc)),
                            send_lock,
                            version=_peer_version(),
                        )
                    except OSError:
                        if not fatal:
                            raise  # coordinator gone; nobody to report to
                    if fatal:
                        raise
                    continue
                finally:
                    # Inputs were pinned by the resolver so eviction could
                    # not drop them mid-task; the task is over either way.
                    for pinned_signature in pinned:
                        cache.unpin(pinned_signature)
                try:
                    _send_message(
                        sock,
                        ("result", session, key, reply),
                        send_lock,
                        version=_peer_version(),
                    )
                except OSError:
                    raise  # coordinator gone; nobody to report to
                except Exception as exc:  # noqa: BLE001 - e.g. reply over frame limit
                    # The reply could not be framed (not a transport problem):
                    # report it as a task error instead of dying and dragging
                    # the run through pointless worker-death retries.
                    _send_message(
                        sock,
                        ("error", session, key, OperatorError(key, f"result reply could not be framed: {exc}")),
                        send_lock,
                        version=_peer_version(),
                    )
        finally:
            stop.set()
            try:
                # close() alone does not wake a reader blocked in recv() (the
                # in-flight syscall keeps the connection alive), so the peer
                # would not see EOF until process exit; shutdown() unblocks
                # the reader and sends FIN immediately.
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()
            reader.join(timeout=2.0)


def _distributed_worker_main(
    host: str,
    port: int,
    worker_id: str,
    heartbeat_interval: float,
    fetch_timeout: float = 60.0,
    peer_fetch: bool = True,
    cache_bytes: Optional[int] = None,
) -> None:
    """Entry point of a spawned worker process (module-level: spawn-safe)."""
    WorkerServer(
        host,
        port,
        worker_id=worker_id,
        heartbeat_interval=heartbeat_interval,
        fetch_timeout=fetch_timeout,
        peer_fetch=peer_fetch,
        cache_bytes=cache_bytes,
    ).serve()


class _SessionState:
    """Coordinator-side bookkeeping of one multiplexed run session.

    The fleet (:class:`DistributedExecutor`) dispatches from these
    per-session FIFO lanes round-robin, so concurrent runs interleave
    fairly instead of queuing behind each other, and answers workers'
    artifact fetches from the session's own bound store.  The executor's
    classic single-run API runs on one implicit default session; sessions
    only become visible when :meth:`DistributedExecutor.session` opens
    more.
    """

    __slots__ = ("session_id", "queue", "outstanding", "cancelling", "store", "open")

    def __init__(self, session_id: str):
        self.session_id = session_id
        self.queue: Deque["_DistributedTask"] = deque()
        self.outstanding = 0
        self.cancelling = False
        self.store: Optional[Any] = None
        self.open = True


class _DistributedTask:
    """One COMPUTE payload travelling through the coordinator."""

    __slots__ = ("session", "key", "payload", "results", "attempts", "acked", "done")

    def __init__(
        self,
        session: _SessionState,
        key: str,
        payload: bytes,
        results: "queue.Queue[Completion]",
    ):
        #: The run session this task belongs to — its FIFO lane,
        #: outstanding count, cancel flag and bound store live there.
        self.session = session
        self.key = key
        self.payload = payload
        #: The completion queue of the run that submitted this task.  Binding
        #: it at submit time makes delivery generation-safe: a straggler from
        #: a previous run posts into that run's discarded queue, never ours.
        self.results = results
        self.attempts = 0
        self.acked = False
        self.done = False


class _WorkerHandle:
    """Coordinator-side record of one worker (locally spawned or remote)."""

    __slots__ = (
        "worker_id", "process", "pid", "sock", "send_lock", "alive",
        "last_seen", "inflight", "address", "silence_timeout", "protocol",
        "peer_address",
    )

    def __init__(self, worker_id: str):
        self.worker_id = worker_id
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.pid: Optional[int] = None
        self.sock: Optional[socket.socket] = None
        self.send_lock = threading.Lock()
        self.alive = True
        self.last_seen = time.monotonic()
        #: Negotiated wire protocol for this connection: the version the
        #: worker stamped on its registration frame.  Every frame to the
        #: worker goes out at this version, so a v3 worker receives
        #: plain-pickle frames and never a ``batch`` envelope.
        self.protocol = PROTOCOL_VERSION
        #: Dispatched-but-unfinished tasks keyed by ``(session_id, key)`` —
        #: node names are only unique within a run, and concurrent sessions
        #: routinely run the same workflow.
        self.inflight: Dict[Tuple[str, str], _DistributedTask] = {}
        #: ``(host, port)`` of an address-configured remote worker;
        #: ``None`` for locally-spawned workers.
        self.address: Optional[Tuple[str, int]] = None
        #: Per-worker silence threshold, widened past the executor's
        #: ``heartbeat_timeout`` when the worker registered with a slower
        #: heartbeat interval than the coordinator assumed (``None`` =
        #: use the executor's timeout).
        self.silence_timeout: Optional[float] = None
        #: ``(host, port)`` of the worker's peer-fetch listener as announced
        #: in a v5 registration; ``None`` for v4-and-earlier workers or
        #: workers started with peer fetch disabled.  The location index
        #: only ever hands out addresses recorded here.
        self.peer_address: Optional[Tuple[str, int]] = None


class DistributedExecutor(_OutOfProcessExecutor):
    """COMPUTE tasks run on worker *processes* reached over TCP sockets.

    Two worker-pool modes share one coordinator:

    * **local spawn** (default) — the coordinator listens on ``127.0.0.1``
      and spawns ``max_workers`` long-lived :class:`WorkerServer` processes
      that connect back and register.
    * **remote (address-configured)** — ``workers=["host:port", ...]``
      names pre-started listening workers (``python -m
      repro.execution.worker``); the coordinator dials each address and
      reads its registration.  Remote workers have no local process handle,
      so heartbeat silence beyond ``heartbeat_timeout`` is authoritative
      for declaring them dead, and ``shutdown`` only closes their sessions
      (externally-managed processes are never reaped).

    Serialized COMPUTE payloads are dispatched to workers as
    length-prefixed frames (wire format in
    :mod:`repro.storage.serialization`), **pipelined** up to
    ``pipeline_depth`` tasks per worker connection: while a worker executes
    task N the coordinator already serializes and frames task N+1 onto the
    same socket, hiding the framing round trip on short tasks.  Since
    protocol version 4 frames carry the canonical encoding and are
    gather-written (``sendmsg``) so NumPy-backed payload buffers are never
    copied into a contiguous frame, and small pipelined dispatches headed
    for the same worker coalesce into one ``("batch", ...)`` frame (their
    acks come back batched the same way); a worker that registered at v3
    gets plain-pickle frames and no batching.  Workers ack
    each task on receipt (a dedicated reader thread acks even while a task
    is executing), heartbeat while idle or busy, and return the serialized
    ``(value, measured_seconds)`` reply, deserialized here before delivery
    — exactly the :class:`ProcessExecutor` reply contract, so the engine
    applies the cost model identically.

    Store access (the artifact plane): when ``fetch_inputs`` is active
    — the default for address-configured workers, which cannot assume the
    coordinator's filesystem — the engine ships store-resident COMPUTE
    inputs as :class:`~repro.storage.serialization.ArtifactRef`
    placeholders, and workers resolve them content-addressed by
    signature.  Since protocol version 5 a v5 worker first asks
    ``locate`` and the coordinator answers with the addresses of peer
    workers already holding the blob (recorded when it streamed the
    artifact to them, or when they announced a ``cached`` peer-fetch
    insert), so the bytes move worker-to-worker instead of through the
    coordinator; when no peer holds the blob, the peer dial fails, or
    either side speaks v4, the worker falls back to the classic ``fetch``
    request the coordinator answers from the store bound via
    :meth:`bind_store` (served on the I/O pool, so fetches never stall
    dispatch).  :meth:`artifact_plane_stats` aggregates both sides'
    counters.

    Failure handling: a worker that dies (socket EOF, dead process, or
    missed heartbeats for ``heartbeat_timeout`` seconds) has its in-flight
    tasks — acked-but-unfinished and pipelined-but-unacked alike — requeued
    to surviving workers exactly once per death (a duplicate reply from a
    worker wrongly declared dead is dropped; first answer wins); a task
    dispatched ``max_task_attempts`` times without a reply — or orphaned
    when no worker survives — fails with an :class:`ExecutionError` naming
    it.  Operators must satisfy the same purity/picklability contract as
    the process executor (replayed tasks re-run the operator, which is
    safe only because operators are pure functions of their inputs).

    LOAD tasks and all bookkeeping stay in the coordinating process, on the
    same small I/O thread pool the process executor uses.  ``start`` on a
    reused instance keeps surviving workers and respawns dead ones (local
    mode) or re-dials disconnected addresses (remote mode, best-effort), so
    a lifecycle amortizes worker startup; ``finish_run`` drains without
    releasing the pool and ``shutdown`` sends every spawned worker a
    graceful ``shutdown`` frame before reaping it.  Workers are spawned
    with the platform's default multiprocessing start method — the same
    deliberate trade-off the process executor documents (fast forks on
    Linux; the entry point is module-level, so spawn-based platforms work
    too).

    Parameters
    ----------
    max_workers:
        Number of locally-spawned worker processes (default: one per
        core).  Rejected in combination with ``workers`` unless it equals
        the address count.
    workers:
        Remote worker addresses (``"host:port"`` strings or ``(host,
        port)`` pairs).  When given, no local workers are spawned; the
        coordinator connects to each address instead (retrying until
        ``start_timeout`` on the first ``start``).
    pipeline_depth:
        Tasks dispatched onto one worker connection at a time (>= 1).  The
        default of 2 overlaps coordinator-side serialization/framing of the
        next task with worker-side execution of the current one; 1 restores
        the strict one-task-per-worker dispatch of protocol version 1.
    heartbeat_interval:
        Seconds between worker heartbeats (spawned workers inherit it;
        remote workers use the interval they were started with, announce it
        at registration, and get a correspondingly widened per-worker
        silence threshold when they beat slower than this coordinator
        assumed).
    heartbeat_timeout:
        Silence (no frame of any kind) after which a worker is declared
        dead.  ``None`` (default) derives ``max(5, 10 * heartbeat_interval)``;
        an explicit value must exceed ``heartbeat_interval`` or every
        healthy-but-busy worker would be declared dead.  Socket EOF and
        process exit are detected immediately; for locally-spawned workers
        the process handle is authoritative, so silence alone never kills a
        provably-alive worker (a GIL-holding C call can starve the
        heartbeat thread).  For address-configured remote workers there is
        no process handle, so the timeout is authoritative.
    max_task_attempts:
        Dispatch attempts per task before it fails.
    start_timeout:
        Seconds to wait for spawned workers to register — or for remote
        addresses to accept the first connection — before ``start`` raises.
    fetch_inputs:
        Whether store-resident COMPUTE inputs ship as artifact refs
        resolved over the FETCH lane.  ``None`` (default) enables it
        exactly when ``workers`` addresses are configured; pass ``True`` to
        exercise the lane with locally-spawned workers too.
    connect_timeout:
        Seconds allotted to one remote connection attempt (TCP connect +
        registration read).
    redial_backoff:
        Base of the exponential re-dial backoff applied to a remote
        address whose dial failed: the n-th consecutive failure hides the
        address from non-strict pool healing for ``redial_backoff *
        2**(n-1)`` seconds, capped at ``max(5, 2 * connect_timeout)``.
        The counter resets on a successful dial, so a worker that merely
        restarted is re-adopted on the next healing pass instead of
        staying invisible for the full cap.
    fetch_timeout:
        Seconds a locally-spawned worker waits for this coordinator to
        answer an artifact fetch before failing the task that needs it
        (remote workers use the ``--fetch-timeout`` they were started
        with).
    peer_fetch:
        Whether the coordinator answers ``locate`` requests with peer
        worker addresses (default ``True``).  ``False`` makes every
        ``located`` answer empty, so all artifact bytes route through the
        coordinator exactly as in protocol v4 — spawned workers still
        inherit the flag and skip starting their peer listener entirely.
    worker_cache_bytes:
        Byte budget of each locally-spawned worker's content-addressed
        artifact cache tier (default: the worker-side
        ``_WORKER_CACHE_BYTES`` bound; remote workers use the
        ``--cache-bytes`` they were started with).

    Several engines can share one executor's worker pool concurrently:
    :meth:`session` opens a :class:`DistributedSession` with its own
    completion queue, outstanding-task bookkeeping and bound store,
    dispatched fairly (round-robin across sessions, FIFO within each)
    and tagged with a session id on the wire.
    """

    name = "distributed"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: Optional[float] = None,
        max_task_attempts: int = 3,
        start_timeout: float = 30.0,
        workers: Optional[Sequence[Union[str, Tuple[str, int]]]] = None,
        pipeline_depth: int = 2,
        fetch_inputs: Optional[bool] = None,
        connect_timeout: float = 5.0,
        redial_backoff: float = 0.25,
        fetch_timeout: float = 60.0,
        peer_fetch: bool = True,
        worker_cache_bytes: Optional[int] = None,
    ) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise ExecutionError("max_workers must be at least 1")
        self.worker_addresses: Optional[List[Tuple[str, int]]] = None
        if workers is not None:
            addresses = [parse_worker_address(spec) for spec in workers]
            if not addresses:
                raise ExecutionError(
                    "workers must name at least one host:port address"
                )
            if len(set(addresses)) != len(addresses):
                raise ExecutionError(
                    f"workers lists a duplicate address: {sorted(addresses)}"
                )
            if max_workers is not None and max_workers != len(addresses):
                raise ExecutionError(
                    f"max_workers ({max_workers}) conflicts with the "
                    f"{len(addresses)} explicit worker address(es); omit it"
                )
            self.worker_addresses = addresses
            max_workers = len(addresses)
        self.max_workers = (
            int(max_workers) if max_workers is not None else default_process_workers()
        )
        if pipeline_depth < 1:
            raise ExecutionError("pipeline_depth must be at least 1")
        if max_task_attempts < 1:
            raise ExecutionError("max_task_attempts must be at least 1")
        if heartbeat_interval <= 0:
            raise ExecutionError("heartbeat_interval must be positive")
        if heartbeat_timeout is None:
            heartbeat_timeout = max(5.0, 10.0 * heartbeat_interval)
        elif heartbeat_timeout <= heartbeat_interval:
            raise ExecutionError(
                f"heartbeat_timeout ({heartbeat_timeout:g}s) must exceed "
                f"heartbeat_interval ({heartbeat_interval:g}s), or every "
                f"healthy worker would be declared dead between beats"
            )
        if redial_backoff <= 0:
            raise ExecutionError("redial_backoff must be positive")
        if fetch_timeout <= 0:
            raise ExecutionError("fetch_timeout must be positive")
        if worker_cache_bytes is not None and worker_cache_bytes < 1:
            raise ExecutionError("worker_cache_bytes must be at least 1")
        self.peer_fetch = bool(peer_fetch)
        self.worker_cache_bytes = worker_cache_bytes
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_task_attempts = max_task_attempts
        self.start_timeout = start_timeout
        self.pipeline_depth = int(pipeline_depth)
        self.connect_timeout = connect_timeout
        self.redial_backoff = redial_backoff
        self.fetch_timeout = fetch_timeout
        self.uses_artifact_refs = (
            bool(fetch_inputs)
            if fetch_inputs is not None
            else self.worker_addresses is not None
        )

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._workers: Dict[str, _WorkerHandle] = {}
        self._stopping = False
        self._worker_seq = itertools.count()
        self._session_seq = itertools.count()
        #: Open sessions by id, in round-robin dispatch order (the session
        #: just served moves to the back).
        self._sessions: "OrderedDict[str, _SessionState]" = OrderedDict()
        self._default_session = self._open_session()
        self._stop_event = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._port: Optional[int] = None
        self._threads: List[threading.Thread] = []
        self._running = False
        #: Serializes pool bring-up: concurrent sessions may start() at the
        #: same time, and the listener/threads/spawn sequence is not safe to
        #: run twice.
        self._start_lock = threading.Lock()
        self._remote_ready = False
        #: Per-address earliest next re-dial time: a dead remote host costs
        #: a full connect_timeout to probe, so non-strict healing skips it
        #: for a backoff window instead of stalling every start().
        self._remote_retry_at: Dict[Tuple[str, int], float] = {}
        #: Consecutive failed dials per address; drives the exponential
        #: re-dial backoff and resets to zero on a successful dial.
        self._remote_dial_failures: Dict[Tuple[str, int], int] = {}
        self._store: Optional[Any] = None
        #: Artifact-plane location index: for each signature, the workers
        #: known to hold its blob, oldest-recorded first (an OrderedDict
        #: doubles as an insertion-ordered set).  Sites are recorded when
        #: the coordinator streams an artifact to a worker and when a
        #: worker announces a ``cached`` peer-fetch insert; a dead worker's
        #: sites are pruned in :meth:`_worker_failed`.
        self._artifact_sites: Dict[str, "OrderedDict[str, None]"] = {}
        #: Reverse index of the above, so pruning a dead worker is O(its
        #: holdings) instead of a scan over every signature.
        self._worker_sites: Dict[str, set] = {}
        self._plane_lock = threading.Lock()
        #: Coordinator-side artifact-plane counters (see
        #: :meth:`artifact_plane_stats`).
        self._plane: Dict[str, int] = {
            "fetches_served": 0,
            "fetch_bytes_served": 0,
            "locates_served": 0,
            "locates_with_peers": 0,
        }
        #: Latest cache stats heartbeat per worker id (v5 workers only).
        #: Deliberately never pruned on worker death or shutdown so the
        #: serve daemon can report peer/cache reuse after the fleet stops.
        self._worker_plane: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------ lifecycle
    def bind_store(self, store: Any) -> None:
        """Bind the engine's materialization store for the FETCH lane."""
        self._store = store

    def start(self) -> None:
        """Open a run generation; bring the worker pool up to strength.

        Local-spawn mode: first use opens the listener and spawns
        ``max_workers`` workers; a reused instance keeps surviving workers
        and only respawns dead ones.  Blocks until every worker has
        registered (``start_timeout``).  Remote mode: dial every
        still-disconnected address — retrying until ``start_timeout`` on a
        first start (which fails if any address stays unreachable); on
        reuse, reconnection is a best-effort single pass that warns about
        unreachable workers and proceeds as long as one survives.
        """
        super().start()
        self._ensure_workers()

    def _ensure_workers(self) -> None:
        """Bring the shared worker pool up to strength (thread-safe).

        Factored out of :meth:`start` so every :class:`DistributedSession`
        can call it from its own run thread; the start lock serializes
        concurrent session starts against each other (the pool is shared
        state, and the listener/threads/spawn sequence must not run twice).
        """
        with self._start_lock:
            self._start_io_pool()
            first = not self._running
            if first:
                self._stopping = False
                self._stop_event.clear()
                loops = [("dispatch", self._dispatch_loop), ("monitor", self._monitor_loop)]
                if self.worker_addresses is None:
                    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                    listener.bind(("127.0.0.1", 0))
                    listener.listen(self.max_workers + 8)
                    # A timeout lets the accept loop poll the stop flag: closing a
                    # socket does not reliably wake a thread blocked in accept().
                    listener.settimeout(0.25)
                    self._listener = listener
                    self._port = listener.getsockname()[1]
                    loops.insert(0, ("accept", self._accept_loop))
                self._threads = [
                    threading.Thread(target=loop, daemon=True, name=f"repro-dist-{label}")
                    for label, loop in loops
                ]
                for thread in self._threads:
                    thread.start()
                self._running = True
            with self._cond:
                for worker_id in [w for w, h in self._workers.items() if not h.alive]:
                    del self._workers[worker_id]
            if self.worker_addresses is not None:
                # Strictness is keyed on a *successful* first start, not on the
                # coordinator threads being up: a failed strict start must stay
                # strict on retry instead of silently downgrading to best-effort.
                self._connect_remote_workers(strict=not self._remote_ready)
                self._remote_ready = True
                return
            with self._cond:
                missing = self.max_workers - len(self._workers)
            for _ in range(missing):
                self._spawn_worker()
            self._await_registration()

    def submit_payload(self, key: str, payload: bytes) -> None:
        """Queue one serialized COMPUTE task for dispatch to an idle worker."""
        self._submit(self._default_session, key, payload, self._results)

    def _submit(
        self,
        state: _SessionState,
        key: str,
        payload: bytes,
        results: "queue.Queue[Completion]",
    ) -> None:
        """Queue one COMPUTE task on a session's lane (shared dispatch)."""
        task = _DistributedTask(state, key, payload, results)
        with self._cond:
            if not self._running:
                raise ExecutionError("executor used before start()")
            if not any(handle.alive for handle in self._workers.values()):
                raise ExecutionError(
                    "distributed executor has no live workers to dispatch to"
                )
            state.outstanding += 1
            state.queue.append(task)
            self._cond.notify_all()

    def finish_run(self, cancel: bool = False) -> None:
        """Drain this run without releasing workers.

        Waits until every submitted task has been delivered (or, with
        ``cancel``, drops tasks still queued on the coordinator — matching
        the pool executors, a cancelled never-dispatched task produces no
        completion).  In-flight tasks always run to completion or to their
        worker's death.  Only the executor's own default session is
        drained; concurrent :class:`DistributedSession` runs are untouched
        (each drains itself).
        """
        super().finish_run(cancel=cancel)
        self._drain_session(self._default_session, cancel)

    def _drain_session(self, state: _SessionState, cancel: bool) -> None:
        with self._cond:
            if cancel:
                state.cancelling = True
                while state.queue:
                    task = state.queue.pop()
                    if task.done:
                        continue  # completed elsewhere while still queued
                    task.done = True
                    state.outstanding -= 1
            while state.outstanding > 0:
                self._cond.wait(timeout=0.1)
            state.cancelling = False
            self._cond.notify_all()

    def shutdown(self, cancel: bool = False) -> None:
        """Drain, then gracefully stop workers and release the transport.

        Every locally-spawned worker gets a ``shutdown`` frame and a grace
        period before being terminated; remote (address-configured) workers
        only have their session closed — their processes are externally
        managed and loop back to accept the next coordinator.  The listener
        and coordinator threads are released.  The instance can be
        ``start``-ed again afterwards.

        Open :class:`DistributedSession` runs are drained with cancel
        first — closing the fleet under a running session is the owner's
        call to make, and nothing may be left waiting on completions.
        """
        if not self._running and self._io_pool is None:
            return
        self.finish_run(cancel=cancel)
        with self._cond:
            others = [
                s for s in self._sessions.values() if s is not self._default_session
            ]
        for state in others:
            self._drain_session(state, cancel=True)
        with self._cond:
            self._stopping = True
            handles = list(self._workers.values())
            self._workers.clear()
            self._cond.notify_all()
        self._stop_event.set()
        for handle in handles:
            if handle.sock is not None and handle.address is None:
                try:
                    _send_message(
                        handle.sock,
                        ("shutdown",),
                        handle.send_lock,
                        version=handle.protocol,
                    )
                except OSError:
                    pass
        for handle in handles:
            if handle.process is not None:
                handle.process.join(timeout=2.0)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
            if handle.sock is not None:
                handle.sock.close()
        if self._listener is not None:
            try:
                # Wake the accept loop immediately instead of letting it wait
                # out its poll interval (the dummy peer sends no registration).
                socket.create_connection(("127.0.0.1", self._port), timeout=0.5).close()
            except OSError:
                pass
            self._listener.close()
            self._listener = None
            self._port = None
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads = []
        self._running = False
        self._remote_ready = False
        self._remote_retry_at.clear()
        self._remote_dial_failures.clear()
        self._shutdown_io_pool(cancel)

    # ------------------------------------------------------------------ sessions
    def session(self) -> "DistributedSession":
        """Open a new run session multiplexed onto this executor's workers.

        The returned :class:`DistributedSession` is a full executor whose
        tasks share this fleet's worker processes with every other open
        session (and with the fleet's own default session), dispatched
        round-robin.  The caller owns it: pass it to an engine or a
        ``System`` (engines only drain it between runs) and close it with
        its ``shutdown()`` when the run is over — the fleet stays up.
        """
        return DistributedSession(self)

    def _open_session(self) -> _SessionState:
        state = _SessionState(f"s{next(self._session_seq)}")
        with self._cond:
            self._sessions[state.session_id] = state
        return state

    def _close_session(self, state: _SessionState) -> None:
        with self._cond:
            state.open = False
            self._sessions.pop(state.session_id, None)
            handles = [
                h for h in self._workers.values()
                if h.alive and h.sock is not None
            ]
            self._cond.notify_all()
        # Tell every worker to drop the session's lane, fetched-value cache
        # and pending fetch slots.  Without this frame a long-lived fleet
        # (the ``repro serve`` daemon) leaks one cache of deserialized
        # artifacts per finished run into every worker, since the
        # connection — and with it the worker's per-session bookkeeping —
        # outlives the sessions multiplexed onto it.
        for handle in handles:
            try:
                _send_message(
                    handle.sock,
                    ("close_session", state.session_id),
                    handle.send_lock,
                    version=handle.protocol,
                )
            except OSError:
                pass  # worker vanished; its connection state dies with it

    # ------------------------------------------------------------------ introspection
    def worker_pids(self) -> Dict[str, int]:
        """PIDs of currently-registered live workers, keyed by worker id.

        Remote workers report the pid they announced at registration —
        informational only (it belongs to another host's pid namespace) —
        under a ``host:port`` worker id.
        """
        with self._lock:
            return {
                worker_id: handle.pid
                for worker_id, handle in self._workers.items()
                if handle.alive and handle.pid is not None
            }

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """The coordinator's listening ``(host, port)``, once started.

        ``None`` in remote (address-configured) mode — the coordinator
        dials out and has no listener; see :attr:`worker_addresses`.
        """
        return ("127.0.0.1", self._port) if self._port is not None else None

    # ------------------------------------------------------------------ workers
    def _spawn_worker(self) -> None:
        worker_id = f"w{next(self._worker_seq)}"
        handle = _WorkerHandle(worker_id)
        with self._cond:
            self._workers[worker_id] = handle
        process = multiprocessing.get_context().Process(
            target=_distributed_worker_main,
            args=(
                "127.0.0.1",
                self._port,
                worker_id,
                self.heartbeat_interval,
                self.fetch_timeout,
                self.peer_fetch,
                self.worker_cache_bytes,
            ),
            daemon=True,
            name=f"repro-dist-{worker_id}",
        )
        handle.process = process
        process.start()
        handle.pid = process.pid

    def _await_registration(self) -> None:
        deadline = time.monotonic() + self.start_timeout
        with self._cond:
            while True:
                pending = [
                    h for h in self._workers.values() if h.alive and h.sock is None
                ]
                if not pending:
                    break
                if time.monotonic() > deadline:
                    raise ExecutionError(
                        f"distributed executor: {len(pending)} of "
                        f"{self.max_workers} workers failed to register within "
                        f"{self.start_timeout:.0f}s"
                    )
                self._cond.wait(timeout=0.1)
            if not any(h.alive for h in self._workers.values()):
                raise ExecutionError(
                    "distributed executor: every worker died during startup"
                )

    def _connect_remote_workers(self, strict: bool) -> None:
        """Dial every address without a live connection.

        ``strict`` (until a start has fully succeeded): keep retrying until
        ``start_timeout`` and raise if any address stays unreachable — a
        misconfigured address must fail loudly, and a worker that is still
        booting gets its grace period.  Non-strict (pool healing on reuse):
        one attempt per address; unreachable workers produce a warning, and
        the run proceeds on the survivors (raising only when none is left).

        Failed dials back off exponentially from ``redial_backoff`` seconds
        (doubling per consecutive failure, capped at ``max(5, 2 *
        connect_timeout)``) and the counter resets on a successful dial — a
        worker that merely restarted between lifecycle iterations is picked
        back up on the next healing pass, while a host that stays dead
        quickly escalates to the cap instead of costing a connect_timeout
        probe per start().
        """
        deadline = time.monotonic() + (self.start_timeout if strict else 0.0)
        backoff_cap = max(5.0, 2.0 * self.connect_timeout)
        failures: Dict[str, BaseException] = {}
        attempted = False
        while True:
            missing = self._missing_remote_addresses()
            if not missing:
                return
            # The deadline gates every pass — including passes whose dials
            # all "succeeded" but whose workers died right after registering
            # (a crash-looping worker must not spin this loop forever).
            # Checked before the backoff filter so a pass that just failed
            # falls through to the warn/raise reporting below instead of
            # returning silently with the pool under strength.
            if attempted and time.monotonic() >= deadline:
                break
            if not strict:
                # Healing: skip addresses that failed a dial recently — a
                # dead host costs a full connect_timeout to probe, and an
                # auto-pooled lifecycle calls start() every iteration.
                # With no live worker at all there is nothing to run on,
                # so the backoff yields and every address is probed.
                with self._cond:
                    any_alive = any(h.alive for h in self._workers.values())
                if any_alive:
                    now = time.monotonic()
                    missing = [
                        a for a in missing
                        if self._remote_retry_at.get(a, 0.0) <= now
                    ]
                    if not missing:
                        return
            progress = False
            for address in missing:
                label = f"{address[0]}:{address[1]}"
                try:
                    self._connect_remote(address)
                except (OSError, ExecutionError) as exc:
                    failures[label] = exc
                    count = self._remote_dial_failures.get(address, 0) + 1
                    self._remote_dial_failures[address] = count
                    backoff = min(backoff_cap, self.redial_backoff * 2.0 ** (count - 1))
                    self._remote_retry_at[address] = time.monotonic() + backoff
                else:
                    failures.pop(label, None)
                    self._remote_retry_at.pop(address, None)
                    self._remote_dial_failures.pop(address, None)
                    progress = True
            attempted = True
            if not progress and time.monotonic() < deadline:
                time.sleep(0.1)
        missing = self._missing_remote_addresses()
        if not missing:
            return  # the final pass connected everything after all
        unreachable = "; ".join(
            f"{address[0]}:{address[1]}: "
            f"{failures.get(f'{address[0]}:{address[1]}', 'worker connected but did not stay registered')}"
            for address in missing
        )
        if strict:
            raise ExecutionError(
                f"distributed executor: could not connect to "
                f"{len(missing)} of {len(self.worker_addresses)} remote "
                f"worker(s) within {self.start_timeout:.0f}s — {unreachable}"
            )
        with self._cond:
            alive = sum(1 for h in self._workers.values() if h.alive)
        if alive == 0:
            raise ExecutionError(
                f"distributed executor: no remote worker is reachable — {unreachable}"
            )
        warnings.warn(
            f"distributed executor: proceeding with {alive} of "
            f"{len(self.worker_addresses)} remote workers; unreachable: {unreachable}",
            RuntimeWarning,
            stacklevel=3,
        )

    def _missing_remote_addresses(self) -> List[Tuple[str, int]]:
        """Configured addresses without a live, registered connection."""
        with self._cond:
            connected = {h.address for h in self._workers.values() if h.alive}
        return [a for a in self.worker_addresses if a not in connected]

    def _silence_timeout_for(self, announced_interval: Optional[float]) -> Optional[float]:
        """Per-worker silence threshold given its announced heartbeat interval.

        A worker beating slower than this coordinator's own
        ``heartbeat_interval`` (e.g. a remote worker started with
        ``--heartbeat-interval 10``) would be declared dead between
        perfectly healthy beats under the configured ``heartbeat_timeout``,
        so the threshold widens to the same ``max(5, 10x interval)`` rule
        the constructor applies to its own interval.  ``None`` keeps the
        configured timeout (worker announced nothing, or beats at least as
        fast as assumed).
        """
        if announced_interval is None or announced_interval <= self.heartbeat_interval:
            return None
        return max(self.heartbeat_timeout, 5.0, 10.0 * announced_interval)

    def _connect_remote(self, address: Tuple[str, int]) -> None:
        """Dial one listening worker and read its registration frame."""
        host, port = address
        sock = socket.create_connection((host, port), timeout=self.connect_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # Bound the registration read: a peer that accepts but stays
            # silent (e.g. a worker busy serving another coordinator) must
            # not wedge start() past its own deadline handling.
            sock.settimeout(self.connect_timeout)
            received = recv_message(sock)
            sock.settimeout(None)
        except Exception:
            sock.close()
            raise
        message, peer_version = received if received is not None else (None, PROTOCOL_VERSION)
        if not _is_registration(message):
            sock.close()
            raise ExecutionError(
                f"worker at {host}:{port} did not announce a registration "
                f"(is it a repro.execution.worker of the same protocol revision?)"
            )
        _announced_id, pid, announced_interval, peer_address = _parse_registration(message)
        worker_id = f"{host}:{port}"
        handle = _WorkerHandle(worker_id)
        handle.sock = sock
        handle.pid = pid
        handle.address = address
        handle.protocol = peer_version
        if peer_version >= 5 and peer_address is not None:
            peer_host, peer_port = peer_address
            # A remote worker that bound its peer listener to loopback is
            # only dialable from its own host; substitute the address the
            # coordinator actually reached it at.
            if peer_host in ("127.0.0.1", "localhost", "::1") and host not in (
                "127.0.0.1", "localhost", "::1"
            ):
                peer_host = host
            handle.peer_address = (peer_host, peer_port)
        handle.silence_timeout = self._silence_timeout_for(announced_interval)
        handle.last_seen = time.monotonic()
        with self._cond:
            self._workers[worker_id] = handle
            self._cond.notify_all()
        threading.Thread(
            target=self._receive_loop,
            args=(handle,),
            daemon=True,
            name=f"repro-dist-recv-{worker_id}",
        ).start()

    # ------------------------------------------------------------------ coordinator loops
    def _accept_loop(self) -> None:
        """Accept worker connections and match registrations to handles."""
        listener = self._listener
        while True:
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                with self._lock:
                    if self._stopping:
                        return
                continue
            except OSError:
                return  # listener closed by shutdown
            with self._lock:
                if self._stopping:
                    conn.close()
                    return  # the wake-up connection from shutdown()
            # Bound the registration read so one silent peer cannot wedge the
            # accept loop; a registered worker's socket then blocks freely.
            conn.settimeout(5.0)
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                received = recv_message(conn)
                conn.settimeout(None)
            except Exception:  # noqa: BLE001 - reject peers that talk garbage
                conn.close()
                continue
            message, peer_version = (
                received if received is not None else (None, PROTOCOL_VERSION)
            )
            if not _is_registration(message):
                conn.close()
                continue
            worker_id, pid, announced_interval, peer_address = _parse_registration(message)
            with self._cond:
                handle = self._workers.get(worker_id)
                known = handle is not None and handle.alive and handle.sock is None
                if known:
                    handle.sock = conn
                    handle.pid = pid
                    handle.protocol = peer_version
                    if peer_version >= 5 and peer_address is not None:
                        handle.peer_address = (peer_address[0], peer_address[1])
                    handle.silence_timeout = self._silence_timeout_for(announced_interval)
                    handle.last_seen = time.monotonic()
                    self._cond.notify_all()
            if not known:
                conn.close()
                continue
            threading.Thread(
                target=self._receive_loop,
                args=(handle,),
                daemon=True,
                name=f"repro-dist-recv-{worker_id}",
            ).start()

    def _dispatch_loop(self) -> None:
        """Move queued tasks onto workers with spare pipeline capacity.

        Each worker connection holds up to ``pipeline_depth`` dispatched
        tasks: while the worker executes one, the next is already framed
        onto its socket (and acked by the worker's reader thread), so short
        tasks do not pay a full coordinator round trip each.  Tasks are
        drawn from the open sessions' FIFO lanes round-robin — the session
        just served rotates to the back — so concurrent runs multiplexed
        onto one fleet interleave fairly instead of queuing behind
        whichever run submitted first.

        Small payloads (``<= _BATCH_MAX_TASK_BYTES``) headed for the same
        v4 worker are coalesced into one ``("batch", (task, ...))`` frame,
        up to the worker's remaining pipeline capacity: a depth-2 window of
        short tasks costs one frame instead of two.  Large payloads, and
        every frame to a v3 worker, ship individually.
        """
        while True:
            with self._cond:
                worker = None
                task = None
                while not self._stopping:
                    if any(s.queue for s in self._sessions.values()):
                        worker = self._pick_available_worker()
                        if worker is not None:
                            task = self._next_task_locked()
                            if task is not None:
                                break
                    self._cond.wait(timeout=0.5)
                if self._stopping:
                    return
                batch = [task]
                if worker.protocol >= 4 and len(task.payload) <= _BATCH_MAX_TASK_BYTES:
                    while len(worker.inflight) + len(batch) < self.pipeline_depth:
                        extra = self._next_small_task_locked()
                        if extra is None:
                            break
                        batch.append(extra)
                for item in batch:
                    item.attempts += 1
                    item.acked = False
                    worker.inflight[(item.session.session_id, item.key)] = item
            frames = tuple(
                ("task", item.session.session_id, item.key, item.payload)
                for item in batch
            )
            try:
                _send_message(
                    worker.sock,
                    frames[0] if len(frames) == 1 else ("batch", frames),
                    worker.send_lock,
                    version=worker.protocol,
                )
            except OSError:
                self._worker_failed(worker)
            except Exception as exc:  # noqa: BLE001 - e.g. unframeable payload
                # The frame never left this process (say, a payload above the
                # frame limit): that is a *task* failure, not a worker death —
                # fail the batch's tasks, keep the worker and the loop alive.
                with self._cond:
                    for item in batch:
                        worker.inflight.pop((item.session.session_id, item.key), None)
                    self._cond.notify_all()
                for item in batch:
                    self._complete(
                        item,
                        None,
                        ExecutionError(
                            f"distributed task {item.key!r} could not be sent to "
                            f"worker {worker.worker_id!r}: {exc}"
                        ),
                    )

    def _next_task_locked(self) -> Optional[_DistributedTask]:
        """Pop the next task round-robin across session lanes (lock held)."""
        for session_id in list(self._sessions):
            state = self._sessions[session_id]
            if state.queue:
                self._sessions.move_to_end(session_id)
                return state.queue.popleft()
        return None

    def _next_small_task_locked(self) -> Optional[_DistributedTask]:
        """Pop the next task *only if* it is small enough to batch (lock held).

        Follows the same round-robin order as :meth:`_next_task_locked`; a
        large payload at the head stops the batch instead of being skipped,
        so coalescing never reorders a session's FIFO lane.
        """
        for session_id in list(self._sessions):
            state = self._sessions[session_id]
            if state.queue:
                if len(state.queue[0].payload) > _BATCH_MAX_TASK_BYTES:
                    return None
                self._sessions.move_to_end(session_id)
                return state.queue.popleft()
        return None

    def _pick_available_worker(self) -> Optional[_WorkerHandle]:
        """The least-loaded live worker with pipeline capacity (lock held).

        Idle workers win over busy ones, so the frontier spreads one task
        per worker before any connection stacks a second pipelined task.
        Ties break by registration order, keeping dispatch deterministic.
        """
        best: Optional[_WorkerHandle] = None
        for handle in self._workers.values():
            if not (handle.alive and handle.sock is not None):
                continue
            load = len(handle.inflight)
            if load >= self.pipeline_depth:
                continue
            # Best-effort: skip a connection whose send lock is held right
            # now (e.g. an I/O-pool thread mid-way through a large artifact
            # reply), since dispatching to it would block the single
            # dispatch thread behind that transfer and starve the other
            # workers.  A transfer that *starts* between this probe and the
            # actual send can still block one dispatch — the probe narrows
            # that window, it does not close it.
            if not handle.send_lock.acquire(blocking=False):
                continue
            handle.send_lock.release()
            if load == 0:
                return handle
            if best is None or load < len(best.inflight):
                best = handle
        return best

    def _receive_loop(self, worker: _WorkerHandle) -> None:
        """Consume one worker's frames until its connection ends."""

        def _alive() -> None:
            # Fires per received chunk, mid-frame included: a worker pushing
            # a large result is provably alive even though its heartbeats
            # queue behind the transfer on its send lock — without this, a
            # frame taking longer than heartbeat_timeout would get a healthy
            # remote worker (no process handle to probe) declared dead.
            worker.last_seen = time.monotonic()

        while True:
            try:
                received = recv_message(worker.sock, on_progress=_alive)
            except Exception:  # noqa: BLE001 - treat any transport error as death
                received = None
            if received is None:
                break
            message, _version = received
            worker.last_seen = time.monotonic()
            try:
                # A v4 worker batches its acks for a batched dispatch into one
                # ("batch", ...) frame; unwrap and handle each inner message.
                inner = message[1] if message[0] == "batch" else (message,)
                for item in inner:
                    self._handle_worker_message(worker, item)
            except Exception:  # noqa: BLE001 - malformed message shape
                # A decodable frame with a nonsense message shape means the
                # peer is not speaking this protocol; treat it like any
                # other transport failure instead of silently killing this
                # receive thread and leaving the worker looking healthy.
                break
        self._worker_failed(worker)

    def _handle_worker_message(self, worker: _WorkerHandle, message: Any) -> None:
        kind = message[0]
        if kind == "ack":
            with self._lock:
                task = worker.inflight.get((message[2], message[3]))
                if task is not None:
                    task.acked = True
        elif kind == "result":
            self._task_finished(worker, message[1], message[2], reply=message[3])
        elif kind == "error":
            self._task_finished(worker, message[1], message[2], error=message[3])
        elif kind == "fetch":
            self._serve_fetch(worker, message[2], message[3])
        elif kind == "locate":
            self._serve_locate(worker, message[2], message[3])
        elif kind == "cached":
            # The worker pulled the blob from a peer and now holds a copy:
            # record it so later locates can spread the serving load.
            self._record_site(worker.worker_id, message[2])
        elif kind == "heartbeat":
            # v5 heartbeats piggyback the worker's artifact-cache counters
            # (v4-and-earlier beats are bare 2-tuples and only refresh
            # last_seen, which the receive loop already did).
            if len(message) >= 3 and isinstance(message[2], dict):
                with self._plane_lock:
                    self._worker_plane[worker.worker_id] = dict(message[2])

    def _serve_fetch(
        self, worker: _WorkerHandle, session_id: str, signature: str
    ) -> None:
        """Answer a worker's artifact fetch from the session's bound store.

        The store read and the reply run on the coordinator's I/O pool so a
        slow disk read never stalls this worker's receive loop (which must
        keep consuming results and heartbeats).  A missing artifact — or an
        unreadable/unframeable one — answers ``None``, which the worker
        turns into a typed task error; fetch serving never touches run
        statistics (it is transport, not a planned LOAD).
        """
        pool = self._io_pool
        if pool is None:
            self._answer_fetch(worker, session_id, signature)
        else:
            pool.submit(self._answer_fetch, worker, session_id, signature)

    def _answer_fetch(
        self, worker: _WorkerHandle, session_id: str, signature: str
    ) -> None:
        blob: Optional[bytes] = None
        with self._cond:
            state = self._sessions.get(session_id)
        # Concurrent sessions can bind different stores; the fetch must be
        # answered from the store of the session that shipped the ref.
        # Fleet-level bind_store stays the fallback (the default session,
        # and sessions that never bound one).
        store = state.store if state is not None and state.store is not None else self._store
        if store is not None:
            try:
                loader = getattr(store, "load_serialized", None)
                if loader is not None:
                    # MaterializationStores hold pickled bytes already:
                    # forward them instead of deserializing + re-serializing
                    # a potentially large value per fetch.
                    blob = loader(signature)
                else:
                    # Duck-typed store without the raw-bytes API: a missing
                    # signature raises here and answers None, matching
                    # load_serialized's contract.
                    value, _seconds = store.load(signature)
                    blob = serialize(value)
            except Exception:  # noqa: BLE001 - report as missing, task errors typed
                blob = None
        try:
            _send_message(
                worker.sock,
                ("artifact", session_id, signature, blob),
                worker.send_lock,
                version=worker.protocol,
            )
        except OSError:
            return  # worker death is handled by its receive loop / monitor
        except Exception:  # noqa: BLE001 - e.g. artifact above the frame limit
            try:
                _send_message(
                    worker.sock,
                    ("artifact", session_id, signature, None),
                    worker.send_lock,
                    version=worker.protocol,
                )
            except OSError:
                pass
            return
        if blob is not None:
            with self._plane_lock:
                self._plane["fetches_served"] += 1
                self._plane["fetch_bytes_served"] += len(blob)
            # The worker's artifact cache now holds this blob: record the
            # site so later locates can route peers at it (a v4 worker has
            # no peer listener, so only v5 sites are dialable — filtered
            # at answer time by the peer_address check).
            self._record_site(worker.worker_id, signature)

    # ------------------------------------------------------------------ artifact plane
    def _record_site(self, worker_id: str, signature: str) -> None:
        """Note that a worker holds the blob for ``signature``."""
        with self._plane_lock:
            sites = self._artifact_sites.setdefault(signature, OrderedDict())
            sites.setdefault(worker_id, None)
            self._worker_sites.setdefault(worker_id, set()).add(signature)

    def _serve_locate(
        self, worker: _WorkerHandle, session_id: str, signature: str
    ) -> None:
        """Answer a worker's locate on the I/O pool (same lane as fetches)."""
        pool = self._io_pool
        if pool is None:
            self._answer_locate(worker, session_id, signature)
        else:
            pool.submit(self._answer_locate, worker, session_id, signature)

    def _answer_locate(
        self, worker: _WorkerHandle, session_id: str, signature: str
    ) -> None:
        """Answer ``locate`` with up to 3 dialable peers holding the blob.

        Peers are listed oldest-recorded first (they have held the blob
        longest), excluding the requester itself, workers without an
        announced peer listener, and dead workers.  With ``peer_fetch``
        disabled fleet-wide the answer is always empty, which routes the
        worker straight to the coordinator-streamed path.
        """
        peers: List[Tuple[str, int]] = []
        if self.peer_fetch:
            with self._plane_lock:
                site_ids = list(self._artifact_sites.get(signature, ()))
            if site_ids:
                with self._cond:
                    for site_id in site_ids:
                        if site_id == worker.worker_id:
                            continue
                        holder = self._workers.get(site_id)
                        if (
                            holder is None
                            or not holder.alive
                            or holder.peer_address is None
                        ):
                            continue
                        peers.append(holder.peer_address)
                        if len(peers) >= 3:
                            break
        with self._plane_lock:
            self._plane["locates_served"] += 1
            if peers:
                self._plane["locates_with_peers"] += 1
        try:
            _send_message(
                worker.sock,
                ("located", session_id, signature, tuple(peers)),
                worker.send_lock,
                version=worker.protocol,
            )
        except OSError:
            pass  # worker death is handled by its receive loop / monitor

    def artifact_plane_stats(self) -> Dict[str, Any]:
        """Aggregate artifact-plane counters across coordinator and workers.

        Returns the coordinator's own counters (``fetches_served``,
        ``fetch_bytes_served``, ``locates_served``, ``locates_with_peers``)
        merged with a sum over every v5 worker's last heartbeat stats
        (``peer_fetches``, ``peer_serves``, ``cache_hits``,
        ``cross_session_hits``, ``dedup_hits``, ...), plus the per-worker
        breakdown under ``"workers"``.  Worker stats survive worker death
        and fleet shutdown, so the serve daemon can report reuse after
        :meth:`shutdown`.
        """
        with self._plane_lock:
            stats: Dict[str, Any] = dict(self._plane)
            workers = {wid: dict(s) for wid, s in self._worker_plane.items()}
        totals: Dict[str, int] = {}
        for worker_stats in workers.values():
            for name, value in worker_stats.items():
                if isinstance(value, int):
                    totals[name] = totals.get(name, 0) + value
        stats.update(totals)
        stats["workers"] = workers
        return stats

    def _monitor_loop(self) -> None:
        """Declare workers dead on process exit or prolonged heartbeat silence."""
        while not self._stop_event.wait(min(0.2, self.heartbeat_interval)):
            with self._cond:
                if self._stopping:
                    return
                handles = list(self._workers.values())
            now = time.monotonic()
            for handle in handles:
                if not handle.alive:
                    continue
                process_dead = handle.process is not None and not handle.process.is_alive()
                threshold = (
                    handle.silence_timeout
                    if handle.silence_timeout is not None
                    else self.heartbeat_timeout
                )
                silent = (
                    handle.sock is not None
                    and now - handle.last_seen > threshold
                )
                # Silence alone is authoritative only when liveness cannot be
                # probed (no local process handle): a provably-alive worker
                # may just have its heartbeat thread starved by a GIL-holding
                # C call, and killing it would re-execute a healthy task.
                probeable = handle.process is not None
                if process_dead or (silent and not probeable):
                    self._worker_failed(handle)

    # ------------------------------------------------------------------ completion + failure
    def _task_finished(
        self,
        worker: _WorkerHandle,
        session_id: str,
        key: str,
        reply: Optional[bytes] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        with self._cond:
            task = worker.inflight.pop((session_id, key), None)
            self._cond.notify_all()  # the worker is idle again
        if task is None:
            return  # replay of a task already requeued elsewhere; first reply won
        if error is not None:
            self._complete(task, None, error)
            return
        try:
            outcome = deserialize(reply)
        except BaseException as exc:  # noqa: BLE001 - surfaced by the engine
            self._complete(task, None, exc)
        else:
            self._complete(task, outcome, None)

    def _complete(
        self, task: _DistributedTask, outcome: Any, error: Optional[BaseException]
    ) -> None:
        with self._cond:
            if task.done:
                return
            task.done = True
            task.session.outstanding -= 1
            self._cond.notify_all()
        task.results.put((task.key, outcome, error))

    def _worker_failed(self, worker: _WorkerHandle) -> None:
        """Retire a dead worker; requeue or fail its in-flight tasks.

        With pipelining a death can orphan several tasks at once — the one
        the worker was executing (acked) plus the ones queued on its
        connection (acked or not yet).  Each orphan is requeued exactly
        once, at the front of the queue in its original dispatch order; the
        ``task.done`` guard and the ``inflight.pop`` in ``_task_finished``
        ensure a straggler reply from a worker wrongly declared dead can
        never retire a task a second time.
        """
        failures: List[_DistributedTask] = []
        requeue: "OrderedDict[str, List[_DistributedTask]]" = OrderedDict()
        with self._cond:
            if not worker.alive:
                return
            worker.alive = False
            orphans = list(worker.inflight.values())
            worker.inflight.clear()
            survivors = any(h.alive for h in self._workers.values())
            for task in orphans:
                if task.done:
                    continue
                if task.session.cancelling:
                    # The run is being torn down: drop silently, like a
                    # cancelled future (nobody reads this run's completions).
                    task.done = True
                    task.session.outstanding -= 1
                elif task.attempts >= self.max_task_attempts or not survivors:
                    failures.append(task)
                else:
                    requeue.setdefault(task.session.session_id, []).append(task)
            # Orphans go back to the *front* of their own session's lane,
            # in original dispatch order, so a death never reorders a run.
            for session_id, tasks in requeue.items():
                state = self._sessions.get(session_id)
                if state is None:
                    state = tasks[0].session  # session closed mid-flight
                state.queue.extendleft(reversed(tasks))
            if not survivors:
                # No worker left to drain the queues: fail queued tasks too,
                # or the engines would wait forever on completions.
                for state in self._sessions.values():
                    while state.queue:
                        failures.append(state.queue.popleft())
            self._cond.notify_all()
        # Drop the dead worker from the location index: a locate answered
        # with its peer listener would cost every asker a failed dial (and
        # a RuntimeWarning) before falling back to the coordinator.
        with self._plane_lock:
            for signature in self._worker_sites.pop(worker.worker_id, ()):
                sites = self._artifact_sites.get(signature)
                if sites is not None:
                    sites.pop(worker.worker_id, None)
                    if not sites:
                        del self._artifact_sites[signature]
        if worker.sock is not None:
            worker.sock.close()
        if worker.process is not None and not worker.process.is_alive():
            worker.process.join(timeout=0.1)
        for task in failures:
            # The per-task ack records *delivery*: the worker's reader acks a
            # pipelined task on receipt, possibly before execution starts, so
            # an acked task was at least handed over (and may have been
            # running) while an unacked one provably never reached the worker.
            phase = "after receiving it" if task.acked else "before receiving it"
            self._complete(
                task,
                None,
                ExecutionError(
                    f"distributed task {task.key!r} failed after {task.attempts} "
                    f"dispatch attempt(s): worker {worker.worker_id!r} died {phase} and "
                    f"{'no retry budget remains' if task.attempts >= self.max_task_attempts else 'no worker survives to retry it'}"
                ),
            )


class DistributedSession(Executor):
    """One multiplexed run session on a shared :class:`DistributedExecutor`.

    Opened with :meth:`DistributedExecutor.session`, a session implements
    the full executor contract — ``start`` / ``submit`` /
    ``submit_payload`` / ``next_completion`` / ``finish_run`` — against its
    *own* completion queue, outstanding-task bookkeeping and bound store,
    while every session's COMPUTE tasks share the fleet's worker processes
    (dispatched round-robin across sessions and tagged with the session id
    on the wire).  That is what lets several engines — e.g. the ``repro
    serve`` daemon's concurrent runs — execute on one warm worker pool at
    the same time without their completions, fetches or drains
    interfering.

    Sessions are caller-owned executor instances in the sense of
    ``docs/executors.md``: engines drain them with ``finish_run``, and the
    opener runs the final :meth:`shutdown`, which closes *only this
    session* — the fleet and its workers stay up for other sessions (the
    fleet's owner calls ``fleet.shutdown()`` at the very end).  ``start``
    transparently heals the shared pool, exactly like the fleet's own
    ``start``.
    """

    out_of_process = True

    def __init__(self, fleet: DistributedExecutor) -> None:
        super().__init__()
        self.name = "distributed-session"
        self._fleet = fleet
        self._state = fleet._open_session()
        self.max_workers = fleet.max_workers
        self.uses_artifact_refs = fleet.uses_artifact_refs

    @property
    def session_id(self) -> str:
        """Wire-level id tagging this session's frames (``"s<n>"``)."""
        return self._state.session_id

    @property
    def fleet(self) -> DistributedExecutor:
        """The shared executor whose workers run this session's tasks."""
        return self._fleet

    def bind_store(self, store: Any) -> None:
        """Bind the store this session's artifact fetches are served from."""
        self._state.store = store

    def start(self) -> None:
        if not self._state.open:
            raise ExecutionError(
                "distributed session is closed; open a new one with "
                "DistributedExecutor.session()"
            )
        super().start()
        self._fleet._ensure_workers()

    def submit(self, key: str, fn: Callable[[], Any]) -> None:
        """Run an in-process task (store LOAD) on the fleet's I/O pool."""
        pool = self._fleet._io_pool
        if pool is None:
            # Typed like the submit_payload path — and unlike an assert,
            # still raised under ``python -O``.
            raise ExecutionError("session used before start()")
        self._track(key, pool.submit(fn), self._deliver_future)

    def submit_payload(self, key: str, payload: bytes) -> None:
        self._fleet._submit(self._state, key, payload, self._results)

    def finish_run(self, cancel: bool = False) -> None:
        super().finish_run(cancel=cancel)
        self._fleet._drain_session(self._state, cancel)

    def shutdown(self, cancel: bool = False) -> None:
        """Drain and close this session; the fleet stays up."""
        if not self._state.open:
            return
        self.finish_run(cancel=cancel)
        self._fleet._close_session(self._state)


_EXECUTORS: Dict[str, Type[Executor]] = {
    InlineExecutor.name: InlineExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
    DistributedExecutor.name: DistributedExecutor,
}

#: What ``create_executor`` accepts: a name (canonical or legacy alias), an
#: :class:`Executor` subclass, or a ready instance.
ExecutorSpec = Union[str, Type[Executor], Executor]


def create_executor(
    executor: ExecutorSpec = "inline",
    max_workers: Optional[int] = None,
    workers: Optional[Sequence[Union[str, Tuple[str, int]]]] = None,
) -> Executor:
    """Build an executor from a name, class or ready instance.

    A ready instance already carries its own worker count, so combining one
    with ``max_workers`` is rejected rather than silently ignoring the count
    (a user asking for ``max_workers=1`` must not get a default-sized pool);
    the same goes for ``workers`` addresses.  ``workers=["host:port", ...]``
    selects the distributed executor's remote (address-configured) mode and
    is rejected for every other strategy.
    """
    if isinstance(executor, Executor):
        if max_workers is not None:
            raise ExecutionError(
                "max_workers cannot be combined with an executor instance; "
                "configure the instance's own max_workers instead"
            )
        if workers is not None:
            raise ExecutionError(
                "workers cannot be combined with an executor instance; "
                "configure the instance's own workers instead"
            )
        return executor
    if isinstance(executor, type) and issubclass(executor, Executor):
        cls = executor
    else:
        cls = _EXECUTORS[resolve_executor_name(executor)]
    if workers is not None:
        if not issubclass(cls, DistributedExecutor):
            raise ExecutionError(
                f"workers=[\"host:port\", ...] is only valid for the "
                f"distributed executor, not {cls.name!r}"
            )
        return cls(max_workers=max_workers, workers=workers)
    return cls(max_workers=max_workers)
