"""Executor strategies: *where* individual node tasks run.

The execution layer separates two concerns that PR 2 entangled in a pair of
near-duplicate engines:

* **Lifecycle orchestration** — scheduling ready nodes, cache/scope reference
  counting, deterministic retirement commits (streaming materialization
  decisions + eviction), stats recording.  This lives in one place:
  :class:`~repro.execution.engine.ExecutionEngine`.
* **Task dispatch** — actually running one node's load/compute somewhere.
  That is this module's :class:`Executor` strategy, with four built-ins:

  - :class:`InlineExecutor` (``"inline"``) — tasks run synchronously on the
    scheduler thread.  The reference strategy; replaces the old serial
    engine.
  - :class:`ThreadExecutor` (``"thread"``) — tasks run on a
    ``ThreadPoolExecutor``.  Best for latency-bound operators (store I/O,
    external services) which overlap even on a single core; CPU-bound pure
    Python is GIL-limited.  Replaces ``ParallelExecutionEngine``.
  - :class:`ProcessExecutor` (``"process"``) — COMPUTE tasks are serialized
    with :mod:`repro.storage.serialization` and run on a
    ``ProcessPoolExecutor``; the worker returns the computed value plus its
    measured compute time, and the engine applies the cost model on receipt.
    LOAD tasks (store reads) and all bookkeeping stay in the coordinating
    process.  Best for CPU-bound pure-Python operators, which scale with
    cores instead of fighting over the GIL.
  - :class:`DistributedExecutor` (``"distributed"``) — COMPUTE payloads are
    dispatched over TCP (length-prefixed frames, see the wire format in
    :mod:`repro.storage.serialization`) to long-lived
    :class:`WorkerServer` processes that register with the coordinator,
    heartbeat, and ack each task.  Tasks assigned to a worker that dies are
    requeued to a surviving worker (bounded attempts).  Same process-safety
    contract as ``"process"``; the transport is host-agnostic even though
    the built-in launcher spawns workers locally.

The engine drives an executor through one run as
``start -> submit*/submit_payload* -> next_completion* -> shutdown``; when
configured by name it builds a fresh instance per ``execute`` call
(:func:`create_executor`), and a user-supplied instance is reset for reuse
by ``start``.  Completions are delivered through an internal queue as
``(key, outcome, error)`` triples, so the engine's scheduling loop is
identical across strategies.  The full contract — required methods,
generation-stamped completion queues, process-safety rules, how to plug in
a custom strategy — is documented in ``docs/executors.md``.

The legacy engine names ``"serial"`` and ``"parallel"`` remain accepted
everywhere an executor name is (:data:`LEGACY_ENGINE_ALIASES`); they are
deprecated spellings of ``"inline"`` and ``"thread"``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import socket
import threading
import time
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import wait as wait_futures
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple, Type, Union

from ..exceptions import ExecutionError, OperatorError, ProtocolError
from ..storage.serialization import deserialize, recv_frame, send_frame, serialize

__all__ = [
    "Executor",
    "InlineExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "DistributedExecutor",
    "WorkerServer",
    "EXECUTOR_NAMES",
    "LEGACY_ENGINE_ALIASES",
    "resolve_executor_name",
    "create_executor",
    "default_max_workers",
    "default_process_workers",
    "run_serialized_task",
]

#: Canonical executor strategy names.
EXECUTOR_NAMES = ("inline", "thread", "process", "distributed")

#: Deprecated engine names from the PR 2 serial/parallel split, still accepted
#: by every name-taking entry point (``create_engine``, ``configure_engine``,
#: ``run_lifecycle(engine=...)``).
LEGACY_ENGINE_ALIASES = {"serial": "inline", "parallel": "thread"}

#: Inverse of :data:`LEGACY_ENGINE_ALIASES`, for reporting a configured
#: executor under its legacy name (``System.engine``).
LEGACY_NAME_BY_EXECUTOR = {new: old for old, new in LEGACY_ENGINE_ALIASES.items()}

#: A completed task: (task key, outcome or None, error or None).
Completion = Tuple[str, Any, Optional[BaseException]]


def default_max_workers() -> int:
    """Default thread count: enough to overlap latency on small machines."""
    return min(32, (os.cpu_count() or 1) + 4)


def default_process_workers() -> int:
    """Default process count: one worker per core (CPU-bound work)."""
    return os.cpu_count() or 1


def resolve_executor_name(name: str) -> str:
    """Canonicalize an executor name, accepting the legacy engine aliases."""
    if name in EXECUTOR_NAMES:
        return name
    alias = LEGACY_ENGINE_ALIASES.get(name)
    if alias is not None:
        return alias
    raise ExecutionError(
        f"unknown executor {name!r}; expected one of {list(EXECUTOR_NAMES)} "
        f"(or the deprecated engine aliases {sorted(LEGACY_ENGINE_ALIASES)})"
    )


def run_serialized_task(payload: bytes) -> bytes:
    """Worker-side entry point for out-of-process COMPUTE tasks.

    Deserializes ``(node_name, operator, inputs, context)``, runs the
    operator, and returns the serialized ``(value, measured_seconds)`` pair.
    Failures — including payload deserialization itself, which can fail on
    spawn-based platforms when the operator's module is not importable in
    the worker — are wrapped into a picklable :class:`OperatorError`,
    exactly as the in-process compute path does.
    """
    try:
        name, operator, inputs, context = deserialize(payload)
    except Exception as exc:  # noqa: BLE001 - worker cannot rebuild the task
        raise OperatorError(
            "<task payload>",
            f"worker could not deserialize the task: {exc}; on spawn-based "
            f"platforms operators must be importable from their module "
            f"(not defined in __main__ or a notebook cell)",
        ) from exc
    started = time.perf_counter()
    try:
        value = operator.run(inputs, context)
    except OperatorError:
        raise
    except Exception as exc:  # noqa: BLE001 - wrap arbitrary operator failures
        raise OperatorError(name, str(exc)) from exc
    measured = time.perf_counter() - started
    try:
        return serialize((value, measured))
    except Exception as exc:  # noqa: BLE001 - unpicklable operator result
        raise OperatorError(
            name, f"result of type {type(value).__name__} is not picklable: {exc}"
        ) from exc


class Executor(ABC):
    """Strategy interface: run node tasks, deliver completions through a queue.

    Subclasses dispatch work somewhere (scheduler thread, thread pool,
    process pool, remote workers) and push :data:`Completion` triples onto
    ``self._results``; the engine consumes them with :meth:`next_completion`.
    One ``start``/``finish_run`` cycle serves one ``ExecutionEngine.execute``
    call; ``start`` opens a fresh run generation so the instance can serve
    another run afterwards, and :meth:`shutdown` releases worker resources
    for good.  A custom strategy must provide :attr:`name`, :meth:`submit`,
    and — when :attr:`out_of_process` is true — :meth:`submit_payload`;
    everything else has working defaults.  The full contract, including the
    generation-stamped completion-queue semantics and the process-safety
    rules out-of-process strategies inherit, is documented in
    ``docs/executors.md``.
    """

    #: Canonical strategy name (registry key and display name).
    name: str = "abstract"

    #: True when workers run in a separate interpreter.  The engine then
    #: ships picklable payloads (``submit_payload``) for COMPUTE tasks and
    #: validates operator process safety before dispatching anything; LOAD
    #: tasks still go through :meth:`submit` on the scheduler thread.
    out_of_process: bool = False

    #: True when :meth:`submit` runs the task before returning.  The engine
    #: then dispatches one task at a time (in topological order) so each
    #: value enters the tracked cache — and is retired — before the next
    #: task runs, reproducing the serial reference's bounded memory profile
    #: instead of buffering a whole ready frontier in the completion queue.
    synchronous: bool = False

    def __init__(self) -> None:
        self._results: "queue.Queue[Completion]" = queue.Queue()
        self._inflight: Set["Future[Any]"] = set()
        self._inflight_lock = threading.Lock()
        self._generation = 0

    def start(self) -> None:
        """Acquire worker resources (pools) for one engine run.

        Subclasses must call ``super().start()``: it opens a new run
        generation with a fresh completion queue, so completions left over
        from a previous run on the same instance can never leak into this
        one.  (``finish_run`` waits for futures to *complete*, but a
        completed future's done-callback may still be running — the
        generation check in ``_track`` drops such stragglers.)
        """
        with self._inflight_lock:
            self._generation += 1
        self._results = queue.Queue()

    @abstractmethod
    def submit(self, key: str, fn: Callable[[], Any]) -> None:
        """Run ``fn`` and deliver ``(key, fn(), None)`` — or the error — later."""

    def submit_payload(self, key: str, payload: bytes) -> None:
        """Dispatch a serialized COMPUTE task (out-of-process executors only)."""
        raise ExecutionError(
            f"executor {self.name!r} does not accept serialized payloads"
        )

    def next_completion(self) -> Completion:
        """Block until one submitted task finishes; return its completion."""
        return self._results.get()

    def finish_run(self, cancel: bool = False) -> None:
        """End one engine run without releasing pools.

        Cancels queued tasks (when ``cancel``) and waits for in-flight ones
        to drain, so a reused instance carries no work into its next
        ``start``.  The engine calls this instead of :meth:`shutdown` for
        user-supplied instances, letting callers amortize pool startup across
        executes; such callers own the final :meth:`shutdown`.
        """
        with self._inflight_lock:
            pending = list(self._inflight)
        if cancel:
            for future in pending:
                future.cancel()
        if pending:
            wait_futures(pending)
        with self._inflight_lock:
            self._inflight.clear()

    def shutdown(self, cancel: bool = False) -> None:
        """Release worker resources, optionally cancelling queued tasks.

        Always waits for in-flight tasks to drain so no worker outlives the
        engine's run (failure paths rely on this before surfacing errors).
        """

    # ------------------------------------------------------------------ helpers
    def _run_to_completion(self, key: str, fn: Callable[[], Any]) -> None:
        """Run ``fn`` here and now, converting the result into a completion."""
        try:
            outcome = fn()
        except BaseException as exc:  # noqa: BLE001 - surfaced by the engine
            self._results.put((key, None, exc))
        else:
            self._results.put((key, outcome, None))

    def _track(
        self,
        key: str,
        future: "Future[Any]",
        deliver: Callable[[str, "Future[Any]"], None],
    ) -> None:
        """Register an in-flight future and route its completion to ``deliver``.

        Deliveries are stamped with the current run generation and bound to
        that generation's queue (both read atomically), so a straggler
        callback firing around the next ``start`` either gets dropped or
        posts into the already-discarded old queue — never into the new
        run's queue.
        """
        with self._inflight_lock:
            self._inflight.add(future)
            generation = self._generation

        def _done(f: "Future[Any]", k: str = key) -> None:
            with self._inflight_lock:
                self._inflight.discard(f)
                if self._generation != generation:
                    return
                results = self._results
            deliver(k, f, results)

        future.add_done_callback(_done)

    def _deliver_future(
        self, key: str, future: "Future[Any]", results: "queue.Queue[Completion]"
    ) -> None:
        try:
            outcome = future.result()
        except BaseException as exc:  # noqa: BLE001 - surfaced by the engine
            results.put((key, None, exc))
        else:
            results.put((key, outcome, None))


class InlineExecutor(Executor):
    """Tasks run synchronously on the scheduler thread (the reference strategy).

    ``max_workers`` is accepted for constructor uniformity and ignored.
    """

    name = "inline"
    synchronous = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        del max_workers

    def submit(self, key: str, fn: Callable[[], Any]) -> None:
        self._run_to_completion(key, fn)


class ThreadExecutor(Executor):
    """Tasks run on a ``ThreadPoolExecutor`` (DAG-level parallelism)."""

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise ExecutionError("max_workers must be at least 1")
        self.max_workers = int(max_workers) if max_workers is not None else default_max_workers()
        self._pool: Optional[ThreadPoolExecutor] = None

    def start(self) -> None:
        super().start()
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-exec"
            )

    def submit(self, key: str, fn: Callable[[], Any]) -> None:
        assert self._pool is not None, "executor used before start()"
        self._track(key, self._pool.submit(fn), self._deliver_future)

    def shutdown(self, cancel: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=cancel)
            self._pool = None


class _OutOfProcessExecutor(Executor):
    """Shared LOAD lane for executors whose COMPUTE workers live elsewhere.

    Workers have no store, so LOAD tasks (and any other in-process work the
    engine submits) run on a small coordinator-side I/O thread pool — the
    same thread-safe substrate the thread executor uses — rather than the
    scheduler thread, so a slow store read never stalls COMPUTE dispatch to
    idle workers.  Subclasses must set ``self.max_workers`` before calling
    :meth:`_start_io_pool`, and release the pool via
    :meth:`_shutdown_io_pool`.
    """

    out_of_process = True

    def __init__(self) -> None:
        super().__init__()
        self._io_pool: Optional[ThreadPoolExecutor] = None

    def submit(self, key: str, fn: Callable[[], Any]) -> None:
        """Run an in-process task (store LOAD) on the coordinator's I/O pool."""
        assert self._io_pool is not None, "executor used before start()"
        self._track(key, self._io_pool.submit(fn), self._deliver_future)

    # ------------------------------------------------------------------ helpers
    def _start_io_pool(self) -> None:
        if self._io_pool is None:
            self._io_pool = ThreadPoolExecutor(
                max_workers=min(4, self.max_workers), thread_name_prefix="repro-io"
            )

    def _shutdown_io_pool(self, cancel: bool = False) -> None:
        if self._io_pool is not None:
            self._io_pool.shutdown(wait=True, cancel_futures=cancel)
            self._io_pool = None


class ProcessExecutor(_OutOfProcessExecutor):
    """COMPUTE tasks run on a ``ProcessPoolExecutor``; everything else inline.

    The engine serializes ``(node_name, operator, inputs, context)`` with
    :mod:`repro.storage.serialization` and hands the bytes to
    :meth:`submit_payload`; the worker (:func:`run_serialized_task`) returns
    the serialized ``(value, measured_seconds)`` pair, deserialized here
    before delivery.  LOAD tasks and retirement bookkeeping never leave the
    coordinating process — the store, cache and stats are not shared with
    workers.  Loads run on a small I/O thread pool (the same thread-safe
    substrate the thread executor uses) rather than the scheduler thread, so
    a slow store read never stalls COMPUTE dispatch to idle workers.

    Uses the platform's default multiprocessing start method (``fork`` on
    Linux).  On spawn-based platforms, operators whose results depend on
    per-process state (e.g. ``PYTHONHASHSEED``-randomized ``hash()``) can
    legitimately diverge from the in-process executors.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise ExecutionError("max_workers must be at least 1")
        self.max_workers = (
            int(max_workers) if max_workers is not None else default_process_workers()
        )
        self._pool: Optional[ProcessPoolExecutor] = None

    def start(self) -> None:
        super().start()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        self._start_io_pool()

    def submit_payload(self, key: str, payload: bytes) -> None:
        assert self._pool is not None, "executor used before start()"
        self._track(key, self._pool.submit(run_serialized_task, payload), self._deliver_reply)

    def shutdown(self, cancel: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=cancel)
            self._pool = None
        self._shutdown_io_pool(cancel)

    # ------------------------------------------------------------------ helpers
    def _deliver_reply(
        self, key: str, future: "Future[bytes]", results: "queue.Queue[Completion]"
    ) -> None:
        try:
            outcome = deserialize(future.result())
        except BaseException as exc:  # noqa: BLE001 - surfaced by the engine
            results.put((key, None, exc))
        else:
            results.put((key, outcome, None))


# ---------------------------------------------------------------------------
# Distributed executor: TCP coordinator + long-lived worker processes
# ---------------------------------------------------------------------------
def _send_message(sock: socket.socket, message: Any, lock: Optional[threading.Lock] = None) -> None:
    """Serialize ``message`` and send it as one frame (optionally locked)."""
    frame = serialize(message)
    if lock is None:
        send_frame(sock, frame)
    else:
        with lock:
            send_frame(sock, frame)


def _recv_message(sock: socket.socket) -> Optional[Any]:
    """Receive one framed message; ``None`` when the peer closed cleanly."""
    frame = recv_frame(sock)
    if frame is None:
        return None
    return deserialize(frame)


def _picklable_error(key: str, error: BaseException) -> BaseException:
    """Ensure a worker-side failure can cross the wire.

    :func:`run_serialized_task` already wraps operator failures into the
    picklable :class:`OperatorError`; this is the safety net for anything
    else (e.g. an exotic exception raised while framing the reply).
    """
    try:
        deserialize(serialize(error))
        return error
    except Exception:  # noqa: BLE001 - anything unpicklable gets re-wrapped
        return OperatorError(key, f"worker failed with unpicklable error: {error!r}")


class WorkerServer:
    """Worker-side loop of the distributed executor.

    Connects to a coordinator, registers, then serves ``task`` messages one
    at a time: each task is acked on receipt, executed via
    :func:`run_serialized_task`, and answered with a ``result`` (or a
    picklable ``error``).  A background thread heartbeats every
    ``heartbeat_interval`` seconds so the coordinator can distinguish a
    busy worker from a dead one.  The loop exits on a ``shutdown`` message
    or when the coordinator's connection closes.

    Parameters
    ----------
    host, port:
        The coordinator's listening address.
    worker_id:
        Identity announced at registration; defaults to ``pid<os.getpid()>``.
    heartbeat_interval:
        Seconds between heartbeats.
    """

    def __init__(
        self,
        host: str,
        port: int,
        worker_id: Optional[str] = None,
        heartbeat_interval: float = 0.5,
    ) -> None:
        self.host = host
        self.port = port
        self.worker_id = worker_id if worker_id is not None else f"pid{os.getpid()}"
        self.heartbeat_interval = heartbeat_interval

    def serve(self) -> None:
        """Register with the coordinator and serve tasks until told to stop."""
        sock = socket.create_connection((self.host, self.port))
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_lock = threading.Lock()
        stop = threading.Event()
        _send_message(sock, ("register", self.worker_id, os.getpid()), send_lock)

        def _heartbeat() -> None:
            while not stop.wait(self.heartbeat_interval):
                try:
                    _send_message(sock, ("heartbeat", self.worker_id), send_lock)
                except OSError:
                    return

        threading.Thread(
            target=_heartbeat, daemon=True, name=f"repro-dist-hb-{self.worker_id}"
        ).start()
        try:
            while True:
                message = _recv_message(sock)
                if message is None or message[0] == "shutdown":
                    break
                if message[0] != "task":
                    continue
                _, key, payload = message
                _send_message(sock, ("ack", self.worker_id, key), send_lock)
                try:
                    reply = run_serialized_task(payload)
                except BaseException as exc:  # noqa: BLE001 - shipped back typed
                    _send_message(
                        sock, ("error", key, _picklable_error(key, exc)), send_lock
                    )
                    continue
                try:
                    _send_message(sock, ("result", key, reply), send_lock)
                except OSError:
                    raise  # coordinator gone; nobody to report to
                except Exception as exc:  # noqa: BLE001 - e.g. reply over frame limit
                    # The reply could not be framed (not a transport problem):
                    # report it as a task error instead of dying and dragging
                    # the run through pointless worker-death retries.
                    _send_message(
                        sock,
                        ("error", key, OperatorError(key, f"result reply could not be framed: {exc}")),
                        send_lock,
                    )
        finally:
            stop.set()
            sock.close()


def _distributed_worker_main(
    host: str, port: int, worker_id: str, heartbeat_interval: float
) -> None:
    """Entry point of a spawned worker process (module-level: spawn-safe)."""
    WorkerServer(
        host, port, worker_id=worker_id, heartbeat_interval=heartbeat_interval
    ).serve()


class _DistributedTask:
    """One COMPUTE payload travelling through the coordinator."""

    __slots__ = ("key", "payload", "results", "attempts", "acked", "done")

    def __init__(self, key: str, payload: bytes, results: "queue.Queue[Completion]"):
        self.key = key
        self.payload = payload
        #: The completion queue of the run that submitted this task.  Binding
        #: it at submit time makes delivery generation-safe: a straggler from
        #: a previous run posts into that run's discarded queue, never ours.
        self.results = results
        self.attempts = 0
        self.acked = False
        self.done = False


class _WorkerHandle:
    """Coordinator-side record of one worker process."""

    __slots__ = ("worker_id", "process", "pid", "sock", "send_lock", "alive", "last_seen", "inflight")

    def __init__(self, worker_id: str):
        self.worker_id = worker_id
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.pid: Optional[int] = None
        self.sock: Optional[socket.socket] = None
        self.send_lock = threading.Lock()
        self.alive = True
        self.last_seen = time.monotonic()
        self.inflight: Dict[str, _DistributedTask] = {}


class DistributedExecutor(_OutOfProcessExecutor):
    """COMPUTE tasks run on worker *processes* reached over local TCP sockets.

    The coordinator (this object) listens on ``127.0.0.1``, spawns
    ``max_workers`` long-lived :class:`WorkerServer` processes that connect
    back and register, and dispatches serialized COMPUTE payloads to idle
    workers as length-prefixed frames (wire format in
    :mod:`repro.storage.serialization`).  Workers ack each task on receipt
    (so failure reports can tell a worker that died mid-task from one that
    died before starting it), heartbeat while idle or busy, and return the
    serialized ``(value, measured_seconds)`` reply, deserialized here before
    delivery —
    exactly the :class:`ProcessExecutor` reply contract, so the engine
    applies the cost model identically.

    Failure handling: a worker that dies (socket EOF, dead process, or
    missed heartbeats for ``heartbeat_timeout`` seconds) has its in-flight
    tasks requeued to surviving workers; a task dispatched
    ``max_task_attempts`` times without a reply — or orphaned when no worker
    survives — fails with an :class:`ExecutionError` naming it.  Operators
    must satisfy the same purity/picklability contract as the process
    executor (replayed tasks re-run the operator, which is safe only
    because operators are pure functions of their inputs).

    LOAD tasks and all bookkeeping stay in the coordinating process, on the
    same small I/O thread pool the process executor uses.  ``start`` on a
    reused instance keeps surviving workers and respawns dead ones, so a
    lifecycle amortizes worker startup; ``finish_run`` drains without
    releasing the pool and ``shutdown`` sends every worker a graceful
    ``shutdown`` frame before reaping it.  Workers are spawned with the
    platform's default multiprocessing start method — the same deliberate
    trade-off the process executor documents (fast forks on Linux; the
    entry point is module-level, so spawn-based platforms work too).

    Parameters
    ----------
    max_workers:
        Number of worker processes (default: one per core).
    heartbeat_interval:
        Seconds between worker heartbeats.
    heartbeat_timeout:
        Silence (no frame of any kind) after which a worker is declared
        dead.  ``None`` (default) derives ``max(5, 10 * heartbeat_interval)``;
        an explicit value must exceed ``heartbeat_interval`` or every
        healthy-but-busy worker would be declared dead.  Socket EOF and
        process exit are detected immediately; for locally-spawned workers
        the process handle is authoritative, so silence alone never kills a
        provably-alive worker (a GIL-holding C call can starve the
        heartbeat thread).  The timeout matters for workers without a local
        process handle (a future remote launcher).
    max_task_attempts:
        Dispatch attempts per task before it fails.
    start_timeout:
        Seconds to wait for spawned workers to register before ``start``
        raises.
    """

    name = "distributed"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: Optional[float] = None,
        max_task_attempts: int = 3,
        start_timeout: float = 30.0,
    ) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise ExecutionError("max_workers must be at least 1")
        self.max_workers = (
            int(max_workers) if max_workers is not None else default_process_workers()
        )
        if max_task_attempts < 1:
            raise ExecutionError("max_task_attempts must be at least 1")
        if heartbeat_interval <= 0:
            raise ExecutionError("heartbeat_interval must be positive")
        if heartbeat_timeout is None:
            heartbeat_timeout = max(5.0, 10.0 * heartbeat_interval)
        elif heartbeat_timeout <= heartbeat_interval:
            raise ExecutionError(
                f"heartbeat_timeout ({heartbeat_timeout:g}s) must exceed "
                f"heartbeat_interval ({heartbeat_interval:g}s), or every "
                f"healthy worker would be declared dead between beats"
            )
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_task_attempts = max_task_attempts
        self.start_timeout = start_timeout

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: Deque[_DistributedTask] = deque()
        self._workers: Dict[str, _WorkerHandle] = {}
        self._outstanding = 0
        self._cancelling = False
        self._stopping = False
        self._worker_seq = itertools.count()
        self._stop_event = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._port: Optional[int] = None
        self._threads: List[threading.Thread] = []

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Open a run generation; bring the worker pool up to strength.

        First use opens the listener and spawns ``max_workers`` workers; a
        reused instance keeps surviving workers and only respawns dead ones.
        Blocks until every worker has registered (``start_timeout``).
        """
        super().start()
        self._start_io_pool()
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.bind(("127.0.0.1", 0))
            listener.listen(self.max_workers + 8)
            # A timeout lets the accept loop poll the stop flag: closing a
            # socket does not reliably wake a thread blocked in accept().
            listener.settimeout(0.25)
            self._listener = listener
            self._port = listener.getsockname()[1]
            self._stopping = False
            self._stop_event.clear()
            self._threads = [
                threading.Thread(target=loop, daemon=True, name=f"repro-dist-{label}")
                for label, loop in (
                    ("accept", self._accept_loop),
                    ("dispatch", self._dispatch_loop),
                    ("monitor", self._monitor_loop),
                )
            ]
            for thread in self._threads:
                thread.start()
        with self._cond:
            for worker_id in [w for w, h in self._workers.items() if not h.alive]:
                del self._workers[worker_id]
            missing = self.max_workers - len(self._workers)
        for _ in range(missing):
            self._spawn_worker()
        self._await_registration()

    def submit_payload(self, key: str, payload: bytes) -> None:
        """Queue one serialized COMPUTE task for dispatch to an idle worker."""
        task = _DistributedTask(key, payload, self._results)
        with self._cond:
            if self._listener is None:
                raise ExecutionError("executor used before start()")
            if not any(handle.alive for handle in self._workers.values()):
                raise ExecutionError(
                    "distributed executor has no live workers to dispatch to"
                )
            self._outstanding += 1
            self._queue.append(task)
            self._cond.notify_all()

    def finish_run(self, cancel: bool = False) -> None:
        """Drain this run without releasing workers.

        Waits until every submitted task has been delivered (or, with
        ``cancel``, drops tasks still queued on the coordinator — matching
        the pool executors, a cancelled never-dispatched task produces no
        completion).  In-flight tasks always run to completion or to their
        worker's death.
        """
        super().finish_run(cancel=cancel)
        with self._cond:
            if cancel:
                self._cancelling = True
                while self._queue:
                    task = self._queue.pop()
                    if task.done:
                        continue  # completed elsewhere while still queued
                    task.done = True
                    self._outstanding -= 1
            while self._outstanding > 0:
                self._cond.wait(timeout=0.1)
            self._cancelling = False
            self._cond.notify_all()

    def shutdown(self, cancel: bool = False) -> None:
        """Drain, then gracefully stop workers and release the transport.

        Every worker gets a ``shutdown`` frame and a grace period before
        being terminated; the listener and coordinator threads are released.
        The instance can be ``start``-ed again afterwards.
        """
        if self._listener is None and self._io_pool is None:
            return
        self.finish_run(cancel=cancel)
        with self._cond:
            self._stopping = True
            handles = list(self._workers.values())
            self._workers.clear()
            self._cond.notify_all()
        self._stop_event.set()
        for handle in handles:
            if handle.sock is not None:
                try:
                    _send_message(handle.sock, ("shutdown",), handle.send_lock)
                except OSError:
                    pass
        for handle in handles:
            if handle.process is not None:
                handle.process.join(timeout=2.0)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
            if handle.sock is not None:
                handle.sock.close()
        if self._listener is not None:
            try:
                # Wake the accept loop immediately instead of letting it wait
                # out its poll interval (the dummy peer sends no registration).
                socket.create_connection(("127.0.0.1", self._port), timeout=0.5).close()
            except OSError:
                pass
            self._listener.close()
            self._listener = None
            self._port = None
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads = []
        self._shutdown_io_pool(cancel)

    # ------------------------------------------------------------------ introspection
    def worker_pids(self) -> Dict[str, int]:
        """PIDs of currently-registered live workers, keyed by worker id."""
        with self._lock:
            return {
                worker_id: handle.pid
                for worker_id, handle in self._workers.items()
                if handle.alive and handle.pid is not None
            }

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """The coordinator's listening ``(host, port)``, once started."""
        return ("127.0.0.1", self._port) if self._port is not None else None

    # ------------------------------------------------------------------ workers
    def _spawn_worker(self) -> None:
        worker_id = f"w{next(self._worker_seq)}"
        handle = _WorkerHandle(worker_id)
        with self._cond:
            self._workers[worker_id] = handle
        process = multiprocessing.get_context().Process(
            target=_distributed_worker_main,
            args=("127.0.0.1", self._port, worker_id, self.heartbeat_interval),
            daemon=True,
            name=f"repro-dist-{worker_id}",
        )
        handle.process = process
        process.start()
        handle.pid = process.pid

    def _await_registration(self) -> None:
        deadline = time.monotonic() + self.start_timeout
        with self._cond:
            while True:
                pending = [
                    h for h in self._workers.values() if h.alive and h.sock is None
                ]
                if not pending:
                    break
                if time.monotonic() > deadline:
                    raise ExecutionError(
                        f"distributed executor: {len(pending)} of "
                        f"{self.max_workers} workers failed to register within "
                        f"{self.start_timeout:.0f}s"
                    )
                self._cond.wait(timeout=0.1)
            if not any(h.alive for h in self._workers.values()):
                raise ExecutionError(
                    "distributed executor: every worker died during startup"
                )

    # ------------------------------------------------------------------ coordinator loops
    def _accept_loop(self) -> None:
        """Accept worker connections and match registrations to handles."""
        listener = self._listener
        while True:
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                with self._lock:
                    if self._stopping:
                        return
                continue
            except OSError:
                return  # listener closed by shutdown
            with self._lock:
                if self._stopping:
                    conn.close()
                    return  # the wake-up connection from shutdown()
            # Bound the registration read so one silent peer cannot wedge the
            # accept loop; a registered worker's socket then blocks freely.
            conn.settimeout(5.0)
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                message = _recv_message(conn)
                conn.settimeout(None)
            except Exception:  # noqa: BLE001 - reject peers that talk garbage
                conn.close()
                continue
            if not (
                isinstance(message, tuple)
                and len(message) == 3
                and message[0] == "register"
            ):
                conn.close()
                continue
            _, worker_id, pid = message
            with self._cond:
                handle = self._workers.get(worker_id)
                known = handle is not None and handle.alive and handle.sock is None
                if known:
                    handle.sock = conn
                    handle.pid = pid
                    handle.last_seen = time.monotonic()
                    self._cond.notify_all()
            if not known:
                conn.close()
                continue
            threading.Thread(
                target=self._receive_loop,
                args=(handle,),
                daemon=True,
                name=f"repro-dist-recv-{worker_id}",
            ).start()

    def _dispatch_loop(self) -> None:
        """Move queued tasks onto idle workers, one task per worker at a time."""
        while True:
            with self._cond:
                worker = None
                while not self._stopping:
                    if self._queue:
                        worker = self._pick_idle_worker()
                        if worker is not None:
                            break
                    self._cond.wait(timeout=0.5)
                if self._stopping:
                    return
                task = self._queue.popleft()
                task.attempts += 1
                task.acked = False
                worker.inflight[task.key] = task
            try:
                _send_message(
                    worker.sock, ("task", task.key, task.payload), worker.send_lock
                )
            except OSError:
                self._worker_failed(worker)
            except Exception as exc:  # noqa: BLE001 - e.g. unframeable payload
                # The frame never left this process (say, a payload above the
                # frame limit): that is a *task* failure, not a worker death —
                # fail the task, keep the worker and the dispatch loop alive.
                with self._cond:
                    worker.inflight.pop(task.key, None)
                    self._cond.notify_all()
                self._complete(
                    task,
                    None,
                    ExecutionError(
                        f"distributed task {task.key!r} could not be sent to "
                        f"worker {worker.worker_id!r}: {exc}"
                    ),
                )

    def _pick_idle_worker(self) -> Optional[_WorkerHandle]:
        """The first registered live worker with no task in flight (lock held)."""
        for handle in self._workers.values():
            if handle.alive and handle.sock is not None and not handle.inflight:
                return handle
        return None

    def _receive_loop(self, worker: _WorkerHandle) -> None:
        """Consume one worker's frames until its connection ends."""
        while True:
            try:
                message = _recv_message(worker.sock)
            except Exception:  # noqa: BLE001 - treat any transport error as death
                message = None
            if message is None:
                break
            worker.last_seen = time.monotonic()
            kind = message[0]
            if kind == "ack":
                with self._lock:
                    task = worker.inflight.get(message[2])
                    if task is not None:
                        task.acked = True
            elif kind == "result":
                self._task_finished(worker, message[1], reply=message[2])
            elif kind == "error":
                self._task_finished(worker, message[1], error=message[2])
            # heartbeats only refresh last_seen, done above
        self._worker_failed(worker)

    def _monitor_loop(self) -> None:
        """Declare workers dead on process exit or prolonged heartbeat silence."""
        while not self._stop_event.wait(min(0.2, self.heartbeat_interval)):
            with self._cond:
                if self._stopping:
                    return
                handles = list(self._workers.values())
            now = time.monotonic()
            for handle in handles:
                if not handle.alive:
                    continue
                process_dead = handle.process is not None and not handle.process.is_alive()
                silent = (
                    handle.sock is not None
                    and now - handle.last_seen > self.heartbeat_timeout
                )
                # Silence alone is authoritative only when liveness cannot be
                # probed (no local process handle): a provably-alive worker
                # may just have its heartbeat thread starved by a GIL-holding
                # C call, and killing it would re-execute a healthy task.
                probeable = handle.process is not None
                if process_dead or (silent and not probeable):
                    self._worker_failed(handle)

    # ------------------------------------------------------------------ completion + failure
    def _task_finished(
        self,
        worker: _WorkerHandle,
        key: str,
        reply: Optional[bytes] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        with self._cond:
            task = worker.inflight.pop(key, None)
            self._cond.notify_all()  # the worker is idle again
        if task is None:
            return  # replay of a task already requeued elsewhere; first reply won
        if error is not None:
            self._complete(task, None, error)
            return
        try:
            outcome = deserialize(reply)
        except BaseException as exc:  # noqa: BLE001 - surfaced by the engine
            self._complete(task, None, exc)
        else:
            self._complete(task, outcome, None)

    def _complete(
        self, task: _DistributedTask, outcome: Any, error: Optional[BaseException]
    ) -> None:
        with self._cond:
            if task.done:
                return
            task.done = True
            self._outstanding -= 1
            self._cond.notify_all()
        task.results.put((task.key, outcome, error))

    def _worker_failed(self, worker: _WorkerHandle) -> None:
        """Retire a dead worker; requeue or fail its in-flight tasks."""
        failures: List[_DistributedTask] = []
        with self._cond:
            if not worker.alive:
                return
            worker.alive = False
            orphans = list(worker.inflight.values())
            worker.inflight.clear()
            survivors = any(h.alive for h in self._workers.values())
            for task in orphans:
                if task.done:
                    continue
                if self._cancelling:
                    # The run is being torn down: drop silently, like a
                    # cancelled future (nobody reads this run's completions).
                    task.done = True
                    self._outstanding -= 1
                elif task.attempts >= self.max_task_attempts or not survivors:
                    failures.append(task)
                else:
                    self._queue.appendleft(task)
            if not survivors:
                # No worker left to drain the queue: fail queued tasks too,
                # or the engine would wait forever on completions.
                while self._queue:
                    failures.append(self._queue.popleft())
            self._cond.notify_all()
        if worker.sock is not None:
            worker.sock.close()
        if worker.process is not None and not worker.process.is_alive():
            worker.process.join(timeout=0.1)
        for task in failures:
            # The per-task ack tells apart a worker that died *running* the
            # task (acked — the operator itself is suspect) from one that
            # died before ever starting it (collateral damage).
            phase = "while running it" if task.acked else "before starting it"
            self._complete(
                task,
                None,
                ExecutionError(
                    f"distributed task {task.key!r} failed after {task.attempts} "
                    f"dispatch attempt(s): worker {worker.worker_id!r} died {phase} and "
                    f"{'no retry budget remains' if task.attempts >= self.max_task_attempts else 'no worker survives to retry it'}"
                ),
            )


_EXECUTORS: Dict[str, Type[Executor]] = {
    InlineExecutor.name: InlineExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
    DistributedExecutor.name: DistributedExecutor,
}

#: What ``create_executor`` accepts: a name (canonical or legacy alias), an
#: :class:`Executor` subclass, or a ready instance.
ExecutorSpec = Union[str, Type[Executor], Executor]


def create_executor(
    executor: ExecutorSpec = "inline", max_workers: Optional[int] = None
) -> Executor:
    """Build an executor from a name, class or ready instance.

    A ready instance already carries its own worker count, so combining one
    with ``max_workers`` is rejected rather than silently ignoring the count
    (a user asking for ``max_workers=1`` must not get a default-sized pool).
    """
    if isinstance(executor, Executor):
        if max_workers is not None:
            raise ExecutionError(
                "max_workers cannot be combined with an executor instance; "
                "configure the instance's own max_workers instead"
            )
        return executor
    if isinstance(executor, type) and issubclass(executor, Executor):
        return executor(max_workers=max_workers)
    return _EXECUTORS[resolve_executor_name(executor)](max_workers=max_workers)
