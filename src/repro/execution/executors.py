"""Executor strategies: *where* individual node tasks run.

The execution layer separates two concerns that PR 2 entangled in a pair of
near-duplicate engines:

* **Lifecycle orchestration** — scheduling ready nodes, cache/scope reference
  counting, deterministic retirement commits (streaming materialization
  decisions + eviction), stats recording.  This lives in one place:
  :class:`~repro.execution.engine.ExecutionEngine`.
* **Task dispatch** — actually running one node's load/compute somewhere.
  That is this module's :class:`Executor` strategy, with three built-ins:

  - :class:`InlineExecutor` (``"inline"``) — tasks run synchronously on the
    scheduler thread.  The reference strategy; replaces the old serial
    engine.
  - :class:`ThreadExecutor` (``"thread"``) — tasks run on a
    ``ThreadPoolExecutor``.  Best for latency-bound operators (store I/O,
    external services) which overlap even on a single core; CPU-bound pure
    Python is GIL-limited.  Replaces ``ParallelExecutionEngine``.
  - :class:`ProcessExecutor` (``"process"``) — COMPUTE tasks are serialized
    with :mod:`repro.storage.serialization` and run on a
    ``ProcessPoolExecutor``; the worker returns the computed value plus its
    measured compute time, and the engine applies the cost model on receipt.
    LOAD tasks (store reads) and all bookkeeping stay in the coordinating
    process.  Best for CPU-bound pure-Python operators, which scale with
    cores instead of fighting over the GIL.

The engine drives an executor through one run as
``start -> submit*/submit_payload* -> next_completion* -> shutdown``; when
configured by name it builds a fresh instance per ``execute`` call
(:func:`create_executor`), and a user-supplied instance is reset for reuse
by ``start``.  Completions are delivered through an internal queue as
``(key, outcome, error)`` triples, so the engine's scheduling loop is
identical across strategies.

The legacy engine names ``"serial"`` and ``"parallel"`` remain accepted
everywhere an executor name is (:data:`LEGACY_ENGINE_ALIASES`); they are
deprecated spellings of ``"inline"`` and ``"thread"``.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import wait as wait_futures
from typing import Any, Callable, Dict, Optional, Set, Tuple, Type, Union

from ..exceptions import ExecutionError, OperatorError
from ..storage.serialization import deserialize, serialize

__all__ = [
    "Executor",
    "InlineExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "EXECUTOR_NAMES",
    "LEGACY_ENGINE_ALIASES",
    "resolve_executor_name",
    "create_executor",
    "default_max_workers",
    "default_process_workers",
    "run_serialized_task",
]

#: Canonical executor strategy names.
EXECUTOR_NAMES = ("inline", "thread", "process")

#: Deprecated engine names from the PR 2 serial/parallel split, still accepted
#: by every name-taking entry point (``create_engine``, ``configure_engine``,
#: ``run_lifecycle(engine=...)``).
LEGACY_ENGINE_ALIASES = {"serial": "inline", "parallel": "thread"}

#: Inverse of :data:`LEGACY_ENGINE_ALIASES`, for reporting a configured
#: executor under its legacy name (``System.engine``).
LEGACY_NAME_BY_EXECUTOR = {new: old for old, new in LEGACY_ENGINE_ALIASES.items()}

#: A completed task: (task key, outcome or None, error or None).
Completion = Tuple[str, Any, Optional[BaseException]]


def default_max_workers() -> int:
    """Default thread count: enough to overlap latency on small machines."""
    return min(32, (os.cpu_count() or 1) + 4)


def default_process_workers() -> int:
    """Default process count: one worker per core (CPU-bound work)."""
    return os.cpu_count() or 1


def resolve_executor_name(name: str) -> str:
    """Canonicalize an executor name, accepting the legacy engine aliases."""
    if name in EXECUTOR_NAMES:
        return name
    alias = LEGACY_ENGINE_ALIASES.get(name)
    if alias is not None:
        return alias
    raise ExecutionError(
        f"unknown executor {name!r}; expected one of {list(EXECUTOR_NAMES)} "
        f"(or the deprecated engine aliases {sorted(LEGACY_ENGINE_ALIASES)})"
    )


def run_serialized_task(payload: bytes) -> bytes:
    """Worker-side entry point for out-of-process COMPUTE tasks.

    Deserializes ``(node_name, operator, inputs, context)``, runs the
    operator, and returns the serialized ``(value, measured_seconds)`` pair.
    Failures — including payload deserialization itself, which can fail on
    spawn-based platforms when the operator's module is not importable in
    the worker — are wrapped into a picklable :class:`OperatorError`,
    exactly as the in-process compute path does.
    """
    try:
        name, operator, inputs, context = deserialize(payload)
    except Exception as exc:  # noqa: BLE001 - worker cannot rebuild the task
        raise OperatorError(
            "<task payload>",
            f"worker could not deserialize the task: {exc}; on spawn-based "
            f"platforms operators must be importable from their module "
            f"(not defined in __main__ or a notebook cell)",
        ) from exc
    started = time.perf_counter()
    try:
        value = operator.run(inputs, context)
    except OperatorError:
        raise
    except Exception as exc:  # noqa: BLE001 - wrap arbitrary operator failures
        raise OperatorError(name, str(exc)) from exc
    measured = time.perf_counter() - started
    try:
        return serialize((value, measured))
    except Exception as exc:  # noqa: BLE001 - unpicklable operator result
        raise OperatorError(
            name, f"result of type {type(value).__name__} is not picklable: {exc}"
        ) from exc


class Executor(ABC):
    """Strategy interface: run node tasks, deliver completions through a queue.

    Subclasses dispatch work somewhere (scheduler thread, thread pool,
    process pool) and push :data:`Completion` triples onto ``self._results``;
    the engine consumes them with :meth:`next_completion`.  One
    ``start``/``shutdown`` cycle serves one ``ExecutionEngine.execute`` call;
    ``start`` resets the instance so it can serve another run afterwards.
    """

    #: Canonical strategy name (registry key and display name).
    name: str = "abstract"

    #: True when workers run in a separate interpreter.  The engine then
    #: ships picklable payloads (``submit_payload``) for COMPUTE tasks and
    #: validates operator process safety before dispatching anything; LOAD
    #: tasks still go through :meth:`submit` on the scheduler thread.
    out_of_process: bool = False

    #: True when :meth:`submit` runs the task before returning.  The engine
    #: then dispatches one task at a time (in topological order) so each
    #: value enters the tracked cache — and is retired — before the next
    #: task runs, reproducing the serial reference's bounded memory profile
    #: instead of buffering a whole ready frontier in the completion queue.
    synchronous: bool = False

    def __init__(self) -> None:
        self._results: "queue.Queue[Completion]" = queue.Queue()
        self._inflight: Set["Future[Any]"] = set()
        self._inflight_lock = threading.Lock()
        self._generation = 0

    def start(self) -> None:
        """Acquire worker resources (pools) for one engine run.

        Subclasses must call ``super().start()``: it opens a new run
        generation with a fresh completion queue, so completions left over
        from a previous run on the same instance can never leak into this
        one.  (``finish_run`` waits for futures to *complete*, but a
        completed future's done-callback may still be running — the
        generation check in ``_track`` drops such stragglers.)
        """
        with self._inflight_lock:
            self._generation += 1
        self._results = queue.Queue()

    @abstractmethod
    def submit(self, key: str, fn: Callable[[], Any]) -> None:
        """Run ``fn`` and deliver ``(key, fn(), None)`` — or the error — later."""

    def submit_payload(self, key: str, payload: bytes) -> None:
        """Dispatch a serialized COMPUTE task (out-of-process executors only)."""
        raise ExecutionError(
            f"executor {self.name!r} does not accept serialized payloads"
        )

    def next_completion(self) -> Completion:
        """Block until one submitted task finishes; return its completion."""
        return self._results.get()

    def finish_run(self, cancel: bool = False) -> None:
        """End one engine run without releasing pools.

        Cancels queued tasks (when ``cancel``) and waits for in-flight ones
        to drain, so a reused instance carries no work into its next
        ``start``.  The engine calls this instead of :meth:`shutdown` for
        user-supplied instances, letting callers amortize pool startup across
        executes; such callers own the final :meth:`shutdown`.
        """
        with self._inflight_lock:
            pending = list(self._inflight)
        if cancel:
            for future in pending:
                future.cancel()
        if pending:
            wait_futures(pending)
        with self._inflight_lock:
            self._inflight.clear()

    def shutdown(self, cancel: bool = False) -> None:
        """Release worker resources, optionally cancelling queued tasks.

        Always waits for in-flight tasks to drain so no worker outlives the
        engine's run (failure paths rely on this before surfacing errors).
        """

    # ------------------------------------------------------------------ helpers
    def _run_to_completion(self, key: str, fn: Callable[[], Any]) -> None:
        """Run ``fn`` here and now, converting the result into a completion."""
        try:
            outcome = fn()
        except BaseException as exc:  # noqa: BLE001 - surfaced by the engine
            self._results.put((key, None, exc))
        else:
            self._results.put((key, outcome, None))

    def _track(
        self,
        key: str,
        future: "Future[Any]",
        deliver: Callable[[str, "Future[Any]"], None],
    ) -> None:
        """Register an in-flight future and route its completion to ``deliver``.

        Deliveries are stamped with the current run generation and bound to
        that generation's queue (both read atomically), so a straggler
        callback firing around the next ``start`` either gets dropped or
        posts into the already-discarded old queue — never into the new
        run's queue.
        """
        with self._inflight_lock:
            self._inflight.add(future)
            generation = self._generation

        def _done(f: "Future[Any]", k: str = key) -> None:
            with self._inflight_lock:
                self._inflight.discard(f)
                if self._generation != generation:
                    return
                results = self._results
            deliver(k, f, results)

        future.add_done_callback(_done)

    def _deliver_future(
        self, key: str, future: "Future[Any]", results: "queue.Queue[Completion]"
    ) -> None:
        try:
            outcome = future.result()
        except BaseException as exc:  # noqa: BLE001 - surfaced by the engine
            results.put((key, None, exc))
        else:
            results.put((key, outcome, None))


class InlineExecutor(Executor):
    """Tasks run synchronously on the scheduler thread (the reference strategy).

    ``max_workers`` is accepted for constructor uniformity and ignored.
    """

    name = "inline"
    synchronous = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        del max_workers

    def submit(self, key: str, fn: Callable[[], Any]) -> None:
        self._run_to_completion(key, fn)


class ThreadExecutor(Executor):
    """Tasks run on a ``ThreadPoolExecutor`` (DAG-level parallelism)."""

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise ExecutionError("max_workers must be at least 1")
        self.max_workers = int(max_workers) if max_workers is not None else default_max_workers()
        self._pool: Optional[ThreadPoolExecutor] = None

    def start(self) -> None:
        super().start()
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-exec"
            )

    def submit(self, key: str, fn: Callable[[], Any]) -> None:
        assert self._pool is not None, "executor used before start()"
        self._track(key, self._pool.submit(fn), self._deliver_future)

    def shutdown(self, cancel: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=cancel)
            self._pool = None


class ProcessExecutor(Executor):
    """COMPUTE tasks run on a ``ProcessPoolExecutor``; everything else inline.

    The engine serializes ``(node_name, operator, inputs, context)`` with
    :mod:`repro.storage.serialization` and hands the bytes to
    :meth:`submit_payload`; the worker (:func:`run_serialized_task`) returns
    the serialized ``(value, measured_seconds)`` pair, deserialized here
    before delivery.  LOAD tasks and retirement bookkeeping never leave the
    coordinating process — the store, cache and stats are not shared with
    workers.  Loads run on a small I/O thread pool (the same thread-safe
    substrate the thread executor uses) rather than the scheduler thread, so
    a slow store read never stalls COMPUTE dispatch to idle workers.

    Uses the platform's default multiprocessing start method (``fork`` on
    Linux).  On spawn-based platforms, operators whose results depend on
    per-process state (e.g. ``PYTHONHASHSEED``-randomized ``hash()``) can
    legitimately diverge from the in-process executors.
    """

    name = "process"
    out_of_process = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise ExecutionError("max_workers must be at least 1")
        self.max_workers = (
            int(max_workers) if max_workers is not None else default_process_workers()
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self._io_pool: Optional[ThreadPoolExecutor] = None

    def start(self) -> None:
        super().start()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        if self._io_pool is None:
            self._io_pool = ThreadPoolExecutor(
                max_workers=min(4, self.max_workers), thread_name_prefix="repro-io"
            )

    def submit(self, key: str, fn: Callable[[], Any]) -> None:
        # In-process tasks (store loads) need the store, which workers do not
        # have; they run on the I/O thread pool so a slow read does not block
        # the scheduler from feeding COMPUTE payloads to idle workers.
        assert self._io_pool is not None, "executor used before start()"
        self._track(key, self._io_pool.submit(fn), self._deliver_future)

    def submit_payload(self, key: str, payload: bytes) -> None:
        assert self._pool is not None, "executor used before start()"
        self._track(key, self._pool.submit(run_serialized_task, payload), self._deliver_reply)

    def shutdown(self, cancel: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=cancel)
            self._pool = None
        if self._io_pool is not None:
            self._io_pool.shutdown(wait=True, cancel_futures=cancel)
            self._io_pool = None

    # ------------------------------------------------------------------ helpers
    def _deliver_reply(
        self, key: str, future: "Future[bytes]", results: "queue.Queue[Completion]"
    ) -> None:
        try:
            outcome = deserialize(future.result())
        except BaseException as exc:  # noqa: BLE001 - surfaced by the engine
            results.put((key, None, exc))
        else:
            results.put((key, outcome, None))


_EXECUTORS: Dict[str, Type[Executor]] = {
    InlineExecutor.name: InlineExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}

#: What ``create_executor`` accepts: a name (canonical or legacy alias), an
#: :class:`Executor` subclass, or a ready instance.
ExecutorSpec = Union[str, Type[Executor], Executor]


def create_executor(
    executor: ExecutorSpec = "inline", max_workers: Optional[int] = None
) -> Executor:
    """Build an executor from a name, class or ready instance.

    A ready instance already carries its own worker count, so combining one
    with ``max_workers`` is rejected rather than silently ignoring the count
    (a user asking for ``max_workers=1`` must not get a default-sized pool).
    """
    if isinstance(executor, Executor):
        if max_workers is not None:
            raise ExecutionError(
                "max_workers cannot be combined with an executor instance; "
                "configure the instance's own max_workers instead"
            )
        return executor
    if isinstance(executor, type) and issubclass(executor, Executor):
        return executor(max_workers=max_workers)
    return _EXECUTORS[resolve_executor_name(executor)](max_workers=max_workers)
