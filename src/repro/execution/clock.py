"""Cost models: how per-node run times are charged.

Execution always produces real values (operators actually run so that ML
results are correct), but the *time charged* for a node is pluggable:

* :class:`MeasuredCostModel` charges wall-clock time measured around each
  operator invocation and each store read/write — what the benchmark harness
  uses.
* :class:`SimulatedCostModel` charges the operator's declared
  ``estimated_cost`` and models I/O as ``latency + bytes / bandwidth`` — what
  unit tests and deterministic experiments use.

Both support a simple cluster-scaling model for reproducing Figure 7(b):
data-parallel components (DPR and L/I) speed up with the number of workers
(with an efficiency factor, super-linear for DPR thanks to Helix's loop
fusion of semantic-unit passes), while PPR pays a per-worker communication
overhead, which is why the paper observes a slight slowdown from 4 to 8
workers on PPR-heavy iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..core.operators import Component, Operator

__all__ = ["ClusterModel", "CostModel", "MeasuredCostModel", "SimulatedCostModel"]


@dataclass(frozen=True)
class ClusterModel:
    """Parallel-execution scaling applied on top of single-worker costs.

    Attributes
    ----------
    num_workers:
        Number of workers; 1 disables all scaling.
    parallel_efficiency:
        Fraction of ideal speedup achieved per component (KeystoneML-style
        systems get ~0.85–0.9; Helix's semantic-unit loop fusion lets DPR
        exceed 1.0 for small worker counts).
    communication_overhead:
        Seconds of per-worker coordination overhead charged to PPR nodes,
        modelling the shuffle/collect costs that dominate tiny reducers.
    """

    num_workers: int = 1
    parallel_efficiency: Dict[str, float] = field(
        default_factory=lambda: {
            Component.DPR.value: 0.9,
            Component.LI.value: 0.85,
            Component.PPR.value: 0.0,
        }
    )
    communication_overhead: float = 0.0

    def scale(self, component: Component, seconds: float) -> float:
        """Scale a single-worker cost to the modelled cluster."""
        if self.num_workers <= 1:
            return seconds
        efficiency = self.parallel_efficiency.get(component.value, 0.0)
        if efficiency <= 0.0:
            # Non-parallel work (tiny reducers / result collection) does not
            # speed up and additionally pays per-worker coordination overhead.
            return seconds + self.communication_overhead * self.num_workers
        speedup = 1.0 + efficiency * (self.num_workers - 1)
        return seconds / speedup


class CostModel:
    """Base class: translates measurements/model parameters into charged times."""

    def __init__(self, cluster: Optional[ClusterModel] = None):
        self.cluster = cluster or ClusterModel()

    def compute_cost(
        self,
        operator: Operator,
        component: Component,
        input_sizes: Sequence[int],
        measured_seconds: float,
    ) -> float:
        """Charged compute time for one node."""
        raise NotImplementedError

    def io_cost(self, size_bytes: int, measured_seconds: float) -> float:
        """Charged time for one store read or write."""
        raise NotImplementedError

    def estimate_io_cost(self, size_bytes: int) -> float:
        """Estimated time for a future store read/write of ``size_bytes``.

        Used by the streaming materialization policy, which must estimate the
        load cost of a node *before* it has ever been written to disk.
        """
        raise NotImplementedError

    def _apply_cluster(self, component: Component, seconds: float) -> float:
        return self.cluster.scale(component, seconds)


class MeasuredCostModel(CostModel):
    """Charge measured wall-clock times (optionally scaled to a modelled cluster)."""

    def __init__(
        self,
        cluster: Optional[ClusterModel] = None,
        disk_bandwidth: float = 170e6,
        io_latency: float = 1e-4,
    ):
        super().__init__(cluster)
        if disk_bandwidth <= 0:
            raise ValueError("disk bandwidth must be positive")
        self.disk_bandwidth = disk_bandwidth
        self.io_latency = io_latency

    def compute_cost(
        self,
        operator: Operator,
        component: Component,
        input_sizes: Sequence[int],
        measured_seconds: float,
    ) -> float:
        return self._apply_cluster(component, measured_seconds)

    def io_cost(self, size_bytes: int, measured_seconds: float) -> float:
        return measured_seconds

    def estimate_io_cost(self, size_bytes: int) -> float:
        return self.io_latency + size_bytes / self.disk_bandwidth


class SimulatedCostModel(CostModel):
    """Charge declared operator costs and modelled I/O times (deterministic)."""

    def __init__(
        self,
        cluster: Optional[ClusterModel] = None,
        disk_bandwidth: float = 170e6,
        io_latency: float = 1e-4,
    ):
        super().__init__(cluster)
        if disk_bandwidth <= 0:
            raise ValueError("disk bandwidth must be positive")
        self.disk_bandwidth = disk_bandwidth
        self.io_latency = io_latency

    def compute_cost(
        self,
        operator: Operator,
        component: Component,
        input_sizes: Sequence[int],
        measured_seconds: float,
    ) -> float:
        return self._apply_cluster(component, float(operator.estimated_cost(list(input_sizes))))

    def io_cost(self, size_bytes: int, measured_seconds: float) -> float:
        return self.io_latency + size_bytes / self.disk_bandwidth

    def estimate_io_cost(self, size_bytes: int) -> float:
        return self.io_latency + size_bytes / self.disk_bandwidth
