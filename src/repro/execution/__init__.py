"""Execution engine, caches, cost models and run statistics."""

from .cache import CacheEntry, EagerCache, LRUCache, OperatorCache
from .clock import ClusterModel, CostModel, MeasuredCostModel, SimulatedCostModel
from .engine import ExecutionEngine
from .tracker import MemoryTracker, RunStats

__all__ = [
    "CacheEntry",
    "EagerCache",
    "LRUCache",
    "OperatorCache",
    "ClusterModel",
    "CostModel",
    "MeasuredCostModel",
    "SimulatedCostModel",
    "ExecutionEngine",
    "MemoryTracker",
    "RunStats",
]
